//! See the `examples/` directory for runnable binaries.
