//! The XF inter-workgroup barrier (§1/§7.4): safety of the portable
//! version and the liveness/data-race bugs of the original.
//!
//! Run with: `cargo run -p gpumc-examples --example xf_barrier --release`

use gpumc::Verifier;
use gpumc_catalog::{primitive_source, Grid, Primitive, Variant};

fn main() -> Result<(), gpumc::VerifyError> {
    let verifier = Verifier::new(gpumc_models::vulkan()).with_bound(2);

    println!("== portable XF barrier, 2 threads/wg × 2 workgroups ==");
    let src = primitive_source(Primitive::XfBarrier, Variant::Base, Grid::new(2, 2));
    let program = gpumc::parse_litmus(&src)?;
    let o = verifier.check_assertion(&program)?;
    println!(
        "stale observation after the barrier: {} ({} events, {:.1} ms)",
        o.reachable,
        o.stats.events,
        o.stats.time_us as f64 / 1000.0
    );
    assert!(!o.reachable, "the release-acquire barrier is correct");

    println!();
    println!("== weakened: the representative's release relaxed (rel2rx-2) ==");
    let src = primitive_source(Primitive::XfBarrier, Variant::Rel2Rx(2), Grid::new(2, 2));
    let program = gpumc::parse_litmus(&src)?;
    let o = verifier.check_assertion(&program)?;
    println!("stale observation: {}", o.reachable);
    assert!(
        o.reachable,
        "relaxing any barrier introduces a bug (Table 7)"
    );

    println!();
    println!("== the original (plain-access) barrier races (Fig. 3) ==");
    let racy = gpumc::parse_litmus(gpumc_catalog::figures::FIG3_XF_RACY)?;
    let races = verifier.check_data_races(&racy)?;
    println!("data race found: {}", races.violated);
    assert!(races.violated);

    println!();
    println!("== a mis-handshaked barrier deadlocks (Fig. 14 in spirit) ==");
    let deadlock = gpumc::parse_litmus(
        r#"
VULKAN xf-deadlock
{ fin = 0; fout = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
LC00: | LC10: ;
ld.sc0 r0, fin | ld.sc0 r1, fout ;
bne r0, 1, LC00 | bne r1, 1, LC10 ;
st.sc0 fout, 1 | st.sc0 fin, 1 ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
    )?;
    let live = verifier.check_liveness(&deadlock)?;
    println!(
        "liveness violation (threads spin forever): {}",
        live.violated
    );
    assert!(live.violated);
    Ok(())
}
