//! The NIR compiler bug (§5, Figures 10-11): an unsound spinloop-removal
//! optimization, demonstrated automatically.
//!
//! Run with: `cargo run -p gpumc-examples --example compiler_bug`

use gpumc::Verifier;
use gpumc_catalog::figures::{FIG10_MP_SPIN, FIG11_NIR_BUG};

fn main() -> Result<(), gpumc::VerifyError> {
    let verifier = Verifier::new(gpumc_models::vulkan()).with_bound(2);

    println!("== original code: spinloop with release/acquire barriers (Fig. 10) ==");
    let original = gpumc::parse_litmus(FIG10_MP_SPIN)?;
    let o = verifier.check_assertion(&original)?;
    println!(
        "stale data observable: {}  (expected: false — the barriers synchronize)",
        o.reachable
    );
    assert!(!o.reachable);

    println!();
    println!("== after NIR's (unsound) loop removal (Fig. 11) ==");
    let optimized = gpumc::parse_litmus(FIG11_NIR_BUG)?;
    let o = verifier.check_assertion(&optimized)?;
    println!(
        "stale data observable: {}  (expected: true — the optimization broke it)",
        o.reachable
    );
    assert!(o.reachable);
    if let Some(w) = &o.witness {
        println!("--- the bug's witness execution ---\n{}", w.rendering);
    }
    println!("conclusion: removing the spinloop changed program semantics —");
    println!("exactly the disagreement settled in mesa#4475 via the formal model.");
    Ok(())
}
