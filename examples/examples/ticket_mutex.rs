//! The libcu++ ticket mutex (§5, Figure 13): prove mutual exclusion and
//! find the fence-relaxation opportunity the paper describes.
//!
//! Run with: `cargo run -p gpumc-examples --example ticket_mutex --release`

use gpumc::Verifier;
use gpumc_catalog::figures::{FIG13_TICKET_MUTEX, FIG13_TICKET_MUTEX_RELAXED};

fn main() -> Result<(), gpumc::VerifyError> {
    let verifier = Verifier::new(gpumc_models::ptx75()).with_bound(2);

    println!("== ticket mutex as shipped (acquire increments) ==");
    let program = gpumc::parse_litmus(FIG13_TICKET_MUTEX)?;
    let o = verifier.check_assertion(&program)?;
    println!(
        "mutual exclusion violated: {} ({:.1} ms, {} SAT vars)",
        o.reachable,
        o.stats.time_us as f64 / 1000.0,
        o.stats.sat_vars
    );
    assert!(!o.reachable, "the mutex is correct");

    println!();
    println!("== optimization: relax the ticket-counter increment to .rlx ==");
    let relaxed = gpumc::parse_litmus(FIG13_TICKET_MUTEX_RELAXED)?;
    let o = verifier.check_assertion(&relaxed)?;
    println!("mutual exclusion violated: {}", o.reachable);
    assert!(
        !o.reachable,
        "the relaxation is sound — a free optimization"
    );

    println!();
    println!("== sanity: relaxing the *release* of `out` instead breaks it ==");
    let broken_src =
        FIG13_TICKET_MUTEX.replace("atom.release.gpu.add r4", "atom.relaxed.gpu.add r4");
    let broken = gpumc::parse_litmus(&broken_src)?;
    let o = verifier.check_assertion(&broken)?;
    println!("mutual exclusion violated: {}", o.reachable);
    assert!(o.reachable, "the release is load-bearing");
    Ok(())
}
