//! Portability differences between PTX and Vulkan (§4.2, Figure 6):
//! the same program can be well-defined on one model and a data race on
//! the other.
//!
//! Run with: `cargo run -p gpumc-examples --example portability`

use gpumc::Verifier;

fn main() -> Result<(), gpumc::VerifyError> {
    println!("== PTX: weak writes may stay unordered by coherence (Fig. 6) ==");
    let ptx = gpumc::parse_litmus(gpumc_catalog::figures::FIG6_PARTIAL_CO)?;
    let o = Verifier::new(gpumc_models::ptx75()).check_assertion(&ptx)?;
    println!(
        "threads observe contradictory write orders: {} (PTX allows it)",
        o.reachable
    );
    assert!(o.reachable);

    println!();
    println!("== Vulkan: the same pattern with plain accesses is a data race ==");
    let vk_src = r#"
VULKAN fig6-as-vulkan
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 | P2@sg 0,wg 2,qf 0 ;
st.sc0 x, 1 | st.sc0 x, 2 | ld.atom.acq.dv.sc0 r0, x ;
 | | ld.atom.acq.dv.sc0 r1, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2)
"#;
    let vk = gpumc::parse_litmus(vk_src)?;
    let races = Verifier::new(gpumc_models::vulkan()).check_data_races(&vk)?;
    println!(
        "data race found: {} (Vulkan treats unordered plain writes as UB)",
        races.violated
    );
    assert!(races.violated);

    println!();
    println!("== making the writes atomic restores a total order on both models ==");
    let ptx_atomic = gpumc::parse_litmus(
        &gpumc_catalog::figures::FIG6_PARTIAL_CO
            .replace("st.weak x, 1", "st.relaxed.sys x, 1")
            .replace("st.weak x, 2", "st.relaxed.sys x, 2"),
    )?;
    let o = Verifier::new(gpumc_models::ptx75()).check_assertion(&ptx_atomic)?;
    println!(
        "contradictory orders still observable under PTX: {}",
        o.reachable
    );
    assert!(!o.reachable);
    println!();
    println!("porting GPU code between APIs requires re-checking it against");
    println!("*that* API's consistency model — which is what gpumc automates.");
    Ok(())
}
