//! The SPIR-V pipeline (§6.1): build an OpenCL-like kernel, compile it
//! to SPIR-V assembly, parse it back, and verify data-race freedom —
//! comparing gpumc against the GPUVerify-style static baseline.
//!
//! Run with: `cargo run -p gpumc-examples --example spirv_pipeline`

use gpumc::gpumc_spirv::{emit_spirv, lower, parse_spirv, Grid, KExpr, Kernel, Stmt};
use gpumc::{gpumc_ir::Arch, Verifier};

fn check(kernel: &Kernel, grid: Grid) -> Result<(), gpumc::VerifyError> {
    println!("-- kernel `{}` --", kernel.name);
    let spirv = emit_spirv(kernel);
    println!(
        "compiled to {} lines of SPIR-V assembly",
        spirv.lines().count()
    );
    let module = parse_spirv(&spirv).expect("round-trips");
    let program = lower(&module, grid).expect("lowers");
    assert_eq!(program.arch, Arch::Vulkan);
    let verifier = Verifier::new(gpumc_models::vulkan()).with_bound(2);
    let races = verifier.check_data_races(&program)?;
    println!(
        "gpumc: data race {}",
        if races.violated { "FOUND" } else { "none" }
    );
    Ok(())
}

fn main() -> Result<(), gpumc::VerifyError> {
    let grid = Grid {
        local: 2,
        groups: 2,
    };

    // Race-free: disjoint per-thread writes.
    let mut ok = Kernel::new("disjoint_writes");
    let out = ok.buffer("out", 8);
    ok.push(Stmt::store(out, KExpr::Gid, KExpr::Const(1)));
    check(&ok, grid)?;

    // Racy: all threads bump a plain counter.
    let mut racy = Kernel::new("plain_counter");
    let c = racy.buffer("counter", 1);
    let l = racy.local();
    racy.push(Stmt::load(l, c, KExpr::Const(0)));
    racy.push(Stmt::store(
        c,
        KExpr::Const(0),
        KExpr::add(KExpr::Local(l), KExpr::Const(1)),
    ));
    check(&racy, grid)?;

    println!();
    println!("== the GPUVerify-style baseline on the same kernels ==");
    for k in [&ok, &racy] {
        let v = gpumc_gpuverify::analyze(k, grid);
        println!("gpuverify[{}]: {:?}", k.name, v);
    }
    println!("(run `cargo run -p gpumc-bench --bin table6` for the full comparison)");
    Ok(())
}
