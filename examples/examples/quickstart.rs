//! Quickstart: verify the message-passing idiom under PTX.
//!
//! Run with: `cargo run -p gpumc-examples --example quickstart`

use gpumc::{EngineKind, Verifier};

const MP_WEAK: &str = r#"
PTX MP-weak
{ x = 0; flag = 0; }
P0@cta 0,gpu 0   | P1@cta 1,gpu 0 ;
st.weak x, 1     | ld.weak r0, flag ;
st.weak flag, 1  | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

const MP_RELACQ: &str = r#"
PTX MP-relacq
{ x = 0; flag = 0; }
P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1     | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1  | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

fn main() -> Result<(), gpumc::VerifyError> {
    let verifier = Verifier::new(gpumc_models::ptx75());

    println!("== message passing with plain (weak) accesses ==");
    let program = gpumc::parse_litmus(MP_WEAK)?;
    let outcome = verifier.check_assertion(&program)?;
    println!(
        "stale read reachable: {} ({} events, {:.1} ms)",
        outcome.reachable,
        outcome.stats.events,
        outcome.stats.time_us as f64 / 1000.0
    );
    if let Some(w) = &outcome.witness {
        println!("--- witness ---\n{}", w.rendering);
    }

    println!("== message passing with release/acquire atomics ==");
    let program = gpumc::parse_litmus(MP_RELACQ)?;
    let outcome = verifier.check_assertion(&program)?;
    println!("stale read reachable: {}", outcome.reachable);
    assert!(!outcome.reachable, "release/acquire forbids the stale read");

    println!("== cross-check with the enumeration engine ==");
    let enumerator = Verifier::new(gpumc_models::ptx75()).with_engine(EngineKind::Enumerate {
        straight_line_only: false,
    });
    let again = enumerator.check_assertion(&program)?;
    println!(
        "enumeration agrees: {} ({} candidate behaviours explored)",
        again.reachable == outcome.reachable,
        again.stats.candidates
    );
    Ok(())
}
