//! Validation of the shipped PTX and Vulkan models against the verdicts
//! the paper reports for its figures, using the explicit-state engine as
//! the oracle.

use gpumc_exec::{enumerate, EnumerateOptions};
use gpumc_ir::{compile, unroll, Assertion, EventGraph};
use gpumc_models::{load, ModelKind};

/// Enumerates consistent behaviours of a litmus source under a model and
/// summarizes: (condition reachable, any consistent behaviour at all,
/// any data-race flag, any liveness violation).
struct Summary {
    cond_reachable: bool,
    any_consistent: bool,
    raced: bool,
    liveness_violation: bool,
}

fn graph(src: &str, bound: u32) -> EventGraph {
    let p = gpumc_litmus::parse(src).expect("litmus parses");
    compile(&unroll(&p, bound).expect("unrolls"))
}

fn run(src: &str, model: ModelKind, bound: u32) -> Summary {
    let g = graph(src, bound);
    let m = load(model);
    let cond = g.assertion.clone();
    let mut s = Summary {
        cond_reachable: false,
        any_consistent: false,
        raced: false,
        liveness_violation: false,
    };
    enumerate(&g, &m, &EnumerateOptions::default(), |b| {
        s.any_consistent = true;
        if b.verdict.has_flag("dr") {
            s.raced = true;
        }
        if b.execution.is_liveness_violation() {
            s.liveness_violation = true;
        }
        if b.execution.all_completed() {
            if let Some(a) = &cond {
                let c = match a {
                    Assertion::Exists(c) | Assertion::NotExists(c) | Assertion::Forall(c) => c,
                };
                if b.execution.eval_condition(c) == Some(true) {
                    s.cond_reachable = true;
                }
            }
        }
    })
    .expect("enumeration succeeds");
    s
}

// --------------------------------------------------------------------
// PTX: message passing and scopes
// --------------------------------------------------------------------

const MP_WEAK: &str = r#"
PTX MP-weak
{ x = 0; flag = 0; }
P0@cta 0,gpu 0       | P1@cta 1,gpu 0 ;
st.weak x, 1         | ld.weak r0, flag ;
st.weak flag, 1      | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

const MP_RELACQ: &str = r#"
PTX MP-relacq
{ x = 0; flag = 0; }
P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1     | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1  | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

const MP_SCOPE_TOO_NARROW: &str = r#"
PTX MP-cta-scope
{ x = 0; flag = 0; }
P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
st.relaxed.cta x, 1     | ld.acquire.cta r0, flag ;
st.release.cta flag, 1  | ld.relaxed.cta r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

const MP_FENCES: &str = r#"
PTX MP-fences
{ x = 0; flag = 0; }
P0@cta 0,gpu 0       | P1@cta 1,gpu 0 ;
st.weak x, 1         | ld.relaxed.gpu r0, flag ;
fence.acq_rel.gpu    | fence.acq_rel.gpu ;
st.relaxed.gpu flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

#[test]
fn ptx_weak_mp_allowed_in_both_versions() {
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(MP_WEAK, m, 1);
        assert!(s.any_consistent);
        assert!(s.cond_reachable, "{m}: weak MP stale read must be allowed");
    }
}

#[test]
fn ptx_release_acquire_mp_forbidden() {
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(MP_RELACQ, m, 1);
        assert!(s.any_consistent);
        assert!(!s.cond_reachable, "{m}: rel/acq MP must be forbidden");
    }
}

#[test]
fn ptx_mp_with_fences_forbidden() {
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(MP_FENCES, m, 1);
        assert!(!s.cond_reachable, "{m}: fence MP must be forbidden");
    }
}

#[test]
fn ptx_cta_scope_across_ctas_is_too_weak() {
    // Like Table 7's dv2wg rows: correct orders, wrong scope.
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(MP_SCOPE_TOO_NARROW, m, 1);
        assert!(
            s.cond_reachable,
            "{m}: cta-scoped sync across CTAs cannot forbid the stale read"
        );
    }
}

#[test]
fn ptx_cta_scope_within_one_cta_suffices() {
    let src = MP_SCOPE_TOO_NARROW.replace("P1@cta 1,gpu 0", "P1@cta 0,gpu 0");
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(&src, m, 1);
        assert!(!s.cond_reachable, "{m}: same-CTA cta-scope sync works");
    }
}

// --------------------------------------------------------------------
// PTX: Figure 6 — coherence is not total for weak writes
// --------------------------------------------------------------------

const FIG6_WEAK: &str = r#"
PTX fig6-weak
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0       | P3@cta 0,gpu 0 ;
st.weak x, 1   | st.weak x, 2   | ld.acquire.sys r0, x | ld.acquire.sys r2, x ;
               |                | ld.acquire.sys r1, x | ld.acquire.sys r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2 /\ P3:r2 == 2 /\ P3:r3 == 1)
"#;

#[test]
fn ptx_fig6_weak_writes_unordered_by_coherence() {
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(FIG6_WEAK, m, 1);
        assert!(
            s.cond_reachable,
            "{m}: threads may observe weak writes in contradicting orders (Fig. 6)"
        );
    }
}

#[test]
fn ptx_fig6_atomic_writes_are_ordered() {
    let src = FIG6_WEAK
        .replace("st.weak x, 1", "st.relaxed.sys x, 1")
        .replace("st.weak x, 2", "st.relaxed.sys x, 2");
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let s = run(&src, m, 1);
        assert!(
            !s.cond_reachable,
            "{m}: morally strong writes are coherence-ordered"
        );
    }
}

// --------------------------------------------------------------------
// PTX: Figure 7 — store buffering with a dynamic control barrier
// --------------------------------------------------------------------

const FIG7: &str = r#"
PTX fig7-sb-barrier
{ x = 0; y = 0; z = 0; }
P0@cta 0,gpu 0   | P1@cta 0,gpu 0  | P2@cta 0,gpu 0 ;
st.weak x, 1     | st.weak y, 1    | st.weak z, 1 ;
ld.weak r2, z    | bar.cta.sync 1  | ;
bar.cta.sync r2  | ld.weak r1, x   | ;
ld.weak r0, y    |                 | ;
forall (P0:r0 == 1 \/ P1:r1 == 1)
"#;

#[test]
fn ptx_fig7_dynamic_barrier_forall_violated() {
    // The load of z may return 0, so P0's barrier id may differ from
    // P1's and the barriers do not synchronize: both-zero is reachable,
    // violating the forall.
    for m in [ModelKind::Ptx60, ModelKind::Ptx75] {
        let g = graph(FIG7, 1);
        let model = load(m);
        let mut both_zero = false;
        let mut matched_both_zero = false;
        enumerate(&g, &model, &EnumerateOptions::default(), |b| {
            if !b.execution.all_completed() {
                return;
            }
            let r0 = b.execution.final_reg(0, gpumc_ir::Reg(0));
            let r1 = b.execution.final_reg(1, gpumc_ir::Reg(1));
            let r2 = b.execution.final_reg(0, gpumc_ir::Reg(2));
            if r0 == Some(0) && r1 == Some(0) {
                both_zero = true;
                if r2 == Some(1) {
                    matched_both_zero = true;
                }
            }
        })
        .unwrap();
        assert!(both_zero, "{m}: mismatched barrier ids allow both-zero");
        assert!(
            !matched_both_zero,
            "{m}: matching barriers forbid both-zero"
        );
    }
}

// --------------------------------------------------------------------
// PTX v7.5: proxies
// --------------------------------------------------------------------

const MP_PROXY_FENCED: &str = r#"
PTX mp-proxy-fenced
{ x = 0; flag = 0; s -> x @ surface; }
P0@cta 0,gpu 0           | P1@cta 0,gpu 0 ;
sust s, 1                | ld.acquire.cta r0, flag ;
fence.proxy.surface.cta  | fence.proxy.alias.cta ;
st.release.cta flag, 1   | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

#[test]
fn ptx75_proxy_fences_restore_mp_ordering() {
    let s = run(MP_PROXY_FENCED, ModelKind::Ptx75, 1);
    assert!(s.any_consistent);
    assert!(
        !s.cond_reachable,
        "surface write + proxy fences + rel/acq forbids the stale generic read"
    );
}

#[test]
fn ptx75_missing_proxy_fences_allow_stale_read() {
    let src = MP_PROXY_FENCED
        .replace("fence.proxy.surface.cta  ", "")
        .replace("fence.proxy.alias.cta ", "");
    let s = run(&src, ModelKind::Ptx75, 1);
    assert!(
        s.cond_reachable,
        "without proxy fences the surface write may be invisible via the generic proxy"
    );
}

// --------------------------------------------------------------------
// Vulkan: Figures 10/11 — the NIR compiler bug
// --------------------------------------------------------------------

const FIG10: &str = r#"
VULKAN fig10-mp-spin
{ data = 0; flag = 0; }
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 data, 1   | LC00: ;
membar.rel.dv.semsc0     | ld.atom.dv.sc0 r1, flag ;
st.atom.dv.sc0 flag, 1   | membar.acq.dv.semsc0 ;
                         | bne r1, 0, LC01 ;
                         | goto LC00 ;
                         | LC01: ;
                         | ld.atom.dv.sc0 r2, data ;
exists (P1:r1 == 1 /\ P1:r2 != 1)
"#;

const FIG11: &str = r#"
VULKAN fig11-nir-optimized
{ data = 0; flag = 0; }
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 data, 1   | membar.acq.dv.semsc0 ;
membar.rel.dv.semsc0     | ld.atom.dv.sc0 r2, data ;
st.atom.dv.sc0 flag, 1   | ;
exists (P1:r2 != 1)
"#;

#[test]
fn vulkan_fig10_spin_mp_forbidden() {
    let s = run(FIG10, ModelKind::Vulkan, 2);
    assert!(s.any_consistent);
    assert!(
        !s.cond_reachable,
        "release/acquire barriers around the spinloop forbid stale data (Fig. 10)"
    );
}

#[test]
fn vulkan_fig11_optimized_code_is_broken() {
    let s = run(FIG11, ModelKind::Vulkan, 1);
    assert!(
        s.cond_reachable,
        "after the unsound loop removal, stale data is observable (Fig. 11)"
    );
}

// --------------------------------------------------------------------
// Vulkan: data races
// --------------------------------------------------------------------

const VK_RACY_MP: &str = r#"
VULKAN racy-mp
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1       | ld.sc0 r0, flag ;
st.sc0 flag, 1    | ld.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

#[test]
fn vulkan_plain_mp_is_racy() {
    let s = run(VK_RACY_MP, ModelKind::Vulkan, 1);
    assert!(s.any_consistent);
    assert!(s.raced, "plain cross-workgroup accesses race");
}

#[test]
fn vulkan_synchronized_mp_is_race_free() {
    let src = r#"
VULKAN drf-mp
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0        | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1              | ld.atom.acq.dv.sc0 r0, flag ;
membar.rel.dv.semsc0     | membar.acq.dv.semsc0 ;
st.atom.rel.dv.sc0 flag, 1 | ld.sc0 r1, x ;
filter (P1:r0 == 1)
exists (P1:r1 == 0)
"#;
    let s = run(src, ModelKind::Vulkan, 1);
    assert!(s.any_consistent);
    assert!(
        !s.raced,
        "fence-synchronized accesses are location-ordered, hence race-free"
    );
    assert!(!s.cond_reachable, "and the stale read is forbidden");
}

// --------------------------------------------------------------------
// Vulkan: Figure 16 — the RMW atomicity bug in the model
// --------------------------------------------------------------------

const FIG16: &str = r#"
VULKAN fig16-rmw-atomicity
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 0      | P2@sg 0,wg 0,qf 0 ;
st.sc0 x, 1       | cbar.acqrel.semsc0 0   | cbar.acqrel.semsc0 0 ;
cbar.acqrel.semsc0 0 | atom.add.dv.sc0 r0, x, 1 | atom.add.dv.sc0 r0, x, 1 ;
exists (P1:r0 == 1 /\ P2:r0 == 1)
"#;

#[test]
fn vulkan_fig16_rmw_atomicity_hole_reproduced() {
    // The Vulkan model allows both RMWs to read the non-atomic store's
    // value: asmo only orders atomics, so the intervening RMW write is
    // not seen by the Atomicity axiom. The paper reported this as a
    // model bug (KhronosGroup/Vulkan-MemoryModel#36).
    let s = run(FIG16, ModelKind::Vulkan, 1);
    assert!(s.any_consistent);
    assert!(
        s.cond_reachable,
        "the published model admits the atomicity violation (Fig. 16)"
    );
}

#[test]
fn vulkan_fig16_atomic_store_restores_atomicity() {
    let src = FIG16.replace("st.sc0 x, 1", "st.atom.dv.sc0 x, 1");
    let s = run(&src, ModelKind::Vulkan, 1);
    assert!(
        !s.cond_reachable,
        "with an atomic store, asmo orders all writes and atomicity holds"
    );
}

// --------------------------------------------------------------------
// Liveness (§6.4)
// --------------------------------------------------------------------

#[test]
fn ptx_spin_on_unset_flag_violates_liveness() {
    let src = r#"
PTX spin-forever
{ flag = 0; }
P0@cta 0,gpu 0 ;
LC00: ;
ld.relaxed.gpu r0, flag ;
bne r0, 1, LC00 ;
exists (P0:r0 == 1)
"#;
    let s = run(src, ModelKind::Ptx60, 2);
    assert!(s.liveness_violation);
    assert!(!s.cond_reachable);
}

#[test]
fn ptx_spin_with_writer_eventually_exits() {
    let src = r#"
PTX spin-exits
{ flag = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
LC00:          | st.relaxed.gpu flag, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#;
    let s = run(src, ModelKind::Ptx60, 2);
    assert!(
        !s.liveness_violation,
        "the write is co-maximal, the spin must exit"
    );
    assert!(s.cond_reachable);
}
