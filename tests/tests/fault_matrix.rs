//! Differential fault-injection gate: for every figure test and every
//! (injection point × fault kind) combination, verification under an
//! armed fault must end in one of exactly three ways:
//!
//! 1. the baseline verdict, byte-for-byte (the fault did not fire at
//!    that point, or its kind — delay, alloc spike without a budget —
//!    cannot change verdicts);
//! 2. a *classified* failure: `VerifyError::Unknown` naming the
//!    injected fault or an exhausted budget;
//! 3. for the `panic` kind only, a panic (which the serve layer
//!    isolates; here the test harness plays supervisor).
//!
//! What must never happen is the fourth outcome: a run that completes
//! "successfully" with a *different* verdict. A fault that flips
//! `violated` into `verified` is a silent soundness hole, and this
//! matrix is the CI tripwire for it.
//!
//! Triggers are deterministic (seeded splitmix64 per rule), so a red
//! matrix entry replays exactly under `GPUMC_FAULTS` with the same
//! spec.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use gpumc::fault::{points, FaultKind, FaultPlan};
use gpumc::{EngineKind, Verifier, VerifyError};
use gpumc_catalog::Test;
use gpumc_models::ModelKind;

/// The verdict triple that must survive any non-failing fault run.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Verdict {
    reachable: bool,
    expectation: Option<bool>,
    liveness_violated: bool,
    data_race: Option<bool>,
}

fn default_kind(program: &gpumc::gpumc_ir::Program) -> ModelKind {
    match program.arch {
        gpumc::gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
        gpumc::gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
    }
}

fn check_with(t: &Test, bound: u32, engine: EngineKind) -> Result<Verdict, VerifyError> {
    let program = gpumc::parse_litmus(&t.source).expect("catalog test parses");
    let v = Verifier::new(gpumc_models::load_shared(default_kind(&program)))
        .with_bound(bound)
        .with_engine(engine);
    v.check_all(&program).map(|o| Verdict {
        reachable: o.assertion.reachable,
        expectation: o.assertion.satisfied_expectation,
        liveness_violated: o.liveness.violated,
        data_race: o.data_races.map(|d| d.violated),
    })
}

fn check(t: &Test, bound: u32) -> Result<Verdict, VerifyError> {
    check_with(t, bound, EngineKind::Sat)
}

/// One matrix cell: run `t` under `engine` with `kind` armed at `point`
/// and classify the outcome against `baseline`.
fn run_cell_with(
    t: &Test,
    bound: u32,
    engine: EngineKind,
    point: &str,
    kind: FaultKind,
    baseline: &Verdict,
) {
    // `once` keeps delay faults from sleeping on every conflict; the
    // other kinds either end the run on first fire (panic, spurious
    // unknown) or are verdict-neutral (alloc spike with no budget).
    let plan = FaultPlan::single(point, kind).with_seed(7).once();
    let ctx = format!("{} with {kind:?} at `{point}`", t.name);
    let outcome = {
        let _g = gpumc::fault::scoped(Arc::new(plan));
        std::panic::catch_unwind(AssertUnwindSafe(|| check_with(t, bound, engine)))
    };
    match outcome {
        Ok(Ok(v)) => assert_eq!(
            &v, baseline,
            "fault run completed but flipped the verdict on {ctx}"
        ),
        Ok(Err(VerifyError::Unknown(reason))) => assert!(
            reason.contains("injected") || reason.contains("budget"),
            "unclassified unknown on {ctx}: {reason}"
        ),
        Ok(Err(e)) => panic!("hard error (not a classified unknown) on {ctx}: {e}"),
        Err(payload) => {
            assert_eq!(
                kind,
                FaultKind::Panic,
                "non-panic fault kind panicked on {ctx}"
            );
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("injected fault"),
                "foreign panic on {ctx}: {msg}"
            );
        }
    }
}

const KINDS: &[FaultKind] = &[
    FaultKind::Panic,
    FaultKind::DelayMs(1),
    FaultKind::AllocSpike(1 << 20),
    FaultKind::SpuriousUnknown,
];

#[test]
fn figure_tests_survive_the_fault_matrix() {
    let tests = gpumc_catalog::figure_tests();
    assert!(!tests.is_empty());
    for t in &tests {
        let bound = t.bound.min(2);
        let baseline = check(t, bound).expect("baseline must verify cleanly");
        for point in points::ALL {
            for &kind in KINDS {
                run_cell_with(t, bound, EngineKind::Sat, point, kind, &baseline);
            }
        }
    }
}

#[test]
fn dpor_engine_survives_explore_faults() {
    // The `dpor.explore` point is probed once per complete candidate
    // execution, so under the DPOR engine every fault kind actually
    // fires mid-exploration. A fired fault may only surface as the
    // classified unknown, a supervised panic, or — if the trigger
    // landed after the deciding candidate — the baseline verdict.
    let tests = gpumc_catalog::figure_tests();
    assert!(!tests.is_empty());
    for t in &tests {
        let bound = t.bound.min(2);
        let baseline =
            check_with(t, bound, EngineKind::Dpor).expect("dpor baseline must verify cleanly");
        assert_eq!(
            baseline,
            check(t, bound).expect("sat baseline"),
            "{}: dpor and sat baselines disagree",
            t.name
        );
        for &kind in KINDS {
            run_cell_with(
                t,
                bound,
                EngineKind::Dpor,
                points::DPOR_EXPLORE,
                kind,
                &baseline,
            );
        }
    }
}

#[test]
fn parallel_dpor_engine_contains_explore_faults() {
    // The same `dpor.explore` matrix as above, but under the
    // work-stealing parallel driver: the fault now fires inside a
    // worker thread (the plan is re-armed per worker), and the driver
    // must *contain* it. A worker panic surfaces as the classified
    // `Unknown` — it must never escape to the caller and never flip a
    // verdict.
    let tests = gpumc_catalog::figure_tests();
    assert!(!tests.is_empty());
    for t in &tests {
        let bound = t.bound.min(2);
        let baseline =
            check_with(t, bound, EngineKind::Dpor).expect("dpor baseline must verify cleanly");
        let program = gpumc::parse_litmus(&t.source).unwrap();
        for &kind in KINDS {
            let plan = FaultPlan::single(points::DPOR_EXPLORE, kind)
                .with_seed(7)
                .once();
            let ctx = format!("{} with {kind:?} at `dpor.explore` (parallel)", t.name);
            let _g = gpumc::fault::scoped(Arc::new(plan));
            let v = Verifier::new(gpumc_models::load_shared(default_kind(&program)))
                .with_bound(bound)
                .with_engine(EngineKind::Dpor)
                .with_parallel(gpumc::gpumc_sat::ParallelPolicy::Portfolio(3));
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                v.check_all(&program).map(|o| Verdict {
                    reachable: o.assertion.reachable,
                    expectation: o.assertion.satisfied_expectation,
                    liveness_violated: o.liveness.violated,
                    data_race: o.data_races.map(|d| d.violated),
                })
            }));
            match outcome {
                Ok(Ok(v)) => assert_eq!(
                    &v, &baseline,
                    "fault run completed but flipped the verdict on {ctx}"
                ),
                Ok(Err(VerifyError::Unknown(reason))) => assert!(
                    reason.contains("injected") || reason.contains("budget"),
                    "unclassified unknown on {ctx}: {reason}"
                ),
                Ok(Err(e)) => panic!("hard error on {ctx}: {e}"),
                Err(_) => {
                    panic!("the parallel driver must contain worker panics, escaped on {ctx}")
                }
            }
        }
    }
}

#[test]
fn dpor_budget_exhaustion_is_a_classified_unknown_not_a_verdict() {
    // A three-step budget cannot cover any figure exploration: the
    // engine must withhold its verdict as `Unknown`, never guess.
    for t in &gpumc_catalog::figure_tests() {
        let program = gpumc::parse_litmus(&t.source).unwrap();
        let v = Verifier::new(gpumc_models::load_shared(default_kind(&program)))
            .with_bound(t.bound.min(2))
            .with_engine(EngineKind::Dpor)
            .with_enumeration_cap(3);
        match v.check_all(&program) {
            Err(VerifyError::Unknown(reason)) => assert!(
                reason.contains("budget") || reason.contains("step"),
                "{}: unknown without the budget class: {reason}",
                t.name
            ),
            Ok(_) => panic!("{}: a 3-step exploration cannot conclude", t.name),
            Err(e) => panic!("{}: hard error {e}", t.name),
        }
    }
}

#[test]
fn sustained_spurious_unknowns_never_flip_a_verdict() {
    // Not-once, probability 1: the solver answers `unknown` on the very
    // first conflict of every query. Conflict-free queries may still
    // complete — and when they do, the verdict must match baseline.
    let tests = gpumc_catalog::figure_tests();
    for t in &tests {
        let bound = t.bound.min(2);
        let baseline = check(t, bound).expect("baseline");
        let plan = FaultPlan::single(points::SAT_CONFLICT, FaultKind::SpuriousUnknown);
        let _g = gpumc::fault::scoped(Arc::new(plan));
        match check(t, bound) {
            Ok(v) => assert_eq!(v, baseline, "{}: flipped verdict", t.name),
            Err(VerifyError::Unknown(reason)) => {
                assert!(reason.contains("injected"), "{}: {reason}", t.name);
            }
            Err(e) => panic!("{}: hard error {e}", t.name),
        }
    }
}

#[test]
fn tiny_memory_budget_answers_unknown_not_wrong() {
    // A 1 MiB budget is below any real encoding; the verifier must
    // answer a classified unknown (or, for a trivial test that fits,
    // the baseline verdict) — never a flipped verdict, never a panic.
    let tests = gpumc_catalog::figure_tests();
    for t in &tests {
        let bound = t.bound.min(2);
        let baseline = check(t, bound).expect("baseline");
        let program = gpumc::parse_litmus(&t.source).unwrap();
        let v = Verifier::new(gpumc_models::load_shared(default_kind(&program)))
            .with_bound(bound)
            .with_mem_budget_mb(1);
        match v.check_all(&program) {
            Ok(o) => {
                let got = Verdict {
                    reachable: o.assertion.reachable,
                    expectation: o.assertion.satisfied_expectation,
                    liveness_violated: o.liveness.violated,
                    data_race: o.data_races.map(|d| d.violated),
                };
                assert_eq!(got, baseline, "{}: flipped verdict under budget", t.name);
            }
            Err(VerifyError::Unknown(reason)) => assert!(
                reason.contains("memory budget"),
                "{}: unknown without the memory-budget class: {reason}",
                t.name
            ),
            Err(e) => panic!("{}: hard error {e}", t.name),
        }
    }
}

#[test]
fn generous_memory_budget_is_verdict_neutral() {
    // 1 GiB comfortably holds every figure encoding: the budgeted run
    // must agree with baseline on every verdict.
    for t in &gpumc_catalog::figure_tests() {
        let bound = t.bound.min(2);
        let baseline = check(t, bound).expect("baseline");
        let program = gpumc::parse_litmus(&t.source).unwrap();
        let v = Verifier::new(gpumc_models::load_shared(default_kind(&program)))
            .with_bound(bound)
            .with_mem_budget_mb(1024);
        let o = v.check_all(&program).expect("generous budget must verify");
        let got = Verdict {
            reachable: o.assertion.reachable,
            expectation: o.assertion.satisfied_expectation,
            liveness_violated: o.liveness.violated,
            data_race: o.data_races.map(|d| d.violated),
        };
        assert_eq!(got, baseline, "{}: budget changed a verdict", t.name);
    }
}
