//! Fault-matrix extension for portfolio solving: `sat.conflict` panics
//! injected into portfolio workers must never flip a verdict.
//!
//! The portfolio runs every racer under `catch_unwind`, so a dying
//! racer is survivable: as long as *some* racer reaches a definitive
//! answer, the race returns it, and the answer is exact because every
//! shared clause is implied by the common clause database. Only when
//! every racer dies does the panic propagate (the harness plays
//! supervisor here, as `gpumc-serve` does in production). The one
//! outcome that must never occur is a run that completes with a
//! *different* verdict than the sequential baseline — that would mean a
//! worker death tore a soundness hole into the race or the cube cover.
//!
//! The fault plan is re-armed inside each worker thread from
//! `gpumc::fault::current_plan()` (scoped plans are thread-local), so
//! these tests also pin down that propagation path.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use gpumc::fault::{points, FaultKind, FaultPlan};
use gpumc::gpumc_sat::ParallelPolicy;
use gpumc::{Verifier, VerifyError};
use gpumc_catalog::Test;
use gpumc_models::ModelKind;

/// The verdict triple that must survive any non-failing fault run.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Verdict {
    reachable: bool,
    expectation: Option<bool>,
    liveness_violated: bool,
    data_race: Option<bool>,
}

fn default_kind(program: &gpumc::gpumc_ir::Program) -> ModelKind {
    match program.arch {
        gpumc::gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
        gpumc::gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
    }
}

fn check(
    t: &Test,
    bound: u32,
    configure: impl FnOnce(Verifier) -> Verifier,
) -> Result<Verdict, VerifyError> {
    let program = gpumc::parse_litmus(&t.source).expect("catalog test parses");
    let v = configure(
        Verifier::new(gpumc_models::load_shared(default_kind(&program))).with_bound(bound),
    );
    v.check_all(&program).map(|o| Verdict {
        reachable: o.assertion.reachable,
        expectation: o.assertion.satisfied_expectation,
        liveness_violated: o.liveness.violated,
        data_race: o.data_races.map(|d| d.violated),
    })
}

/// Classifies one faulted portfolio run against the sequential baseline:
/// identical verdict, classified unknown, or a (survivable-by-design)
/// injected panic. Anything else fails the matrix.
fn classify(
    t: &Test,
    bound: u32,
    workers: u32,
    budget: Option<u64>,
    plan: FaultPlan,
    baseline: &Verdict,
) {
    let ctx = format!("{} portfolio({workers}) budget {budget:?}", t.name);
    let outcome = {
        let _g = gpumc::fault::scoped(Arc::new(plan));
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            check(t, bound, |v| {
                let v = v.with_parallel(ParallelPolicy::Portfolio(workers));
                match budget {
                    Some(b) => v.with_conflict_budget(b),
                    None => v,
                }
            })
        }))
    };
    match outcome {
        Ok(Ok(v)) => assert_eq!(
            &v, baseline,
            "faulted portfolio run completed but flipped the verdict on {ctx}"
        ),
        Ok(Err(VerifyError::Unknown(reason))) => assert!(
            reason.contains("injected") || reason.contains("budget") || reason.contains("cancel"),
            "unclassified unknown on {ctx}: {reason}"
        ),
        Ok(Err(e)) => panic!("hard error (not a classified unknown) on {ctx}: {e}"),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("injected fault"),
                "foreign panic on {ctx}: {msg}"
            );
        }
    }
}

#[test]
fn a_dying_racer_never_flips_a_verdict() {
    // One seeded panic somewhere in one racer's conflict loop: the
    // surviving racers (or the caller, if the fault never fires) must
    // still produce the baseline verdict.
    for t in &gpumc_catalog::figure_tests() {
        let bound = t.bound.min(2);
        let baseline = check(t, bound, |v| v).expect("baseline must verify cleanly");
        for workers in [2, 4] {
            let plan = FaultPlan::single(points::SAT_CONFLICT, FaultKind::Panic)
                .with_seed(7)
                .once();
            classify(t, bound, workers, None, plan, &baseline);
        }
    }
}

#[test]
fn sustained_racer_panics_kill_the_run_or_preserve_the_verdict() {
    // Probability 1, not once: every racer that reaches a conflict dies
    // on its first one. Conflict-free queries still complete — with the
    // baseline verdict — and everything else must end in a classified
    // unknown or the injected panic, never a different verdict.
    for t in &gpumc_catalog::figure_tests() {
        let bound = t.bound.min(2);
        let baseline = check(t, bound, |v| v).expect("baseline");
        let plan = FaultPlan::single(points::SAT_CONFLICT, FaultKind::Panic);
        classify(t, bound, 2, None, plan, &baseline);
    }
}

#[test]
fn a_dying_cube_worker_never_flips_a_verdict() {
    // A conflict budget small enough to trigger the cube-and-conquer
    // fallback, plus an injected panic: a dead cube worker voids the
    // all-UNSAT cover (the run may only answer unknown or re-panic),
    // and a SAT cube's model is checkable regardless — so a completed
    // run must still match the unbudgeted baseline.
    for t in &gpumc_catalog::figure_tests() {
        let bound = t.bound.min(2);
        let baseline = check(t, bound, |v| v).expect("baseline");
        let plan = FaultPlan::single(points::SAT_CONFLICT, FaultKind::Panic)
            .with_seed(11)
            .once();
        classify(t, bound, 2, Some(40), plan, &baseline);
    }
}
