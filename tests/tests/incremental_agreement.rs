//! Differential conformance suite for the incremental query layer
//! (`Verifier::check_all`): for every catalog test, under every
//! applicable model and under bounds 1 and 2, the three verdicts
//! answered from one incremental [`SolverSession`] must be identical to
//! the verdicts of three independent fresh encodings
//! (`Verifier::with_incremental(false)`), including which error class a
//! failing configuration produces.
//!
//! This is the CI gate behind the incremental layer: learnt-clause
//! carry-over across the assertion/liveness/data-race queries of a test
//! is only admissible because it can never change an answer, and this
//! suite checks that claim on the whole catalog rather than trusting
//! the soundness argument in DESIGN.md.

use gpumc::{Verifier, VerifyError};
use gpumc_catalog::Test;
use gpumc_models::ModelKind;

/// Coarse error class: two runs "agree" on failure when they fail the
/// same way, not necessarily with byte-identical messages.
fn err_class(e: &VerifyError) -> std::mem::Discriminant<VerifyError> {
    std::mem::discriminant(e)
}

/// Asserts that `check_all` and three fresh single-property checks give
/// identical verdicts for one (test, model, bound) configuration.
fn assert_agreement(t: &Test, model: ModelKind, bound: u32) {
    let program = match gpumc::parse_litmus(&t.source) {
        Ok(p) => p,
        Err(e) => panic!("{} does not parse: {e}", t.name),
    };
    let v = Verifier::new(gpumc_models::load_shared(model)).with_bound(bound);
    let incremental = v.check_all(&program);
    let fresh = v.clone().with_incremental(false).check_all(&program);
    let ctx = format!("{} under {model:?} at bound {bound}", t.name);
    match (incremental, fresh) {
        (Ok(i), Ok(f)) => {
            assert_eq!(
                i.assertion.reachable, f.assertion.reachable,
                "assertion reachability differs on {ctx}"
            );
            assert_eq!(
                i.assertion.satisfied_expectation, f.assertion.satisfied_expectation,
                "assertion expectation verdict differs on {ctx}"
            );
            assert_eq!(
                i.liveness.violated, f.liveness.violated,
                "liveness verdict differs on {ctx}"
            );
            assert_eq!(
                i.data_races.as_ref().map(|d| d.violated),
                f.data_races.as_ref().map(|d| d.violated),
                "data-race verdict differs on {ctx}"
            );
            // The incremental path answers everything from one session;
            // its per-query ledger must cover every answered property.
            assert!(
                i.queries.len() >= 2,
                "incremental run recorded too few queries on {ctx}"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                err_class(&a),
                err_class(&b),
                "error classes differ on {ctx}: incremental={a} fresh={b}"
            );
        }
        (Ok(_), Err(e)) => panic!("only the fresh path fails on {ctx}: {e}"),
        (Err(e), Ok(_)) => panic!("only the incremental path fails on {ctx}: {e}"),
    }
}

/// Runs the agreement check over a suite for the given models × bounds.
fn sweep(tests: &[Test], models: &[ModelKind]) {
    for t in tests {
        for &model in models {
            for bound in [1, 2] {
                assert_agreement(t, model, bound);
            }
        }
    }
}

const PTX_MODELS: &[ModelKind] = &[ModelKind::Ptx60, ModelKind::Ptx75];
const VULKAN_MODELS: &[ModelKind] = &[ModelKind::Vulkan];

/// Splits an arch-mixed suite by litmus dialect.
fn by_arch(tests: Vec<Test>) -> (Vec<Test>, Vec<Test>) {
    tests
        .into_iter()
        .partition(|t| t.source.trim_start().starts_with("PTX"))
}

#[test]
fn ptx_safety_suite_agrees() {
    sweep(&gpumc_catalog::ptx_safety_suite(), PTX_MODELS);
}

#[test]
fn ptx_proxy_suite_agrees() {
    sweep(&gpumc_catalog::ptx_proxy_suite(), PTX_MODELS);
}

#[test]
fn vulkan_safety_suite_agrees() {
    sweep(&gpumc_catalog::vulkan_safety_suite(), VULKAN_MODELS);
}

#[test]
fn vulkan_drf_suite_agrees() {
    sweep(&gpumc_catalog::vulkan_drf_suite(), VULKAN_MODELS);
}

#[test]
fn liveness_suite_agrees() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::liveness_suite());
    sweep(&ptx, PTX_MODELS);
    sweep(&vulkan, VULKAN_MODELS);
}

#[test]
fn figure_tests_agree() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::figure_tests());
    sweep(&ptx, PTX_MODELS);
    sweep(&vulkan, VULKAN_MODELS);
}
