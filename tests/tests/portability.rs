//! Portability of synchronization primitives across architectures: the
//! same lock algorithm verified under the PTX model (the paper's §5
//! workflow of porting primitives between GPU APIs).

use gpumc::Verifier;
use gpumc_catalog::{primitive_source_ptx, Grid, Primitive, Variant};
use gpumc_models::ModelKind;

fn correct(p: Primitive, variant: Variant, grid: Grid, model: ModelKind) -> bool {
    let src = primitive_source_ptx(p, variant, grid);
    let program = gpumc::parse_litmus(&src).expect("ptx primitive parses");
    let o = Verifier::new(gpumc_models::load(model))
        .with_bound(2)
        .check_assertion(&program)
        .expect("verifies");
    !o.reachable
}

#[test]
fn ptx_caslock_correct_and_relaxations_buggy() {
    for model in [ModelKind::Ptx60, ModelKind::Ptx75] {
        assert!(
            correct(Primitive::CasLock, Variant::Base, Grid::new(2, 2), model),
            "{model}: caslock is correct under PTX"
        );
        assert!(
            !correct(
                Primitive::CasLock,
                Variant::Acq2Rx(0),
                Grid::new(2, 2),
                model
            ),
            "{model}: relaxing the acquire breaks it"
        );
        assert!(
            !correct(
                Primitive::CasLock,
                Variant::Rel2Rx(0),
                Grid::new(2, 2),
                model
            ),
            "{model}: relaxing the release breaks it"
        );
    }
}

#[test]
fn ptx_scope_reduction_mirrors_dv2wg() {
    // gpu→cta with threads in different CTAs: broken, like Vulkan dv2wg.
    assert!(!correct(
        Primitive::CasLock,
        Variant::Dv2Wg,
        Grid::new(2, 2),
        ModelKind::Ptx75
    ));
    // Same CTA: correct again.
    assert!(correct(
        Primitive::CasLock,
        Variant::Dv2Wg,
        Grid::new(2, 1),
        ModelKind::Ptx75
    ));
}

#[test]
fn ptx_ticketlock_ports_correctly() {
    assert!(correct(
        Primitive::TicketLock,
        Variant::Base,
        Grid::new(2, 2),
        ModelKind::Ptx75
    ));
    assert!(!correct(
        Primitive::TicketLock,
        Variant::Rel2Rx(0),
        Grid::new(2, 2),
        ModelKind::Ptx75
    ));
}
