//! Validates the generated corpora: everything parses, expected verdicts
//! hold under the SAT engine, and a sample cross-checks against the
//! enumeration engine.

use gpumc::{EngineKind, Verifier};
use gpumc_catalog::{
    figure_tests, liveness_suite, primitive_benchmarks, ptx_proxy_suite, ptx_safety_suite,
    scaling_test, vulkan_drf_suite, vulkan_safety_suite, Property, Test,
};
use gpumc_models::ModelKind;

fn model_for(test: &Test) -> ModelKind {
    if test.source.trim_start().starts_with("VULKAN") {
        ModelKind::Vulkan
    } else if test.source.contains("proxy") || test.source.contains("->") {
        ModelKind::Ptx75
    } else {
        ModelKind::Ptx60
    }
}

fn check_expected(test: &Test) {
    let program = gpumc::parse_litmus(&test.source)
        .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{}", test.name, test.source));
    let model = model_for(test);
    let v = Verifier::new(gpumc_models::load(model)).with_bound(test.bound);
    let got = match test.property {
        Property::Safety => {
            v.check_assertion(&program)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name))
                .reachable
        }
        Property::Liveness => {
            v.check_liveness(&program)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name))
                .violated
        }
        Property::DataRaceFreedom => {
            v.check_data_races(&program)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name))
                .violated
        }
    };
    if let Some(expected) = test.expected {
        assert_eq!(
            got, expected,
            "{}: expected {expected}, got {got}\n{}",
            test.name, test.source
        );
    }
}

#[test]
fn all_suites_parse() {
    let mut n = 0;
    for t in ptx_safety_suite()
        .iter()
        .chain(ptx_proxy_suite().iter())
        .chain(vulkan_safety_suite().iter())
        .chain(vulkan_drf_suite().iter())
        .chain(liveness_suite().iter())
        .chain(figure_tests().iter())
    {
        gpumc::parse_litmus(&t.source)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{}", t.name, t.source));
        n += 1;
    }
    for b in primitive_benchmarks() {
        gpumc::parse_litmus(&b.test.source)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{}", b.name, b.test.source));
        n += 1;
    }
    for p in [
        gpumc_catalog::ScalePattern::Mp,
        gpumc_catalog::ScalePattern::Sb,
        gpumc_catalog::ScalePattern::Lb,
        gpumc_catalog::ScalePattern::Iriw,
    ] {
        for threads in [4, 8] {
            let t = scaling_test(p, threads);
            gpumc::parse_litmus(&t.source)
                .unwrap_or_else(|e| panic!("{}: parse failed: {e}", t.name));
            n += 1;
        }
    }
    assert!(n >= 106 + 129 + 110 + 106 + 73 + 20 + 8);
}

#[test]
fn suite_sizes_match_the_paper() {
    assert_eq!(ptx_safety_suite().len(), 106);
    assert_eq!(ptx_proxy_suite().len(), 129);
    assert_eq!(vulkan_safety_suite().len(), 110);
    assert_eq!(vulkan_drf_suite().len(), 106);
    assert_eq!(liveness_suite().len(), 73);
}

#[test]
fn ptx_expected_verdicts_hold() {
    for t in ptx_safety_suite().iter().filter(|t| t.expected.is_some()) {
        check_expected(t);
    }
}

#[test]
fn ptx_proxy_expected_verdicts_hold() {
    for t in ptx_proxy_suite().iter().filter(|t| t.expected.is_some()) {
        check_expected(t);
    }
}

#[test]
fn vulkan_expected_verdicts_hold() {
    for t in vulkan_safety_suite()
        .iter()
        .filter(|t| t.expected.is_some())
    {
        check_expected(t);
    }
}

#[test]
fn vulkan_drf_expected_verdicts_hold() {
    for t in vulkan_drf_suite().iter().filter(|t| t.expected.is_some()) {
        check_expected(t);
    }
}

#[test]
fn liveness_expected_verdicts_hold() {
    for t in liveness_suite().iter().filter(|t| t.expected.is_some()) {
        check_expected(t);
    }
}

#[test]
fn figure_expected_verdicts_hold() {
    for t in figure_tests().iter().filter(|t| t.expected.is_some()) {
        check_expected(t);
    }
}

#[test]
fn engines_agree_on_generated_sample() {
    // Every 7th generated safety test, both engines, verdicts equal.
    let sample: Vec<Test> = ptx_safety_suite()
        .into_iter()
        .chain(vulkan_safety_suite())
        .step_by(7)
        .collect();
    for t in sample {
        let program = gpumc::parse_litmus(&t.source).unwrap();
        let model = model_for(&t);
        let sat = Verifier::new(gpumc_models::load(model))
            .with_bound(t.bound)
            .check_assertion(&program)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        let enumr = Verifier::new(gpumc_models::load(model))
            .with_bound(t.bound)
            .with_engine(EngineKind::Enumerate {
                straight_line_only: false,
            })
            .check_assertion(&program)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert_eq!(
            sat.reachable, enumr.reachable,
            "{}: engines disagree\n{}",
            t.name, t.source
        );
    }
}
