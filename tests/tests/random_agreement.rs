//! Differential fuzzing of the engines: on random small programs —
//! including control barriers (`bar`/`cbar`) and conditional branches —
//! three independent implementations must agree on the reachability of
//! every final register value, under every model:
//!
//! 1. the SAT engine answering from one incremental [`SolverSession`]
//!    (`Verifier::check_all`, learnt clauses shared across queries),
//! 2. the SAT engine with a fresh encoding per property, and
//! 3. the explicit-state enumeration oracle.

use gpumc::{EngineKind, Verifier};
use gpumc_ir::{
    AccessAttrs, Arch, Assertion, CmpOp, Condition, Instruction, LabelId, MemOrder, MemRef,
    MemoryDecl, Operand, Program, Reg, RmwOp, Scope, Thread, ThreadPos,
};
use gpumc_models::ModelKind;
use proptest::prelude::*;

/// A compact instruction descriptor the strategy generates.
#[derive(Debug, Clone)]
enum I {
    Load {
        order: u8,
        loc: u8,
    },
    Store {
        order: u8,
        loc: u8,
        val: u8,
    },
    Add {
        loc: u8,
    },
    Cas {
        loc: u8,
        expected: u8,
        new: u8,
    },
    Fence {
        order: u8,
    },
    /// A control barrier (`bar.sync` / `cbar`), optionally carrying
    /// acquire-release memory semantics.
    Bar {
        with_fence: bool,
    },
    /// A forward conditional branch over the next instruction: compares
    /// the thread's most recent read register against 1.
    SkipNext {
        eq: bool,
    },
}

fn order_of(o: u8, write: bool) -> MemOrder {
    match o % 4 {
        0 => MemOrder::Weak,
        1 => MemOrder::Relaxed,
        2 if write => MemOrder::Release,
        2 => MemOrder::Acquire,
        _ => MemOrder::AcqRel,
    }
}

fn instr_strategy() -> impl Strategy<Value = I> {
    prop_oneof![
        (0u8..4, 0u8..2).prop_map(|(order, loc)| I::Load { order, loc }),
        (0u8..4, 0u8..2, 1u8..3).prop_map(|(order, loc, val)| I::Store { order, loc, val }),
        (0u8..2).prop_map(|loc| I::Add { loc }),
        (0u8..2, 0u8..2, 1u8..3).prop_map(|(loc, expected, new)| I::Cas { loc, expected, new }),
        (1u8..4).prop_map(|order| I::Fence { order }),
        any::<bool>().prop_map(|with_fence| I::Bar { with_fence }),
        any::<bool>().prop_map(|eq| I::SkipNext { eq }),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<I>>> {
    proptest::collection::vec(proptest::collection::vec(instr_strategy(), 1..=3), 2..=2)
}

fn build(arch: Arch, threads: &[Vec<I>]) -> (Program, Vec<(usize, Reg)>) {
    let mut p = Program::new(arch);
    let locs = [
        p.declare_memory(MemoryDecl::scalar("x")),
        p.declare_memory(MemoryDecl::scalar("y")),
    ];
    let mut reads = Vec::new();
    for (ti, instrs) in threads.iter().enumerate() {
        let pos = match arch {
            Arch::Ptx => ThreadPos::ptx(ti as u32, 0),
            Arch::Vulkan => ThreadPos::vulkan(0, ti as u32, 0),
        };
        let scope = Scope::widest(arch);
        let mut th = Thread::new(format!("P{ti}"), pos);
        let mut next_reg = 0u32;
        let mut next_label: LabelId = 0;
        // Labels opened by `SkipNext` branches. Each closes immediately
        // after the following instruction, so every generated branch is
        // strictly forward — no back-edges, and the unrolling bound
        // never truncates these programs.
        let mut open_labels: Vec<LabelId> = Vec::new();
        for i in instrs {
            if let I::SkipNext { eq } = i {
                let l = next_label;
                next_label += 1;
                let a = reads
                    .iter()
                    .rev()
                    .find(|&&(t, _)| t == ti)
                    .map(|&(_, r)| Operand::Reg(r))
                    .unwrap_or(Operand::Const(0));
                th.push(Instruction::Branch {
                    cmp: if *eq { CmpOp::Eq } else { CmpOp::Ne },
                    a,
                    b: Operand::Const(1),
                    target: l,
                });
                open_labels.push(l);
                continue;
            }
            match i {
                I::Load { order, loc } => {
                    let r = Reg(next_reg);
                    next_reg += 1;
                    let order = order_of(*order, false);
                    let attrs = if order.is_atomic() {
                        AccessAttrs::atomic(order, scope)
                    } else {
                        AccessAttrs {
                            nonpriv: arch == Arch::Vulkan,
                            scope,
                            ..AccessAttrs::weak()
                        }
                    };
                    th.push(Instruction::load(
                        r,
                        MemRef::scalar(locs[*loc as usize]),
                        attrs,
                    ));
                    reads.push((ti, r));
                }
                I::Store { order, loc, val } => {
                    let order = order_of(*order, true);
                    let attrs = if order.is_atomic() {
                        AccessAttrs::atomic(order, scope)
                    } else {
                        AccessAttrs {
                            nonpriv: arch == Arch::Vulkan,
                            scope,
                            ..AccessAttrs::weak()
                        }
                    };
                    th.push(Instruction::store(
                        MemRef::scalar(locs[*loc as usize]),
                        Operand::Const(u64::from(*val)),
                        attrs,
                    ));
                }
                I::Add { loc } => {
                    let r = Reg(next_reg);
                    next_reg += 1;
                    th.push(Instruction::Rmw {
                        dst: r,
                        addr: MemRef::scalar(locs[*loc as usize]),
                        op: RmwOp::Add,
                        operand: Operand::Const(1),
                        attrs: AccessAttrs::atomic(MemOrder::AcqRel, scope),
                    });
                    reads.push((ti, r));
                }
                I::Cas { loc, expected, new } => {
                    let r = Reg(next_reg);
                    next_reg += 1;
                    th.push(Instruction::Rmw {
                        dst: r,
                        addr: MemRef::scalar(locs[*loc as usize]),
                        op: RmwOp::Cas {
                            expected: Operand::Const(u64::from(*expected)),
                        },
                        operand: Operand::Const(u64::from(*new)),
                        attrs: AccessAttrs::atomic(MemOrder::Acquire, scope),
                    });
                    reads.push((ti, r));
                }
                I::Fence { order } => {
                    th.push(Instruction::fence(gpumc_ir::FenceAttrs {
                        sem_sc: if arch == Arch::Vulkan { 0b01 } else { 0 },
                        ..gpumc_ir::FenceAttrs::new(order_of(*order, true), scope)
                    }));
                }
                I::Bar { with_fence } => {
                    // `bar.sync 0` (PTX) / `cbar[.acqrel.semsc0] 0` (Vulkan).
                    let bscope = match arch {
                        Arch::Ptx => Scope::Cta,
                        Arch::Vulkan => Scope::Wg,
                    };
                    let fence = with_fence.then(|| {
                        let f = gpumc_ir::FenceAttrs::new(MemOrder::AcqRel, bscope);
                        if arch == Arch::Vulkan {
                            f.with_sem_sc(0b01)
                        } else {
                            f
                        }
                    });
                    th.push(Instruction::Barrier {
                        attrs: gpumc_ir::BarrierAttrs {
                            id: Operand::Const(0),
                            scope: bscope,
                            fence,
                        },
                    });
                }
                I::SkipNext { .. } => unreachable!("handled before the match"),
            }
            for l in open_labels.drain(..) {
                th.push(Instruction::Label(l));
            }
        }
        // A trailing `SkipNext` has nothing left to skip; close its label
        // at the end of the thread so the branch is a no-op.
        for l in open_labels.drain(..) {
            th.push(Instruction::Label(l));
        }
        p.add_thread(th);
    }
    (p, reads)
}

fn check_agreement(arch: Arch, model: ModelKind, threads: &[Vec<I>]) -> Result<(), TestCaseError> {
    let (template, reads) = build(arch, threads);
    // Probe reachability of a few (register, value) outcomes with four
    // independent implementations: the incremental solver session, a
    // fresh SAT encoding, the explicit-state oracle, and the pruned
    // DPOR exploration engine.
    for &(ti, reg) in reads.iter().take(2) {
        for value in [0u64, 1] {
            let mut p = template.clone();
            p.assertion = Some(Assertion::Exists(Condition::reg_eq(ti, reg, value)));
            let sat = Verifier::new(gpumc_models::load(model))
                .with_bound(1)
                .with_incremental(false)
                .check_assertion(&p)
                .expect("sat engine");
            let incr = Verifier::new(gpumc_models::load(model))
                .with_bound(1)
                .check_all(&p)
                .expect("incremental sat engine");
            let enumr = match Verifier::new(gpumc_models::load(model))
                .with_bound(1)
                .with_engine(EngineKind::Enumerate {
                    straight_line_only: false,
                })
                .with_enumeration_cap(500_000)
                .check_assertion(&p)
            {
                Ok(o) => o,
                // Too many candidate behaviours for the oracle: skip.
                Err(gpumc::VerifyError::TooComplex(_)) => continue,
                Err(e) => panic!("enumeration engine: {e}"),
            };
            let dpor = match Verifier::new(gpumc_models::load(model))
                .with_bound(1)
                .with_engine(EngineKind::Dpor)
                .with_enumeration_cap(500_000)
                .check_assertion(&p)
            {
                Ok(o) => o,
                // Step budget exhausted: the engine withholds a verdict.
                Err(gpumc::VerifyError::TooComplex(_) | gpumc::VerifyError::Unknown(_)) => continue,
                Err(e) => panic!("dpor engine: {e}"),
            };
            prop_assert_eq!(
                dpor.reachable,
                sat.reachable,
                "fresh SAT and dpor disagree on P{}:r{} == {} under {:?}\nprogram: {:?}",
                ti,
                reg.0,
                value,
                model,
                threads
            );
            prop_assert_eq!(
                sat.reachable,
                enumr.reachable,
                "fresh SAT and enumeration disagree on P{}:r{} == {} under {:?}\nprogram: {:?}",
                ti,
                reg.0,
                value,
                model,
                threads
            );
            prop_assert_eq!(
                incr.assertion.reachable,
                sat.reachable,
                "incremental and fresh SAT disagree on P{}:r{} == {} under {:?}\nprogram: {:?}",
                ti,
                reg.0,
                value,
                model,
                threads
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_agree_on_random_ptx_programs(threads in program_strategy()) {
        check_agreement(Arch::Ptx, ModelKind::Ptx60, &threads)?;
    }

    #[test]
    fn engines_agree_on_random_vulkan_programs(threads in program_strategy()) {
        check_agreement(Arch::Vulkan, ModelKind::Vulkan, &threads)?;
    }
}
