//! Golden-corpus conformance suite for the serve wire protocol.
//!
//! `tests/golden/serve_protocol.jsonl` records a canonical sequence of
//! request lines and the exact response bytes the server must produce
//! for them (after zeroing wall-clock fields, which are the only
//! nondeterministic part of the protocol). The corpus is replayed over
//! a real TCP connection against a freshly bound server and compared
//! byte-for-byte, so every future protocol change must either preserve
//! the bytes or regenerate the corpus with an explicit diff in the PR:
//!
//! ```text
//! GPUMC_REGEN_GOLDEN=1 cargo test -p integration-tests --test golden_protocol
//! git diff tests/golden/serve_protocol.jsonl   # review, then commit
//! ```
//!
//! Corpus format: one JSON object per line,
//! `{"name": <case>, "request": <raw request line>, "response": <normalized response line>}`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use gpumc_serve::json::Json;
use gpumc_serve::{DegradeLevel, Server, ServerConfig};

const MP: &str = "PTX MP\\n{ x = 0; flag = 0; }\\nP0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\\nst.weak x, 1 | ld.weak r0, flag ;\\nst.weak flag, 1 | ld.weak r1, x ;\\nexists (P1:r0 == 1 /\\\\ P1:r1 == 0)";

/// The canonical request sequence. Order matters: the second MP verify
/// must be a cache hit, the `cache:false` one a deliberate miss.
fn corpus_requests() -> Vec<(&'static str, String)> {
    vec![
        ("ping", r#"{"id":1,"verb":"ping"}"#.into()),
        (
            "verify-mp-fresh",
            format!(r#"{{"id":2,"verb":"verify","source":"{MP}","bound":1}}"#),
        ),
        (
            "verify-mp-cached",
            format!(r#"{{"id":3,"verb":"verify","source":"{MP}","bound":1}}"#),
        ),
        (
            "verify-mp-cache-off",
            format!(r#"{{"id":4,"verb":"verify","source":"{MP}","bound":1,"cache":false}}"#),
        ),
        (
            "verify-explicit-proto",
            format!(r#"{{"id":5,"verb":"verify","proto":1,"source":"{MP}","bound":1}}"#),
        ),
        (
            "unknown-top-level-field",
            format!(r#"{{"id":6,"verb":"verify","source":"{MP}","bound":1,"shard":3}}"#),
        ),
        (
            "unsupported-proto",
            r#"{"id":7,"verb":"ping","proto":99}"#.into(),
        ),
        ("not-json", r#"{"id":8,"verb":"#.into()),
        ("not-an-object", r#"[1,2,3]"#.into()),
        ("unknown-verb", r#"{"id":9,"verb":"teleport"}"#.into()),
        ("missing-source", r#"{"id":10,"verb":"verify"}"#.into()),
        (
            "unparsable-litmus",
            r#"{"id":11,"verb":"verify","source":"this is not a litmus test"}"#.into(),
        ),
        (
            "bad-engine",
            format!(r#"{{"id":12,"verb":"verify","source":"{MP}","engine":"quantum"}}"#),
        ),
        (
            "faults-disabled",
            format!(r#"{{"id":13,"verb":"verify","source":"{MP}","faults":"encode.pre:panic"}}"#),
        ),
        ("shutdown", r#"{"id":14,"verb":"shutdown"}"#.into()),
    ]
}

/// One corpus phase: the pinned degradation level and its cases.
type Phase = (Option<DegradeLevel>, Vec<(&'static str, String)>);

/// Brownout cases (DESIGN.md §18), replayed against servers pinned to
/// a degradation level: `status:"shed"` refusals and the `degraded`
/// response block are wire protocol too, so their bytes are golden.
fn degraded_phases() -> Vec<Phase> {
    vec![
        (
            Some(DegradeLevel::Sequential),
            vec![(
                "degraded-sequential",
                format!(r#"{{"id":15,"verb":"verify","source":"{MP}","bound":1,"portfolio":2}}"#),
            )],
        ),
        (
            Some(DegradeLevel::CacheOnly),
            vec![(
                "degraded-cache-only",
                format!(r#"{{"id":16,"verb":"verify","source":"{MP}","bound":1}}"#),
            )],
        ),
        (
            Some(DegradeLevel::Shed),
            vec![(
                "shed-overloaded",
                format!(r#"{{"id":17,"verb":"verify","source":"{MP}","bound":1}}"#),
            )],
        ),
    ]
}

/// Zeroes every `*_us` wall-clock field, recursively. Everything else
/// in a response — verdicts, solver statistics, error strings — is
/// deterministic and stays byte-comparable.
fn normalize(v: Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k.ends_with("_us") && matches!(v, Json::Num(_)) {
                        (k, Json::count(0))
                    } else {
                        (k, normalize(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(normalize).collect()),
        other => other,
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("serve_protocol.jsonl")
}

/// Replays one phase — a request sequence against a freshly bound
/// server pinned at `force` — and appends `(name, request, normalized
/// response)` per case. The server is shut down out-of-band so pinned
/// phases don't need a recorded shutdown case of their own.
fn replay_phase(
    force: Option<DegradeLevel>,
    cases: Vec<(&'static str, String)>,
    out: &mut Vec<(String, String, String)>,
) {
    let recorded_shutdown = cases.iter().any(|(name, _)| *name == "shutdown");
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        metrics_every_secs: None,
        force_degrade: force,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    for (name, request) in cases {
        writeln!(writer, "{request}").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        let response = Json::parse(line.trim_end()).expect("response parses");
        out.push((name.to_string(), request, normalize(response).to_string()));
    }
    if !recorded_shutdown {
        writeln!(writer, r#"{{"id":0,"verb":"shutdown"}}"#).expect("send shutdown");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv shutdown");
    }
    handle.join().expect("server thread");
}

/// Replays the full corpus (default phase, then the pinned brownout
/// phases) and returns `(name, request, normalized response)` per case.
fn replay() -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    replay_phase(None, corpus_requests(), &mut out);
    for (force, cases) in degraded_phases() {
        replay_phase(force, cases, &mut out);
    }
    out
}

#[test]
fn serve_protocol_matches_the_golden_corpus() {
    let path = golden_path();
    let actual = replay();

    if std::env::var_os("GPUMC_REGEN_GOLDEN").is_some() {
        let mut file = String::new();
        for (name, request, response) in &actual {
            let record = Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("request".into(), Json::str(request)),
                ("response".into(), Json::str(response)),
            ]);
            file.push_str(&record.to_string());
            file.push('\n');
        }
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden");
        std::fs::write(&path, file).expect("write golden corpus");
        eprintln!("regenerated {} ({} cases)", path.display(), actual.len());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with GPUMC_REGEN_GOLDEN=1 to record the corpus",
            path.display()
        )
    });
    let golden: Vec<(String, String, String)> = text
        .lines()
        .map(|l| {
            let v = Json::parse(l).expect("golden line parses");
            (
                v.get("name").and_then(Json::as_str).unwrap().to_string(),
                v.get("request").and_then(Json::as_str).unwrap().to_string(),
                v.get("response")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            )
        })
        .collect();

    // The corpus drives the replay comparison case-by-case so a
    // mismatch names the case, the request, and both byte strings.
    assert_eq!(
        golden.len(),
        actual.len(),
        "corpus has {} cases but the replay produced {} — \
         regenerate with GPUMC_REGEN_GOLDEN=1 and review the diff",
        golden.len(),
        actual.len()
    );
    for ((g_name, g_req, g_resp), (a_name, a_req, a_resp)) in golden.iter().zip(&actual) {
        assert_eq!(g_name, a_name, "corpus case order changed");
        assert_eq!(g_req, a_req, "[{g_name}] request line changed");
        assert_eq!(
            g_resp, a_resp,
            "[{g_name}] response bytes diverged from the golden corpus\n\
             request:  {g_req}\n\
             golden:   {g_resp}\n\
             actual:   {a_resp}\n\
             If the change is intentional, regenerate with \
             GPUMC_REGEN_GOLDEN=1 and commit the diff."
        );
    }
}

/// The cache-hit case in the corpus must actually be a cache hit —
/// guards against the corpus silently degrading into three fresh runs.
#[test]
fn corpus_cached_case_is_marked_cached() {
    let actual = replay();
    let by_name = |n: &str| {
        actual
            .iter()
            .find(|(name, ..)| name == n)
            .map(|(_, _, r)| Json::parse(r).unwrap())
            .unwrap()
    };
    let fresh = by_name("verify-mp-fresh");
    let hit = by_name("verify-mp-cached");
    let off = by_name("verify-mp-cache-off");
    assert_eq!(fresh.get("cached"), None);
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(off.get("cached"), None, "cache:false must bypass the cache");
    // All three answer the same verdict object.
    assert_eq!(fresh.get("verdict"), hit.get("verdict"));
    assert_eq!(fresh.get("verdict"), off.get("verdict"));
}

/// The brownout cases must actually exercise the ladder: verdicts
/// stamped with the right `degraded` level, shed refusals classified.
#[test]
fn corpus_brownout_cases_are_classified_and_stamped() {
    let actual = replay();
    let by_name = |n: &str| {
        actual
            .iter()
            .find(|(name, ..)| name == n)
            .map(|(_, _, r)| Json::parse(r).unwrap())
            .unwrap()
    };
    let level = |v: &Json| {
        v.get("degraded")
            .and_then(|d| d.get("level"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };

    let seq = by_name("degraded-sequential");
    assert_eq!(seq.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(level(&seq).as_deref(), Some("sequential"));
    assert_eq!(
        seq.get("portfolio"),
        Some(&Json::Null),
        "the requested portfolio must be downgraded away"
    );

    let cache_only = by_name("degraded-cache-only");
    assert_eq!(
        cache_only.get("status").and_then(Json::as_str),
        Some("done")
    );
    assert_eq!(level(&cache_only).as_deref(), Some("cache-only"));

    let shed = by_name("shed-overloaded");
    assert_eq!(shed.get("status").and_then(Json::as_str), Some("shed"));
    assert_eq!(shed.get("error").and_then(Json::as_str), Some("overloaded"));
    assert_eq!(level(&shed).as_deref(), Some("shed"));

    // The default-phase cases never degrade: no block anywhere.
    assert_eq!(by_name("verify-mp-fresh").get("degraded"), None);
}
