//! Cross-engine validation: the SAT engine (Dartagnan-style) and the
//! explicit-state engine (Alloy-style) must produce identical verdicts.
//! This is the paper's Table 5 validation methodology, run continuously.

use gpumc_encode::{encode, EncodeOptions};
use gpumc_exec::{enumerate, EnumerateOptions};
use gpumc_ir::{compile, unroll, Assertion, EventGraph};
use gpumc_models::{load, ModelKind};

struct Verdicts {
    condition: bool,
    liveness: bool,
    race: Option<bool>,
}

fn graph(src: &str, bound: u32) -> EventGraph {
    let p = gpumc_litmus::parse(src).expect("litmus parses");
    compile(&unroll(&p, bound).expect("unrolls"))
}

fn enumerate_verdicts(g: &EventGraph, model: ModelKind) -> Verdicts {
    let m = load(model);
    let cond = g.assertion.clone();
    let mut v = Verdicts {
        condition: false,
        liveness: false,
        race: if model == ModelKind::Vulkan {
            Some(false)
        } else {
            None
        },
    };
    enumerate(g, &m, &EnumerateOptions::default(), |b| {
        if b.execution.is_liveness_violation() {
            v.liveness = true;
        }
        if b.execution.all_completed() {
            if b.verdict.has_flag("dr") {
                if let Some(r) = &mut v.race {
                    *r = true;
                }
            }
            if let Some(a) = &cond {
                let c = match a {
                    Assertion::Exists(c) | Assertion::NotExists(c) | Assertion::Forall(c) => c,
                };
                let holds = b.execution.eval_condition(c) == Some(true);
                let target = !matches!(a, Assertion::Forall(_));
                if holds == target {
                    v.condition = true;
                }
            }
        }
    })
    .expect("enumeration succeeds");
    v
}

fn sat_verdicts(g: &EventGraph, model: ModelKind) -> Verdicts {
    let m = load(model);
    let mut enc = encode(g, &m, &EncodeOptions::default()).expect("encodes");
    let condition = enc.find_assertion_witness().expect("query").found;
    let liveness = enc.find_liveness_violation().expect("query").found;
    let race = if model == ModelKind::Vulkan {
        Some(enc.find_flag("dr").expect("query").found)
    } else {
        None
    };
    Verdicts {
        condition,
        liveness,
        race,
    }
}

fn assert_agreement(name: &str, src: &str, model: ModelKind, bound: u32) {
    let g = graph(src, bound);
    let e = enumerate_verdicts(&g, model);
    let s = sat_verdicts(&g, model);
    assert_eq!(
        e.condition, s.condition,
        "{name} [{model}]: condition verdict disagrees (enum={}, sat={})",
        e.condition, s.condition
    );
    assert_eq!(
        e.liveness, s.liveness,
        "{name} [{model}]: liveness verdict disagrees"
    );
    assert_eq!(e.race, s.race, "{name} [{model}]: race verdict disagrees");
}

// A corpus of litmus tests spanning the GPU features: both engines must
// agree on every single one.

const CORPUS_PTX: &[(&str, &str, u32)] = &[
    (
        "MP-weak",
        r#"
PTX MP-weak
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak x, 1 | ld.weak r0, flag ;
st.weak flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "MP-relacq",
        r#"
PTX MP-relacq
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1 | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1 | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "SB-weak",
        r#"
PTX SB
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak x, 1 | st.weak y, 1 ;
ld.weak r0, y | ld.weak r1, x ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "SB-fence-sc",
        r#"
PTX SB-fence
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1 | st.relaxed.gpu y, 1 ;
fence.sc.gpu | fence.sc.gpu ;
ld.relaxed.gpu r0, y | ld.relaxed.gpu r1, x ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "LB-weak",
        r#"
PTX LB
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
ld.weak r0, x | ld.weak r1, y ;
st.weak y, 1 | st.weak x, 1 ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
        1,
    ),
    (
        "LB-data-dep",
        r#"
PTX LB-dep
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
ld.weak r0, x | ld.weak r1, y ;
st.weak y, r0 | st.weak x, r1 ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
        1,
    ),
    (
        "IRIW-acquire",
        r#"
PTX IRIW
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 | P2@cta 2,gpu 0 | P3@cta 3,gpu 0 ;
st.relaxed.gpu x, 1 | st.relaxed.gpu y, 1 | ld.acquire.gpu r0, x | ld.acquire.gpu r2, y ;
 | | ld.acquire.gpu r1, y | ld.acquire.gpu r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 0 /\ P3:r2 == 1 /\ P3:r3 == 0)
"#,
        1,
    ),
    (
        "CoRR-atomic",
        r#"
PTX CoRR
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1 | ld.relaxed.gpu r0, x ;
st.relaxed.gpu x, 2 | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 2 /\ P1:r1 == 1)
"#,
        1,
    ),
    (
        "fig6-weak-partial-co",
        r#"
PTX fig6
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 | P3@cta 0,gpu 0 ;
st.weak x, 1 | st.weak x, 2 | ld.acquire.sys r0, x | ld.acquire.sys r2, x ;
 | | ld.acquire.sys r1, x | ld.acquire.sys r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2 /\ P3:r2 == 2 /\ P3:r3 == 1)
"#,
        1,
    ),
    (
        "rmw-add-contention",
        r#"
PTX rmw
{ c = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.relaxed.gpu.add r0, c, 1 | atom.relaxed.gpu.add r0, c, 1 ;
exists (P0:r0 == 0 /\ P1:r0 == 0)
"#,
        1,
    ),
    (
        "cas-lock-handoff",
        r#"
PTX cas
{ lock = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.acquire.gpu.cas r0, lock, 0, 1 | atom.acquire.gpu.cas r0, lock, 0, 2 ;
exists (P0:r0 == 0 /\ P1:r0 == 0)
"#,
        1,
    ),
    (
        "spin-unset-flag",
        r#"
PTX spin
{ flag = 0; done = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
LC00: | st.weak done, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#,
        2,
    ),
    (
        "spin-with-writer",
        r#"
PTX spin2
{ flag = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
LC00: | st.relaxed.gpu flag, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#,
        2,
    ),
    (
        "barrier-sb",
        r#"
PTX fig7
{ x = 0; y = 0; z = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 ;
st.weak x, 1 | st.weak y, 1 | st.weak z, 1 ;
ld.weak r2, z | bar.cta.sync 1 | ;
bar.cta.sync r2 | ld.weak r1, x | ;
ld.weak r0, y | | ;
forall (P0:r0 == 1 \/ P1:r1 == 1)
"#,
        1,
    ),
    (
        "mp-proxy-fenced",
        r#"
PTX mp-proxy
{ x = 0; flag = 0; s -> x @ surface; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
sust s, 1 | ld.acquire.cta r0, flag ;
fence.proxy.surface.cta | fence.proxy.alias.cta ;
st.release.cta flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "mp-proxy-unfenced",
        r#"
PTX mp-proxy-weak
{ x = 0; flag = 0; s -> x @ surface; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
sust s, 1 | ld.acquire.cta r0, flag ;
st.release.cta flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "branchy-control-dep",
        r#"
PTX ctrl
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
ld.weak r0, x | ld.weak r1, y ;
beq r0, 0, LC00 | st.weak x, 1 ;
st.weak y, 1 | ;
LC00: | ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
        1,
    ),
];

const CORPUS_VULKAN: &[(&str, &str, u32)] = &[
    (
        "vk-mp-atomics",
        r#"
VULKAN vk-mp
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | ld.atom.acq.dv.sc0 r0, flag ;
st.atom.rel.dv.sc0 flag, 1 | ld.atom.dv.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "vk-mp-fences",
        r#"
VULKAN vk-mp-fence
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | ld.atom.dv.sc0 r0, flag ;
membar.rel.dv.semsc0 | membar.acq.dv.semsc0 ;
st.atom.dv.sc0 flag, 1 | ld.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "vk-racy-plain",
        r#"
VULKAN vk-race
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | ld.sc0 r0, x ;
exists (P1:r0 == 1)
"#,
        1,
    ),
    (
        "vk-scope-too-narrow",
        r#"
VULKAN vk-scope
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.wg.sc0 x, 1 | ld.atom.acq.wg.sc0 r0, flag ;
st.atom.rel.wg.sc0 flag, 1 | ld.atom.wg.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "vk-fig16-rmw",
        r#"
VULKAN fig16
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 0 | P2@sg 0,wg 0,qf 0 ;
st.sc0 x, 1 | cbar.acqrel.semsc0 0 | cbar.acqrel.semsc0 0 ;
cbar.acqrel.semsc0 0 | atom.add.dv.sc0 r0, x, 1 | atom.add.dv.sc0 r0, x, 1 ;
exists (P1:r0 == 1 /\ P2:r0 == 1)
"#,
        1,
    ),
    (
        "vk-storage-classes",
        r#"
VULKAN vk-sc1
{ x = 0; y = 0 @ sc1; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | ld.atom.acq.dv.sc1 r0, y ;
membar.rel.dv.semsc1 | membar.acq.dv.semsc0 ;
st.atom.dv.sc1 y, 1 | ld.atom.dv.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
];

#[test]
fn engines_agree_on_ptx_corpus_v60() {
    for (name, src, bound) in CORPUS_PTX {
        assert_agreement(name, src, ModelKind::Ptx60, *bound);
    }
}

#[test]
fn engines_agree_on_ptx_corpus_v75() {
    for (name, src, bound) in CORPUS_PTX {
        assert_agreement(name, src, ModelKind::Ptx75, *bound);
    }
}

#[test]
fn engines_agree_on_vulkan_corpus() {
    for (name, src, bound) in CORPUS_VULKAN {
        assert_agreement(name, src, ModelKind::Vulkan, *bound);
    }
}
