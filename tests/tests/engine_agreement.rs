//! Cross-engine validation: the SAT engine (Dartagnan-style), the
//! explicit-state engine (Alloy-style), and the stateless DPOR engine
//! must produce identical verdicts — a three-arm differential gate.
//! This is the paper's Table 5 validation methodology, run continuously.

use gpumc::gpumc_sat::ParallelPolicy;
use gpumc::{EngineKind, Verifier, VerifyError};
use gpumc_catalog::Test;
use gpumc_encode::{encode, EncodeOptions};
use gpumc_exec::{dpor_explore, enumerate, DporOptions, EnumerateOptions};
use gpumc_ir::{compile, unroll, Assertion, EventGraph};
use gpumc_models::{load, ModelKind};

struct Verdicts {
    condition: bool,
    liveness: bool,
    race: Option<bool>,
}

fn graph(src: &str, bound: u32) -> EventGraph {
    let p = gpumc_litmus::parse(src).expect("litmus parses");
    compile(&unroll(&p, bound).expect("unrolls"))
}

fn enumerate_verdicts(g: &EventGraph, model: ModelKind) -> Verdicts {
    let m = load(model);
    let cond = g.assertion.clone();
    let mut v = Verdicts {
        condition: false,
        liveness: false,
        race: if model == ModelKind::Vulkan {
            Some(false)
        } else {
            None
        },
    };
    enumerate(g, &m, &EnumerateOptions::default(), |b| {
        if b.execution.is_liveness_violation() {
            v.liveness = true;
        }
        if b.execution.all_completed() {
            if b.verdict.has_flag("dr") {
                if let Some(r) = &mut v.race {
                    *r = true;
                }
            }
            if let Some(a) = &cond {
                let c = match a {
                    Assertion::Exists(c) | Assertion::NotExists(c) | Assertion::Forall(c) => c,
                };
                let holds = b.execution.eval_condition(c) == Some(true);
                let target = !matches!(a, Assertion::Forall(_));
                if holds == target {
                    v.condition = true;
                }
            }
        }
    })
    .expect("enumeration succeeds");
    v
}

fn dpor_verdicts(g: &EventGraph, model: ModelKind) -> Verdicts {
    let m = load(model);
    let cond = g.assertion.clone();
    let mut v = Verdicts {
        condition: false,
        liveness: false,
        race: if model == ModelKind::Vulkan {
            Some(false)
        } else {
            None
        },
    };
    dpor_explore(g, &m, &DporOptions::default(), |b| {
        if b.execution.is_liveness_violation() {
            v.liveness = true;
        }
        if b.execution.all_completed() {
            if b.verdict.has_flag("dr") {
                if let Some(r) = &mut v.race {
                    *r = true;
                }
            }
            if let Some(a) = &cond {
                let c = match a {
                    Assertion::Exists(c) | Assertion::NotExists(c) | Assertion::Forall(c) => c,
                };
                let holds = b.execution.eval_condition(c) == Some(true);
                let target = !matches!(a, Assertion::Forall(_));
                if holds == target {
                    v.condition = true;
                }
            }
        }
    })
    .expect("dpor exploration succeeds");
    v
}

fn sat_verdicts(g: &EventGraph, model: ModelKind) -> Verdicts {
    let m = load(model);
    let mut enc = encode(g, &m, &EncodeOptions::default()).expect("encodes");
    let condition = enc.find_assertion_witness().expect("query").found;
    let liveness = enc.find_liveness_violation().expect("query").found;
    let race = if model == ModelKind::Vulkan {
        Some(enc.find_flag("dr").expect("query").found)
    } else {
        None
    };
    Verdicts {
        condition,
        liveness,
        race,
    }
}

fn assert_agreement(name: &str, src: &str, model: ModelKind, bound: u32) {
    let g = graph(src, bound);
    let e = enumerate_verdicts(&g, model);
    let s = sat_verdicts(&g, model);
    let d = dpor_verdicts(&g, model);
    assert_eq!(
        e.condition, s.condition,
        "{name} [{model}]: condition verdict disagrees (enum={}, sat={})",
        e.condition, s.condition
    );
    assert_eq!(
        e.liveness, s.liveness,
        "{name} [{model}]: liveness verdict disagrees"
    );
    assert_eq!(e.race, s.race, "{name} [{model}]: race verdict disagrees");
    assert_eq!(
        d.condition, s.condition,
        "{name} [{model}]: condition verdict disagrees (dpor={}, sat={})",
        d.condition, s.condition
    );
    assert_eq!(
        d.liveness, s.liveness,
        "{name} [{model}]: liveness verdict disagrees (dpor vs sat)"
    );
    assert_eq!(
        d.race, s.race,
        "{name} [{model}]: race verdict disagrees (dpor vs sat)"
    );
}

// A corpus of litmus tests spanning the GPU features: both engines must
// agree on every single one.

const CORPUS_PTX: &[(&str, &str, u32)] = &[
    (
        "MP-weak",
        r#"
PTX MP-weak
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak x, 1 | ld.weak r0, flag ;
st.weak flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "MP-relacq",
        r#"
PTX MP-relacq
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1 | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1 | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "SB-weak",
        r#"
PTX SB
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak x, 1 | st.weak y, 1 ;
ld.weak r0, y | ld.weak r1, x ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "SB-fence-sc",
        r#"
PTX SB-fence
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1 | st.relaxed.gpu y, 1 ;
fence.sc.gpu | fence.sc.gpu ;
ld.relaxed.gpu r0, y | ld.relaxed.gpu r1, x ;
exists (P0:r0 == 0 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "LB-weak",
        r#"
PTX LB
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
ld.weak r0, x | ld.weak r1, y ;
st.weak y, 1 | st.weak x, 1 ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
        1,
    ),
    (
        "LB-data-dep",
        r#"
PTX LB-dep
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
ld.weak r0, x | ld.weak r1, y ;
st.weak y, r0 | st.weak x, r1 ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
        1,
    ),
    (
        "IRIW-acquire",
        r#"
PTX IRIW
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 | P2@cta 2,gpu 0 | P3@cta 3,gpu 0 ;
st.relaxed.gpu x, 1 | st.relaxed.gpu y, 1 | ld.acquire.gpu r0, x | ld.acquire.gpu r2, y ;
 | | ld.acquire.gpu r1, y | ld.acquire.gpu r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 0 /\ P3:r2 == 1 /\ P3:r3 == 0)
"#,
        1,
    ),
    (
        "CoRR-atomic",
        r#"
PTX CoRR
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.relaxed.gpu x, 1 | ld.relaxed.gpu r0, x ;
st.relaxed.gpu x, 2 | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 2 /\ P1:r1 == 1)
"#,
        1,
    ),
    (
        "fig6-weak-partial-co",
        r#"
PTX fig6
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 | P3@cta 0,gpu 0 ;
st.weak x, 1 | st.weak x, 2 | ld.acquire.sys r0, x | ld.acquire.sys r2, x ;
 | | ld.acquire.sys r1, x | ld.acquire.sys r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2 /\ P3:r2 == 2 /\ P3:r3 == 1)
"#,
        1,
    ),
    (
        "rmw-add-contention",
        r#"
PTX rmw
{ c = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.relaxed.gpu.add r0, c, 1 | atom.relaxed.gpu.add r0, c, 1 ;
exists (P0:r0 == 0 /\ P1:r0 == 0)
"#,
        1,
    ),
    (
        "cas-lock-handoff",
        r#"
PTX cas
{ lock = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.acquire.gpu.cas r0, lock, 0, 1 | atom.acquire.gpu.cas r0, lock, 0, 2 ;
exists (P0:r0 == 0 /\ P1:r0 == 0)
"#,
        1,
    ),
    (
        "spin-unset-flag",
        r#"
PTX spin
{ flag = 0; done = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
LC00: | st.weak done, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#,
        2,
    ),
    (
        "spin-with-writer",
        r#"
PTX spin2
{ flag = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
LC00: | st.relaxed.gpu flag, 1 ;
ld.relaxed.gpu r0, flag | ;
bne r0, 1, LC00 | ;
exists (P0:r0 == 1)
"#,
        2,
    ),
    (
        "barrier-sb",
        r#"
PTX fig7
{ x = 0; y = 0; z = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 ;
st.weak x, 1 | st.weak y, 1 | st.weak z, 1 ;
ld.weak r2, z | bar.cta.sync 1 | ;
bar.cta.sync r2 | ld.weak r1, x | ;
ld.weak r0, y | | ;
forall (P0:r0 == 1 \/ P1:r1 == 1)
"#,
        1,
    ),
    (
        "mp-proxy-fenced",
        r#"
PTX mp-proxy
{ x = 0; flag = 0; s -> x @ surface; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
sust s, 1 | ld.acquire.cta r0, flag ;
fence.proxy.surface.cta | fence.proxy.alias.cta ;
st.release.cta flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "mp-proxy-unfenced",
        r#"
PTX mp-proxy-weak
{ x = 0; flag = 0; s -> x @ surface; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
sust s, 1 | ld.acquire.cta r0, flag ;
st.release.cta flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "branchy-control-dep",
        r#"
PTX ctrl
{ x = 0; y = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
ld.weak r0, x | ld.weak r1, y ;
beq r0, 0, LC00 | st.weak x, 1 ;
st.weak y, 1 | ;
LC00: | ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#,
        1,
    ),
];

const CORPUS_VULKAN: &[(&str, &str, u32)] = &[
    (
        "vk-mp-atomics",
        r#"
VULKAN vk-mp
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | ld.atom.acq.dv.sc0 r0, flag ;
st.atom.rel.dv.sc0 flag, 1 | ld.atom.dv.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "vk-mp-fences",
        r#"
VULKAN vk-mp-fence
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | ld.atom.dv.sc0 r0, flag ;
membar.rel.dv.semsc0 | membar.acq.dv.semsc0 ;
st.atom.dv.sc0 flag, 1 | ld.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "vk-racy-plain",
        r#"
VULKAN vk-race
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | ld.sc0 r0, x ;
exists (P1:r0 == 1)
"#,
        1,
    ),
    (
        "vk-scope-too-narrow",
        r#"
VULKAN vk-scope
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.wg.sc0 x, 1 | ld.atom.acq.wg.sc0 r0, flag ;
st.atom.rel.wg.sc0 flag, 1 | ld.atom.wg.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
    (
        "vk-fig16-rmw",
        r#"
VULKAN fig16
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 0 | P2@sg 0,wg 0,qf 0 ;
st.sc0 x, 1 | cbar.acqrel.semsc0 0 | cbar.acqrel.semsc0 0 ;
cbar.acqrel.semsc0 0 | atom.add.dv.sc0 r0, x, 1 | atom.add.dv.sc0 r0, x, 1 ;
exists (P1:r0 == 1 /\ P2:r0 == 1)
"#,
        1,
    ),
    (
        "vk-storage-classes",
        r#"
VULKAN vk-sc1
{ x = 0; y = 0 @ sc1; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | ld.atom.acq.dv.sc1 r0, y ;
membar.rel.dv.semsc1 | membar.acq.dv.semsc0 ;
st.atom.dv.sc1 y, 1 | ld.atom.dv.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
        1,
    ),
];

// ---------------------------------------------------------------------
// Whole-catalog three-arm sweep: for every catalog test × applicable
// model × bounds 1–2, the DPOR verdicts must equal the SAT verdicts,
// and the unrestricted enumerator must agree wherever it completes
// within its cap. Branching/barrier tests the straight-line baseline
// rejects are covered by the DPOR arm alone (DPOR == SAT there).
// ---------------------------------------------------------------------

/// Exploration cap for the exhaustive arms: big enough for every
/// catalog test at bounds 1–2, small enough to cut a pathological
/// blow-up early instead of hanging CI.
const EXPLORE_CAP: u64 = 2_000_000;

struct CheckAllVerdicts {
    reachable: bool,
    expectation: Option<bool>,
    liveness: bool,
    race: Option<bool>,
}

fn check_all_verdicts(
    v: &Verifier,
    program: &gpumc::gpumc_ir::Program,
) -> Result<CheckAllVerdicts, VerifyError> {
    v.check_all(program).map(|o| CheckAllVerdicts {
        reachable: o.assertion.reachable,
        expectation: o.assertion.satisfied_expectation,
        liveness: o.liveness.violated,
        race: o.data_races.map(|d| d.violated),
    })
}

/// One (test, model, bound) cell of the sweep. Returns whether the
/// DPOR arm reached a verdict (capped exploration may withhold one).
fn assert_dpor_sat_agreement(t: &Test, model: ModelKind, bound: u32) -> bool {
    let program = match gpumc::parse_litmus(&t.source) {
        Ok(p) => p,
        Err(e) => panic!("{} does not parse: {e}", t.name),
    };
    let sat = Verifier::new(gpumc_models::load_shared(model)).with_bound(bound);
    let dpor = sat
        .clone()
        .with_engine(EngineKind::Dpor)
        .with_enumeration_cap(EXPLORE_CAP);
    let ctx = format!("{} under {model:?} at bound {bound}", t.name);
    let s = check_all_verdicts(&sat, &program);
    let d = check_all_verdicts(&dpor, &program);
    match (s, d) {
        (Ok(s), Ok(d)) => {
            assert_eq!(
                d.reachable, s.reachable,
                "assertion reachability differs on {ctx} (dpor vs sat)"
            );
            assert_eq!(
                d.expectation, s.expectation,
                "assertion expectation differs on {ctx} (dpor vs sat)"
            );
            assert_eq!(
                d.liveness, s.liveness,
                "liveness verdict differs on {ctx} (dpor vs sat)"
            );
            assert_eq!(
                d.race, s.race,
                "data-race verdict differs on {ctx} (dpor vs sat)"
            );
            // The unrestricted enumerator is the third arm wherever it
            // completes within the cap; straight-line-only rejections
            // and cap blow-ups are expected and skipped.
            let enumerate = sat
                .clone()
                .with_engine(EngineKind::Enumerate {
                    straight_line_only: false,
                })
                .with_enumeration_cap(EXPLORE_CAP);
            match check_all_verdicts(&enumerate, &program) {
                Ok(e) => {
                    assert_eq!(
                        e.reachable, s.reachable,
                        "assertion reachability differs on {ctx} (enum vs sat)"
                    );
                    assert_eq!(
                        e.liveness, s.liveness,
                        "liveness verdict differs on {ctx} (enum vs sat)"
                    );
                    assert_eq!(
                        e.race, s.race,
                        "data-race verdict differs on {ctx} (enum vs sat)"
                    );
                }
                Err(VerifyError::TooComplex(_) | VerifyError::Unsupported(_)) => {}
                Err(e) => panic!("unexpected enumerate failure on {ctx}: {e}"),
            }
            // Fourth arm: the work-stealing parallel DPOR driver must
            // agree wherever it answers. (On budget-capped violating
            // programs it may legitimately answer where the exhaustive
            // sequential engine ran out of budget — compared only when
            // both arms answered, which they did here.)
            let par = dpor.clone().with_parallel(ParallelPolicy::Portfolio(3));
            match check_all_verdicts(&par, &program) {
                Ok(p) => {
                    assert_eq!(
                        p.reachable, s.reachable,
                        "assertion reachability differs on {ctx} (parallel dpor vs sat)"
                    );
                    assert_eq!(
                        p.expectation, s.expectation,
                        "assertion expectation differs on {ctx} (parallel dpor vs sat)"
                    );
                    assert_eq!(
                        p.liveness, s.liveness,
                        "liveness verdict differs on {ctx} (parallel dpor vs sat)"
                    );
                    assert_eq!(
                        p.race, s.race,
                        "data-race verdict differs on {ctx} (parallel dpor vs sat)"
                    );
                }
                Err(VerifyError::Unknown(_) | VerifyError::TooComplex(_)) => {}
                Err(e) => panic!("unexpected parallel dpor failure on {ctx}: {e}"),
            }
            true
        }
        // A capped DPOR exploration withholds its verdict; never wrong.
        (_, Err(VerifyError::Unknown(_) | VerifyError::TooComplex(_))) => false,
        (Err(a), Err(b)) => {
            assert_eq!(
                std::mem::discriminant(&a),
                std::mem::discriminant(&b),
                "error classes differ on {ctx}: sat={a} dpor={b}"
            );
            false
        }
        (Ok(_), Err(e)) => panic!("only the dpor arm fails on {ctx}: {e}"),
        (Err(e), Ok(_)) => panic!("only the sat arm fails on {ctx}: {e}"),
    }
}

/// Sweeps a suite under the given models at bounds 1 and 2, requiring
/// that the DPOR arm reaches a verdict on nearly every configuration —
/// the cap may cut a few pathological cells, but wholesale withholding
/// would make the gate vacuous.
fn sweep_dpor(tests: &[Test], models: &[ModelKind]) {
    // Debug builds take a deterministic subsample to keep `cargo test`
    // fast; the release-mode `dpor-agreement` CI job sweeps everything.
    let stride = if cfg!(debug_assertions) { 4 } else { 1 };
    let mut cells = 0u32;
    let mut answered = 0u32;
    for t in tests.iter().step_by(stride) {
        for &model in models {
            for bound in [1, 2] {
                cells += 1;
                if assert_dpor_sat_agreement(t, model, bound) {
                    answered += 1;
                }
            }
        }
    }
    assert!(
        answered * 10 >= cells * 9,
        "dpor answered only {answered}/{cells} configurations"
    );
}

const PTX_MODELS: &[ModelKind] = &[ModelKind::Ptx60, ModelKind::Ptx75];
const VULKAN_MODELS: &[ModelKind] = &[ModelKind::Vulkan];

/// Splits an arch-mixed suite by litmus dialect.
fn by_arch(tests: Vec<Test>) -> (Vec<Test>, Vec<Test>) {
    tests
        .into_iter()
        .partition(|t| t.source.trim_start().starts_with("PTX"))
}

#[test]
fn dpor_agrees_with_sat_on_ptx_safety_suite() {
    sweep_dpor(&gpumc_catalog::ptx_safety_suite(), PTX_MODELS);
}

#[test]
fn dpor_agrees_with_sat_on_ptx_proxy_suite() {
    sweep_dpor(&gpumc_catalog::ptx_proxy_suite(), PTX_MODELS);
}

#[test]
fn dpor_agrees_with_sat_on_vulkan_safety_suite() {
    sweep_dpor(&gpumc_catalog::vulkan_safety_suite(), VULKAN_MODELS);
}

#[test]
fn dpor_agrees_with_sat_on_vulkan_drf_suite() {
    sweep_dpor(&gpumc_catalog::vulkan_drf_suite(), VULKAN_MODELS);
}

#[test]
fn dpor_agrees_with_sat_on_liveness_suite() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::liveness_suite());
    sweep_dpor(&ptx, PTX_MODELS);
    sweep_dpor(&vulkan, VULKAN_MODELS);
}

#[test]
fn dpor_agrees_with_sat_on_figure_tests() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::figure_tests());
    sweep_dpor(&ptx, PTX_MODELS);
    sweep_dpor(&vulkan, VULKAN_MODELS);
}

/// The tentpole claim in one test: the straight-line enumeration
/// baseline rejects every branching catalog test, and the DPOR engine
/// handles each of them with SAT-identical verdicts.
#[test]
fn dpor_covers_branching_tests_the_baseline_rejects() {
    let branching: Vec<Test> = gpumc_catalog::figure_tests()
        .into_iter()
        .chain(gpumc_catalog::liveness_suite())
        .filter(|t| t.uses_control_flow)
        .collect();
    assert!(
        !branching.is_empty(),
        "the catalog must contain branching tests"
    );
    let mut covered = 0;
    for t in &branching {
        let model = if t.source.trim_start().starts_with("PTX") {
            ModelKind::Ptx60
        } else {
            ModelKind::Vulkan
        };
        let program = gpumc::parse_litmus(&t.source).unwrap();
        let baseline = Verifier::new(gpumc_models::load_shared(model))
            .with_bound(t.bound.min(2))
            .with_engine(EngineKind::Enumerate {
                straight_line_only: true,
            });
        assert!(
            matches!(
                baseline.check_assertion(&program),
                Err(VerifyError::Unsupported(_))
            ),
            "{}: the straight-line baseline must reject control flow",
            t.name
        );
        if assert_dpor_sat_agreement(t, model, t.bound.min(2)) {
            covered += 1;
        }
    }
    assert!(covered > 0, "dpor must answer at least one branching test");
}

/// The multi-worker agreement sweep the `dpor-parallel` CI job runs on
/// the validation tier: for each worker count, the parallel driver's
/// verdicts must equal the sequential DPOR engine's, and back-to-back
/// runs must agree with each other (scheduling must not leak into
/// verdicts). Compared only where both arms answered — a capped
/// exploration may withhold, never contradict.
#[test]
fn parallel_dpor_worker_sweep_on_validation_tier() {
    let tests = gpumc_catalog::tier_tests(gpumc_catalog::Tier::Validation);
    let stride = if cfg!(debug_assertions) { 24 } else { 6 };
    let mut cells = 0u32;
    let mut answered = 0u32;
    for t in tests.iter().step_by(stride) {
        let model = if t.source.trim_start().starts_with("PTX") {
            ModelKind::Ptx75
        } else {
            ModelKind::Vulkan
        };
        let program = gpumc::parse_litmus(&t.source).expect("catalog test parses");
        let bound = t.bound.min(2);
        let seq = Verifier::new(gpumc_models::load_shared(model))
            .with_bound(bound)
            .with_engine(EngineKind::Dpor)
            .with_enumeration_cap(EXPLORE_CAP);
        let s = match check_all_verdicts(&seq, &program) {
            Ok(s) => s,
            Err(_) => continue,
        };
        for workers in [2u32, 4] {
            cells += 1;
            let par = seq
                .clone()
                .with_parallel(ParallelPolicy::Portfolio(workers));
            let ctx = format!("{} under {model:?} with {workers} workers", t.name);
            let (a, b) = match (
                check_all_verdicts(&par, &program),
                check_all_verdicts(&par, &program),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(VerifyError::Unknown(_)), _) | (_, Err(VerifyError::Unknown(_))) => continue,
                (Err(e), _) | (_, Err(e)) => panic!("hard parallel failure on {ctx}: {e}"),
            };
            answered += 1;
            for (run, v) in [("first", &a), ("second", &b)] {
                assert_eq!(
                    v.reachable, s.reachable,
                    "{run} run: reachability differs on {ctx}"
                );
                assert_eq!(
                    v.expectation, s.expectation,
                    "{run} run: expectation differs on {ctx}"
                );
                assert_eq!(
                    v.liveness, s.liveness,
                    "{run} run: liveness differs on {ctx}"
                );
                assert_eq!(v.race, s.race, "{run} run: race verdict differs on {ctx}");
            }
        }
    }
    assert!(
        answered * 10 >= cells * 9,
        "parallel dpor answered only {answered}/{cells} sweep cells"
    );
}

#[test]
fn engines_agree_on_ptx_corpus_v60() {
    for (name, src, bound) in CORPUS_PTX {
        assert_agreement(name, src, ModelKind::Ptx60, *bound);
    }
}

#[test]
fn engines_agree_on_ptx_corpus_v75() {
    for (name, src, bound) in CORPUS_PTX {
        assert_agreement(name, src, ModelKind::Ptx75, *bound);
    }
}

#[test]
fn engines_agree_on_vulkan_corpus() {
    for (name, src, bound) in CORPUS_VULKAN {
        assert_agreement(name, src, ModelKind::Vulkan, *bound);
    }
}
