//! Cluster smoke: the router fanning a suite over two real in-process
//! serve shards must merge results byte-identically to a single-node
//! run — including when one shard is hard-killed mid-run (the
//! `serve.worker.hard` fault point murders its worker on every
//! attempt) or is dead before the run starts. Failover is the router's
//! job; the merged bytes are the contract.

use gpumc_fleet::router::{home_shard, route, routing_digest, RoutePolicy, RouteRequest};
use gpumc_fleet::DEFAULT_VNODES;
use gpumc_serve::{Server, ServerConfig, WORKER_HARD_KILL_POINT};

fn spawn(allow_faults: bool) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        metrics_every_secs: None,
        allow_faults,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str) {
    let mut client = gpumc_serve::Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
}

/// The suite under test, as route requests (no faults armed).
fn suite() -> Vec<RouteRequest> {
    gpumc_catalog::figure_tests()
        .into_iter()
        .map(|t| RouteRequest {
            name: t.name,
            source: t.source,
            model: None,
            bound: t.bound,
            engine: "sat".into(),
            timeout_ms: None,
            faults: None,
        })
        .collect()
}

/// Which of `n` shards a request homes on — the same ring placement the
/// router computes internally.
fn home_of(req: &RouteRequest, n: usize) -> usize {
    home_shard(routing_digest(req, 1), n, DEFAULT_VNODES)
}

/// The single-node ground truth: the whole suite through one clean
/// shard.
fn single_node_merged(requests: &[RouteRequest]) -> String {
    let (addr, handle) = spawn(false);
    let report = route(
        requests,
        std::slice::from_ref(&addr),
        &RoutePolicy::default(),
    );
    assert!(report.all_done(), "single-node run must answer everything");
    shutdown(&addr);
    handle.join().unwrap();
    report.merged()
}

#[test]
fn hard_killed_shard_fails_over_byte_identically() {
    let requests = suite();
    let expected = single_node_merged(&requests);

    // Shard 1 is the victim: every request homing on it arms the
    // sustained worker hard-kill, so its worker thread dies on every
    // attempt until the shard's retry policy exhausts and it answers
    // `failed` — which the router treats as grounds for failover, and
    // the fault spec is only sent on the first attempt, so the retry
    // on shard 0 runs clean.
    let (addr0, handle0) = spawn(false);
    let (addr1, handle1) = spawn(true);
    let shards = [addr0.clone(), addr1.clone()];
    let killed: Vec<RouteRequest> = requests
        .iter()
        .map(|r| RouteRequest {
            faults: (home_of(r, 2) == 1).then(|| format!("{WORKER_HARD_KILL_POINT}:panic")),
            ..r.clone()
        })
        .collect();
    let victims = killed.iter().filter(|r| r.faults.is_some()).count();
    assert!(victims > 0, "no requests homed on the victim shard");
    assert!(victims < killed.len(), "every request homed on the victim");

    let report = route(&killed, &shards, &RoutePolicy::default());
    assert!(report.all_done(), "failover must answer everything");
    assert_eq!(
        report.merged(),
        expected,
        "merged cluster results diverged from the single-node run"
    );
    // The victim shard kept answering (with `failed`), so it is not
    // marked dead — but every one of its homed requests took retries.
    for r in report.results.iter() {
        let homed_on_victim = killed
            .iter()
            .find(|k| k.name == r.name)
            .map(|k| k.faults.is_some())
            .unwrap_or(false);
        if homed_on_victim {
            assert!(
                r.attempts > 1,
                "{}: expected a failover retry, got {} attempt(s)",
                r.name,
                r.attempts
            );
            assert_eq!(r.shard, Some(0), "{}: must settle on the survivor", r.name);
        }
    }

    shutdown(&addr0);
    shutdown(&addr1);
    handle0.join().unwrap();
    handle1.join().unwrap();
}

#[test]
fn dead_shard_fails_over_byte_identically() {
    let requests = suite();
    let expected = single_node_merged(&requests);

    // Shard 1 is bound, then shut down and joined before the run: its
    // address refuses connections, which the router must classify as
    // node death and fail everything over to shard 0.
    let (addr0, handle0) = spawn(false);
    let (addr1, handle1) = spawn(false);
    shutdown(&addr1);
    handle1.join().unwrap();
    let shards = [addr0.clone(), addr1];
    assert!(
        requests.iter().any(|r| home_of(r, 2) == 1),
        "no requests homed on the dead shard"
    );

    let report = route(&requests, &shards, &RoutePolicy::default());
    assert!(report.all_done(), "failover must answer everything");
    assert_eq!(
        report.merged(),
        expected,
        "merged results with a dead shard diverged from the single-node run"
    );
    assert!(report.shards[1].died, "the dead shard must be marked dead");
    assert_eq!(report.shards[1].answered, 0);

    shutdown(&addr0);
    handle0.join().unwrap();
}
