//! End-to-end SPIR-V pipeline tests (the Table 6 path): kernel DSL →
//! SPIR-V text → parse → per-thread lowering → DRF verification, with
//! ground truth and the GPUVerify-style baseline's known error classes.

use gpumc::Verifier;
use gpumc_spirv::{emit_spirv, gpuverify_corpus, lower, parse_spirv, Bucket};

fn verify_case(case: &gpumc_spirv::KernelCase) -> bool {
    let kernel = case.kernel.as_ref().expect("kernel exists");
    let text = emit_spirv(kernel);
    let module = parse_spirv(&text).expect("parses");
    let program = lower(&module, case.grid).expect("lowers");
    Verifier::new(gpumc_models::vulkan())
        .with_bound(2)
        .check_data_races(&program)
        .unwrap_or_else(|e| panic!("{}: {e}", case.name))
        .violated
}

#[test]
fn verifiable_kernels_match_ground_truth_sampled() {
    // Every 5th verifiable kernel through the full SPIR-V pipeline.
    let corpus = gpuverify_corpus();
    let verifiable: Vec<_> = corpus
        .iter()
        .filter(|c| c.bucket == Bucket::Verifiable)
        .collect();
    for case in verifiable.iter().step_by(5) {
        let racy = verify_case(case);
        assert_eq!(
            Some(racy),
            case.expected_racy,
            "{}: gpumc disagrees with ground truth",
            case.name
        );
    }
}

#[test]
fn baseline_error_classes_are_reproduced() {
    let corpus = gpuverify_corpus();
    // caslock: semantically race-free, baseline reports a race (the
    // paper's known false positive, mc-imperial/gpuverify#55).
    let caslock = corpus
        .iter()
        .find(|c| c.name.starts_with("caslock_cs"))
        .expect("corpus has caslock kernels");
    assert!(!verify_case(caslock), "gpumc: race-free");
    let gv = gpumc_gpuverify::analyze(caslock.kernel.as_ref().unwrap(), caslock.grid);
    assert!(gv.is_failure(), "baseline: false positive");

    // Cross-workgroup barrier neighbour access: racy, baseline misses it
    // (scope-unawareness).
    let barrier = corpus
        .iter()
        .find(|c| c.name.starts_with("barrier_phases"))
        .expect("corpus has barrier kernels");
    assert!(verify_case(barrier), "gpumc: racy across workgroups");
    let gv = gpumc_gpuverify::analyze(barrier.kernel.as_ref().unwrap(), barrier.grid);
    assert!(!gv.is_failure(), "baseline: false negative");
}

#[test]
fn disagreement_set_matches_the_annotation_table_exactly() {
    // The gpumc-vs-baseline disagreements on the verifiable corpus are
    // exactly the rows of `gpumc_gpuverify::expected_divergences()`,
    // with the catalogued directions. An extra disagreement is a
    // regression in one of the tools; a vanished one means a documented
    // baseline weakness no longer reproduces and the table is stale.
    // Either way this fails by name instead of nudging a loose count.
    let corpus = gpuverify_corpus();
    let mut found: Vec<(String, bool, bool)> = Vec::new();
    for case in corpus.iter().filter(|c| c.bucket == Bucket::Verifiable) {
        let ours = verify_case(case);
        let theirs =
            gpumc_gpuverify::analyze(case.kernel.as_ref().unwrap(), case.grid).is_failure();
        if ours != theirs {
            found.push((case.name.clone(), ours, theirs));
        }
    }
    found.sort();
    let expected = gpumc_gpuverify::expected_divergences();
    let expected_names: Vec<&str> = expected.iter().map(|d| d.name).collect();
    let found_names: Vec<&str> = found.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(
        found_names, expected_names,
        "disagreement set drifted from the annotation table"
    );
    for ((name, ours, theirs), d) in found.iter().zip(expected) {
        assert_eq!(*ours, d.gpumc_racy, "{name}: gpumc verdict direction");
        assert_eq!(
            *theirs, d.gpuverify_racy,
            "{name}: baseline verdict direction"
        );
    }
}

#[test]
fn spirv_text_is_reparsable_for_whole_corpus() {
    for case in gpuverify_corpus() {
        let Some(kernel) = &case.kernel else { continue };
        let text = emit_spirv(kernel);
        let module = parse_spirv(&text)
            .unwrap_or_else(|e| panic!("{}: emitted SPIR-V does not parse: {e}", case.name));
        assert_eq!(module.name, kernel.name);
        assert_eq!(module.buffers.len(), kernel.buffers.len());
    }
}
