//! Cache transparency: for every catalog test × model × bound, the
//! verdict served by a cache-enabled server — fresh on the first ask,
//! from the cache on the second — is identical to the verdict of a
//! cache-disabled verification of the same request. A cache that ever
//! changes an answer is a soundness bug, so this is swept wide.
//!
//! Debug builds subsample the catalog (stride 3) to keep `cargo test`
//! fast; release builds (CI tier-1 runs `cargo test -q` after a release
//! build, and the release test job this file rides in) sweep all of it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gpumc::Verifier;
use gpumc_models::ModelKind;
use gpumc_serve::json::Json;
use gpumc_serve::protocol::verdict_json;
use gpumc_serve::{Server, ServerConfig};

fn catalog() -> Vec<gpumc_catalog::Test> {
    let mut all = gpumc_catalog::ptx_safety_suite();
    all.extend(gpumc_catalog::ptx_proxy_suite());
    all.extend(gpumc_catalog::vulkan_safety_suite());
    all.extend(gpumc_catalog::vulkan_drf_suite());
    all.extend(gpumc_catalog::liveness_suite());
    all.extend(gpumc_catalog::figure_tests());
    all
}

/// The models a test is checked under: the dialect default plus, for
/// PTX programs, the older PTX model by explicit name.
fn models_for(program: &gpumc::gpumc_ir::Program) -> Vec<(Option<&'static str>, ModelKind)> {
    match program.arch {
        gpumc::gpumc_ir::Arch::Ptx => vec![
            (None, ModelKind::Ptx75),
            (Some("ptx-v6.0"), ModelKind::Ptx60),
        ],
        gpumc::gpumc_ir::Arch::Vulkan => vec![(None, ModelKind::Vulkan)],
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn verify(&mut self, source: &str, model: Option<&str>, bound: u32) -> Json {
        let source = Json::str(source);
        let model = match model {
            Some(m) => format!(r#","model":"{m}""#),
            None => String::new(),
        };
        writeln!(
            self.writer,
            r#"{{"verb":"verify","source":{source},"bound":{bound}{model}}}"#
        )
        .expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("recv");
        Json::parse(response.trim_end()).expect("response parses")
    }
}

#[test]
fn cached_verdicts_agree_with_uncached_across_the_catalog() {
    let stride = if cfg!(debug_assertions) { 3 } else { 1 };
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 2,
        metrics_every_secs: None,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let mut conn = Conn::connect(&addr);

    let mut combos = 0usize;
    let mut hits = 0usize;
    for (i, t) in catalog().iter().enumerate() {
        if i % stride != 0 {
            continue;
        }
        let program = gpumc::parse_litmus(&t.source).expect("catalog test parses");
        for (model_name, kind) in models_for(&program) {
            for bound in 1u32..=2 {
                // Ground truth with no cache anywhere: the library API.
                let v = Verifier::new(gpumc_models::load_shared(kind)).with_bound(bound);
                let uncached = verdict_json(
                    &program.name,
                    &v.check_all(&program).expect("catalog test verifies"),
                );

                let fresh = conn.verify(&t.source, model_name, bound);
                assert_eq!(
                    fresh.get("status").and_then(Json::as_str),
                    Some("done"),
                    "{} (model {model_name:?}, bound {bound}): {fresh}",
                    t.name
                );
                let second = conn.verify(&t.source, model_name, bound);
                if second.get("cached").and_then(Json::as_bool) == Some(true) {
                    hits += 1;
                }
                combos += 1;
                assert_eq!(
                    fresh.get("verdict"),
                    Some(&uncached),
                    "{} (model {model_name:?}, bound {bound}): fresh verdict diverged",
                    t.name
                );
                assert_eq!(
                    second.get("verdict"),
                    Some(&uncached),
                    "{} (model {model_name:?}, bound {bound}): cached verdict diverged",
                    t.name
                );
            }
        }
    }
    // Every second ask must have been answered from the cache —
    // otherwise this swept nothing.
    assert_eq!(hits, combos, "some duplicate requests missed the cache");
    assert!(combos >= 50, "only {combos} combinations swept");

    writeln!(conn.writer, r#"{{"verb":"shutdown"}}"#).expect("send shutdown");
    handle.join().unwrap();
}
