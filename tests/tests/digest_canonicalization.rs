//! The content digest is the cache's notion of request identity, so it
//! must be a function of the request's *meaning*, not its wire bytes:
//!
//! * invariant under JSON key order, inter-token whitespace, and
//!   elision of default-valued fields (`bound:2`, `engine:"sat"`,
//!   `proto:1`, `cache:true`, `simplify:true`),
//! * and injective over distinct (test, model, bound, property,
//!   engine) tuples across the whole catalog — a collision would serve
//!   one test's verdict for another.

use std::collections::HashMap;

use gpumc_fleet::digest::{digest_hex, resolve_model, source_digest};
use gpumc_serve::json::Json;
use gpumc_serve::protocol::{engine_name, parse_request, Request, PROTOCOL_VERSION};
use proptest::prelude::*;

/// Every catalog test, across the suites the CLI exposes.
fn catalog() -> Vec<gpumc_catalog::Test> {
    let mut all = gpumc_catalog::ptx_safety_suite();
    all.extend(gpumc_catalog::ptx_proxy_suite());
    all.extend(gpumc_catalog::vulkan_safety_suite());
    all.extend(gpumc_catalog::vulkan_drf_suite());
    all.extend(gpumc_catalog::liveness_suite());
    all.extend(gpumc_catalog::figure_tests());
    all
}

/// The digest the server computes for a parsed verify request — the
/// same call chain `dispatch_line` uses.
fn request_digest_of(line: &str) -> u128 {
    let envelope = parse_request(line).expect("request parses");
    let Request::Verify(req) = envelope.request else {
        panic!("not a verify request");
    };
    source_digest(
        &req.source,
        req.model.as_deref(),
        req.bound,
        "all",
        engine_name(req.engine),
        PROTOCOL_VERSION,
    )
    .expect("digestible request")
}

/// Renders a verify request with a chosen field order and whitespace
/// palette. `fields` are pre-rendered `"key":value` fragments.
fn render(fields: &[String], order: &[usize], pad: &str) -> String {
    let body: Vec<&str> = order.iter().map(|&i| fields[i].as_str()).collect();
    format!("{{{pad}{}{pad}}}", body.join(&format!(",{pad}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Key order, whitespace, and default-field elision never change
    /// the digest; explicit non-defaults always do the same as their
    /// canonical spelling.
    #[test]
    fn digest_is_invariant_under_wire_noise(
        test_idx in 0usize..64,
        bound in 1u32..4,
        engine_idx in 0usize..4,
        elide_flag in 0usize..2,
        shuffle_seed in any::<u32>(),
        pad_idx in 0usize..4,
    ) {
        let elide_defaults = elide_flag == 1;
        let tests = catalog();
        let t = &tests[test_idx % tests.len()];
        let engine = ["sat", "enumerate", "alloy", "dpor"][engine_idx];
        let pad = ["", " ", "\t", "  \t "][pad_idx];

        // The canonical spelling: every field explicit, fixed order,
        // no whitespace.
        let source = Json::str(&t.source).to_string();
        let canonical = format!(
            r#"{{"verb":"verify","source":{source},"bound":{bound},"engine":"{engine}","proto":1,"cache":true,"simplify":true}}"#
        );
        let want = request_digest_of(&canonical);

        // The noisy spelling: shuffled key order, padded separators,
        // defaults optionally elided.
        let mut fields = vec![
            format!(r#""verb":{pad}"verify""#),
            format!(r#""source":{pad}{source}"#),
        ];
        if !(elide_defaults && bound == 2) {
            fields.push(format!(r#""bound":{pad}{bound}"#));
        }
        if !(elide_defaults && engine == "sat") {
            fields.push(format!(r#""engine":{pad}"{engine}""#));
        }
        if !elide_defaults {
            fields.push(r#""proto":1"#.into());
            fields.push(r#""cache":true"#.into());
            fields.push(r#""simplify":true"#.into());
            fields.push(r#""id":7"#.into());
        }
        // Fisher–Yates with a splitmix-style step — deterministic per seed.
        let mut order: Vec<usize> = (0..fields.len()).collect();
        let mut state = u64::from(shuffle_seed) | 1;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x2545_f491_4f6c_dd1d);
            order.swap(i, (state as usize) % (i + 1));
        }
        let noisy = render(&fields, &order, pad);

        prop_assert_eq!(
            digest_hex(request_digest_of(&noisy)),
            digest_hex(want),
            "digest changed under wire noise\ncanonical: {}\nnoisy:     {}",
            canonical,
            noisy
        );
    }
}

/// Distinct (test, model, bound, property, engine) tuples never share a
/// digest anywhere on the catalog. Model identity is the *resolved*
/// model (an explicit `ptx-v7.5` and an inferred PTX default are the
/// same model on purpose), so the key canonicalizes the same way the
/// digest does.
#[test]
fn distinct_tuples_never_collide_on_the_catalog() {
    let mut seen: HashMap<u128, (String, String, u32, &str, &str)> = HashMap::new();
    let mut digests = 0usize;
    for t in catalog() {
        let program = gpumc::parse_litmus(&t.source).expect("catalog test parses");
        let model = resolve_model(None, program.arch).expect("default model");
        for bound in 1u32..=2 {
            for property in ["assertion", "liveness", "datarace", "all"] {
                for engine in ["sat", "enumerate", "alloy", "dpor"] {
                    let d = source_digest(&t.source, None, bound, property, engine, 1)
                        .expect("catalog test digests");
                    let key = (
                        t.source.clone(),
                        format!("{model:?}"),
                        bound,
                        property,
                        engine,
                    );
                    digests += 1;
                    if let Some(prev) = seen.insert(d, key.clone()) {
                        assert_eq!(
                            prev,
                            key,
                            "digest collision on {} between distinct tuples",
                            digest_hex(d)
                        );
                    }
                }
            }
        }
    }
    // Sanity: the sweep actually exercised a large corpus.
    assert!(digests > 1000, "only {digests} digests swept");
}
