//! Differential conformance suite for CNF simplification
//! (`Verifier::with_simplify`): for every catalog test, under every
//! applicable model and under bounds 1 and 2, the three verdicts with
//! SatELite-style simplification ON (the default) must be identical to
//! the verdicts with simplification OFF, including which error class a
//! failing configuration produces.
//!
//! This is the CI gate behind the simplifier: eliminating variables,
//! subsuming clauses and substituting equivalent literals is only
//! admissible because the frozen-variable contract keeps every
//! witness-decoded and query-touched variable intact, and this suite
//! checks that claim on the whole catalog rather than trusting the
//! soundness argument in DESIGN.md §12.
//!
//! Witness comparison is by presence and validity, not exact assignment:
//! both pipelines interpreter-revalidate every witness they return
//! (`EncodeError::WitnessMismatch` otherwise), and two correct solvers
//! may legitimately pick different satisfying executions — just as two
//! `--fresh` runs may. What must never differ is whether one exists.

use gpumc::{Verifier, VerifyError};
use gpumc_catalog::Test;
use gpumc_models::ModelKind;

/// Coarse error class: two runs "agree" on failure when they fail the
/// same way, not necessarily with byte-identical messages.
fn err_class(e: &VerifyError) -> std::mem::Discriminant<VerifyError> {
    std::mem::discriminant(e)
}

/// Asserts that `check_all` with simplification on and off gives
/// identical verdicts for one (test, model, bound) configuration.
fn assert_agreement(t: &Test, model: ModelKind, bound: u32) {
    let program = match gpumc::parse_litmus(&t.source) {
        Ok(p) => p,
        Err(e) => panic!("{} does not parse: {e}", t.name),
    };
    let v = Verifier::new(gpumc_models::load_shared(model)).with_bound(bound);
    let on = v.clone().with_simplify(true).check_all(&program);
    let off = v.with_simplify(false).check_all(&program);
    let ctx = format!("{} under {model:?} at bound {bound}", t.name);
    match (on, off) {
        (Ok(s), Ok(p)) => {
            assert_eq!(
                s.assertion.reachable, p.assertion.reachable,
                "assertion reachability differs on {ctx}"
            );
            assert_eq!(
                s.assertion.satisfied_expectation, p.assertion.satisfied_expectation,
                "assertion expectation verdict differs on {ctx}"
            );
            assert_eq!(
                s.assertion.witness.is_some(),
                p.assertion.witness.is_some(),
                "assertion witness presence differs on {ctx}"
            );
            assert_eq!(
                s.liveness.violated, p.liveness.violated,
                "liveness verdict differs on {ctx}"
            );
            assert_eq!(
                s.liveness.witness.is_some(),
                p.liveness.witness.is_some(),
                "liveness witness presence differs on {ctx}"
            );
            assert_eq!(
                s.data_races.as_ref().map(|d| d.violated),
                p.data_races.as_ref().map(|d| d.violated),
                "data-race verdict differs on {ctx}"
            );
            // The simplified run must actually have simplified, and may
            // only ever shrink the clause database.
            let st = s
                .simplify
                .unwrap_or_else(|| panic!("no simplify stats on {ctx}"));
            assert!(
                st.clauses_after <= st.clauses_before,
                "simplification grew the clause count on {ctx}: {st:?}"
            );
            assert!(p.simplify.is_none(), "stats recorded with simplify off");
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                err_class(&a),
                err_class(&b),
                "error classes differ on {ctx}: simplified={a} plain={b}"
            );
        }
        (Ok(_), Err(e)) => panic!("only the unsimplified path fails on {ctx}: {e}"),
        (Err(e), Ok(_)) => panic!("only the simplified path fails on {ctx}: {e}"),
    }
}

/// Runs the agreement check over a suite for the given models × bounds.
fn sweep(tests: &[Test], models: &[ModelKind]) {
    for t in tests {
        for &model in models {
            for bound in [1, 2] {
                assert_agreement(t, model, bound);
            }
        }
    }
}

const PTX_MODELS: &[ModelKind] = &[ModelKind::Ptx60, ModelKind::Ptx75];
const VULKAN_MODELS: &[ModelKind] = &[ModelKind::Vulkan];

/// Splits an arch-mixed suite by litmus dialect.
fn by_arch(tests: Vec<Test>) -> (Vec<Test>, Vec<Test>) {
    tests
        .into_iter()
        .partition(|t| t.source.trim_start().starts_with("PTX"))
}

#[test]
fn ptx_safety_suite_agrees() {
    sweep(&gpumc_catalog::ptx_safety_suite(), PTX_MODELS);
}

#[test]
fn ptx_proxy_suite_agrees() {
    sweep(&gpumc_catalog::ptx_proxy_suite(), PTX_MODELS);
}

#[test]
fn vulkan_safety_suite_agrees() {
    sweep(&gpumc_catalog::vulkan_safety_suite(), VULKAN_MODELS);
}

#[test]
fn vulkan_drf_suite_agrees() {
    sweep(&gpumc_catalog::vulkan_drf_suite(), VULKAN_MODELS);
}

#[test]
fn liveness_suite_agrees() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::liveness_suite());
    sweep(&ptx, PTX_MODELS);
    sweep(&vulkan, VULKAN_MODELS);
}

#[test]
fn figure_tests_agree() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::figure_tests());
    sweep(&ptx, PTX_MODELS);
    sweep(&vulkan, VULKAN_MODELS);
}
