//! Differential conformance suite for portfolio solving
//! (`Verifier::with_parallel`): for every catalog test, under every
//! applicable model and under bounds 1 and 2, the three verdicts with a
//! portfolio of diversified racing solvers (N ∈ {2, 4}) must be
//! identical to the sequential verdicts, including which error class a
//! failing configuration produces.
//!
//! This is the CI gate behind DESIGN.md §14: racing diversified solver
//! configurations and importing each other's learnt clauses is only
//! admissible because every shared clause is derived by resolution from
//! the common clause database, and the cube-and-conquer fallback only
//! answers UNSAT when the full cube cover is refuted. This suite checks
//! that claim on the whole catalog rather than trusting the argument.
//!
//! Witness comparison is by presence and validity, not exact
//! assignment: a diversified racer may legitimately find a different
//! satisfying execution than the sequential solver — just as two
//! `--fresh` runs may. What must never differ is whether one exists.

use gpumc::gpumc_sat::ParallelPolicy;
use gpumc::{Verifier, VerifyError};
use gpumc_catalog::Test;
use gpumc_models::ModelKind;

/// Coarse error class: two runs "agree" on failure when they fail the
/// same way, not necessarily with byte-identical messages.
fn err_class(e: &VerifyError) -> std::mem::Discriminant<VerifyError> {
    std::mem::discriminant(e)
}

/// Asserts that `check_all` under a portfolio of `workers` racers gives
/// the same verdicts as the sequential run for one (test, model, bound)
/// configuration.
fn assert_agreement(t: &Test, model: ModelKind, bound: u32, workers: u32) {
    let program = match gpumc::parse_litmus(&t.source) {
        Ok(p) => p,
        Err(e) => panic!("{} does not parse: {e}", t.name),
    };
    let v = Verifier::new(gpumc_models::load_shared(model)).with_bound(bound);
    let seq = v.clone().check_all(&program);
    let par = v
        .with_parallel(ParallelPolicy::Portfolio(workers))
        .check_all(&program);
    let ctx = format!(
        "{} under {model:?} at bound {bound} portfolio({workers})",
        t.name
    );
    match (seq, par) {
        (Ok(s), Ok(p)) => {
            assert_eq!(
                s.assertion.reachable, p.assertion.reachable,
                "assertion reachability differs on {ctx}"
            );
            assert_eq!(
                s.assertion.satisfied_expectation, p.assertion.satisfied_expectation,
                "assertion expectation verdict differs on {ctx}"
            );
            assert_eq!(
                s.assertion.witness.is_some(),
                p.assertion.witness.is_some(),
                "assertion witness presence differs on {ctx}"
            );
            assert_eq!(
                s.liveness.violated, p.liveness.violated,
                "liveness verdict differs on {ctx}"
            );
            assert_eq!(
                s.liveness.witness.is_some(),
                p.liveness.witness.is_some(),
                "liveness witness presence differs on {ctx}"
            );
            assert_eq!(
                s.data_races.as_ref().map(|d| d.violated),
                p.data_races.as_ref().map(|d| d.violated),
                "data-race verdict differs on {ctx}"
            );
            assert!(
                s.portfolio.is_none(),
                "portfolio stats recorded on the sequential run of {ctx}"
            );
            let ps = p
                .portfolio
                .unwrap_or_else(|| panic!("no portfolio stats on {ctx}"));
            assert_eq!(ps.workers, workers, "worker count mismatch on {ctx}");
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                err_class(&a),
                err_class(&b),
                "error classes differ on {ctx}: sequential={a} portfolio={b}"
            );
        }
        (Ok(_), Err(e)) => panic!("only the portfolio path fails on {ctx}: {e}"),
        (Err(e), Ok(_)) => panic!("only the sequential path fails on {ctx}: {e}"),
    }
}

/// Runs the agreement check over a suite for the given models × bounds
/// × portfolio widths.
fn sweep(tests: &[Test], models: &[ModelKind]) {
    for t in tests {
        for &model in models {
            for bound in [1, 2] {
                for workers in [2, 4] {
                    assert_agreement(t, model, bound, workers);
                }
            }
        }
    }
}

const PTX_MODELS: &[ModelKind] = &[ModelKind::Ptx60, ModelKind::Ptx75];
const VULKAN_MODELS: &[ModelKind] = &[ModelKind::Vulkan];

/// Splits an arch-mixed suite by litmus dialect.
fn by_arch(tests: Vec<Test>) -> (Vec<Test>, Vec<Test>) {
    tests
        .into_iter()
        .partition(|t| t.source.trim_start().starts_with("PTX"))
}

#[test]
fn ptx_safety_suite_agrees() {
    sweep(&gpumc_catalog::ptx_safety_suite(), PTX_MODELS);
}

#[test]
fn ptx_proxy_suite_agrees() {
    sweep(&gpumc_catalog::ptx_proxy_suite(), PTX_MODELS);
}

#[test]
fn vulkan_safety_suite_agrees() {
    sweep(&gpumc_catalog::vulkan_safety_suite(), VULKAN_MODELS);
}

#[test]
fn vulkan_drf_suite_agrees() {
    sweep(&gpumc_catalog::vulkan_drf_suite(), VULKAN_MODELS);
}

#[test]
fn liveness_suite_agrees() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::liveness_suite());
    sweep(&ptx, PTX_MODELS);
    sweep(&vulkan, VULKAN_MODELS);
}

#[test]
fn figure_tests_agree() {
    let (ptx, vulkan) = by_arch(gpumc_catalog::figure_tests());
    sweep(&ptx, PTX_MODELS);
    sweep(&vulkan, VULKAN_MODELS);
}

/// The cube-and-conquer path: a conflict budget small enough to blow on
/// a real catalog test triggers cube splitting inside the portfolio.
/// Whatever the cubes answer must match the unbudgeted sequential
/// verdict — a definitive answer reached through cubes is still exact —
/// and a budget-exhausted `Unknown` must stay `Unknown`, never flip.
#[test]
fn cube_fallback_never_flips_a_verdict() {
    for t in gpumc_catalog::figure_tests() {
        let program = match gpumc::parse_litmus(&t.source) {
            Ok(p) => p,
            Err(e) => panic!("{} does not parse: {e}", t.name),
        };
        let (ptx, model) = (t.source.trim_start().starts_with("PTX"), ModelKind::Vulkan);
        let model = if ptx { ModelKind::Ptx75 } else { model };
        let v = Verifier::new(gpumc_models::load_shared(model)).with_bound(2);
        let baseline = v.clone().check_all(&program);
        let budgeted = v
            .with_conflict_budget(40)
            .with_parallel(ParallelPolicy::Portfolio(2))
            .check_all(&program);
        match (baseline, budgeted) {
            (Ok(s), Ok(p)) => {
                // The budgeted portfolio reached a definitive answer
                // (directly or through cubes): it must be the same one.
                assert_eq!(
                    s.assertion.reachable, p.assertion.reachable,
                    "cube fallback flipped reachability on {}",
                    t.name
                );
                assert_eq!(
                    s.liveness.violated, p.liveness.violated,
                    "cube fallback flipped liveness on {}",
                    t.name
                );
                assert_eq!(
                    s.data_races.as_ref().map(|d| d.violated),
                    p.data_races.as_ref().map(|d| d.violated),
                    "cube fallback flipped the data-race verdict on {}",
                    t.name
                );
            }
            // Budget exhaustion even after cube splitting is a legal
            // Unknown; anything else from the budgeted run is not.
            (Ok(_), Err(VerifyError::Unknown(_))) => {}
            (Ok(_), Err(e)) => panic!("budgeted portfolio failed hard on {}: {e}", t.name),
            (Err(a), Err(b)) => assert_eq!(err_class(&a), err_class(&b), "{}", t.name),
            (Err(e), Ok(_)) => panic!("only the baseline fails on {}: {e}", t.name),
        }
    }
}
