//! Cluster chaos matrix: the self-healing contract of the fleet layer
//! under injected death, stalls, and overload (DESIGN.md §18).
//!
//! The invariants every scenario checks:
//!
//! * every *answered* verdict is byte-identical to a single-node
//!   baseline run — failover, hedging, and brownout may change *who*
//!   answers, never *what*;
//! * every *unanswered* request is classified (`failed` or `shed`),
//!   never silently dropped;
//! * a quarantined shard is readmitted by the half-open probe within
//!   the run.
//!
//! Scenarios that install a process-global fault plan serialize on a
//! shared mutex: `route.transport` and `route.stall_ms` are probed by
//! every router in this test binary, so concurrent tests would bleed
//! injections into each other.

use std::io::Read;
use std::sync::{Mutex, MutexGuard};

use gpumc_fleet::router::{route, RoutePolicy, RouteRequest};
use gpumc_serve::{DegradeLevel, Server, ServerConfig};

/// Serializes every test in this file: global fault plans and real
/// socket servers do not share a process gracefully.
static CHAOS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(|e| e.into_inner())
}

fn spawn_shard(force: Option<DegradeLevel>) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        force_degrade: force,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &str) {
    let mut client = gpumc_serve::Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
}

/// An address that refuses connections: a shard that died before the
/// run.
fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

/// A shard that accepts, swallows the request, and goes silent — a
/// wedged node, distinguishable from a dead one only by timeout.
fn stalled_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut s) = conn else { continue };
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_secs(600));
                }
            });
        }
    });
    addr
}

fn suite() -> Vec<RouteRequest> {
    gpumc_catalog::figure_tests()
        .into_iter()
        .map(|t| RouteRequest {
            name: t.name,
            source: t.source,
            model: None,
            bound: t.bound,
            engine: "sat".into(),
            timeout_ms: None,
            faults: None,
        })
        .collect()
}

/// Single-node ground truth (run with no faults installed).
fn baseline(requests: &[RouteRequest]) -> String {
    let (addr, handle) = spawn_shard(None);
    let report = route(
        requests,
        std::slice::from_ref(&addr),
        &RoutePolicy::default(),
    );
    assert!(report.all_done(), "baseline must answer everything");
    shutdown(&addr);
    handle.join().unwrap();
    report.merged()
}

#[test]
fn dead_and_stalled_shards_fail_over_byte_identically() {
    let _g = lock();
    let requests = suite();
    let expected = baseline(&requests);

    // Ring of three: one healthy shard, one dead, one wedged. The
    // wedged one is only survivable because the per-attempt read
    // timeout turns its silence into a transport failure.
    let (healthy, handle) = spawn_shard(None);
    let shards = [healthy.clone(), dead_addr(), stalled_addr()];
    let policy = RoutePolicy {
        read_timeout_ms: Some(500),
        ..RoutePolicy::default()
    };
    let report = route(&requests, &shards, &policy);
    assert!(report.all_done(), "failover must answer everything");
    assert_eq!(
        report.merged(),
        expected,
        "merged results with dead+stalled shards diverged from single-node"
    );
    assert!(report.shards[1].died, "the dead shard must be marked dead");
    assert_eq!(report.shards[1].answered, 0);
    assert_eq!(
        report.shards[2].answered, 0,
        "a wedged shard answers nothing"
    );

    shutdown(&healthy);
    handle.join().unwrap();
}

#[test]
fn shedding_shard_fails_over_byte_identically() {
    let _g = lock();
    let requests = suite();
    let expected = baseline(&requests);

    // One shard is browned out to the shed rung: it answers instantly
    // with `status:"shed"`, which the router treats as "alive but
    // refusing" — failover without a breaker trip.
    let (healthy, h0) = spawn_shard(None);
    let (shedding, h1) = spawn_shard(Some(DegradeLevel::Shed));
    let shards = [healthy.clone(), shedding.clone()];
    let report = route(&requests, &shards, &RoutePolicy::default());
    assert!(report.all_done(), "failover must answer everything");
    assert_eq!(
        report.merged(),
        expected,
        "merged results with a shedding shard diverged from single-node"
    );
    let trips: u64 = report.shards.iter().map(|s| s.trips).sum();
    assert_eq!(trips, 0, "shed responses prove liveness; no breaker trips");
    assert!(
        !report.shards.iter().any(|s| s.died),
        "a shedding shard is not dead"
    );

    shutdown(&healthy);
    shutdown(&shedding);
    h0.join().unwrap();
    h1.join().unwrap();
}

#[test]
fn cluster_wide_outage_classifies_every_request() {
    let _g = lock();
    let requests = suite();

    // One shard shedding everything, one dead: no request can be
    // answered, and every single one must still come back classified.
    let (shedding, handle) = spawn_shard(Some(DegradeLevel::Shed));
    let shards = [shedding.clone(), dead_addr()];
    let policy = RoutePolicy {
        max_attempts: 2,
        backoff_ms: 1,
        ..RoutePolicy::default()
    };
    let report = route(&requests, &shards, &policy);
    assert!(!report.all_done());
    assert_eq!(report.results.len(), requests.len(), "nothing dropped");
    for r in report.results.iter() {
        assert!(
            r.status == "shed" || r.status == "failed",
            "{}: unclassified terminal status `{}`",
            r.name,
            r.status
        );
        assert!(r.attempts >= 1, "{}: no attempts recorded", r.name);
    }

    shutdown(&shedding);
    handle.join().unwrap();
}

#[test]
fn transport_blip_trips_the_breaker_and_the_half_open_probe_readmits() {
    let _g = lock();
    let requests = suite();
    let expected = baseline(&requests);

    // A single shard behind an injected one-shot transport failure: the
    // first attempt trips the breaker (threshold 1), quarantining the
    // only shard in the ring. The run can only complete if the
    // half-open probe readmits it — which is the assertion.
    let (addr, handle) = spawn_shard(None);
    let policy = RoutePolicy {
        breaker: gpumc_fleet::BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 100,
        },
        ..RoutePolicy::default()
    };

    // Phase 1 — one request, so no concurrent in-flight success can
    // re-close the breaker before the cooldown: the full lifecycle
    // (trip → quarantine → half-open probe → readmit) is deterministic.
    gpumc::fault::install_global(std::sync::Arc::new(
        gpumc::fault::FaultPlan::parse("route.transport:spurious_unknown:once").unwrap(),
    ));
    let report = route(&requests[..1], std::slice::from_ref(&addr), &policy);
    gpumc::fault::clear_global();
    assert!(
        report.all_done(),
        "the readmitted shard must finish the run"
    );
    assert_eq!(
        report.merged(),
        expected.lines().next().unwrap().to_owned() + "\n"
    );
    assert_eq!(report.shards[0].trips, 1, "exactly one quarantine");
    assert_eq!(
        report.shards[0].readmitted, 1,
        "the half-open probe must readmit the shard within the run"
    );

    // Phase 2 — the whole suite through another blip: whoever heals the
    // breaker (probe or a racing in-flight success), the verdicts stay
    // byte-identical and the trip is still recorded.
    gpumc::fault::install_global(std::sync::Arc::new(
        gpumc::fault::FaultPlan::parse("route.transport:spurious_unknown:once").unwrap(),
    ));
    let report = route(&requests, std::slice::from_ref(&addr), &policy);
    gpumc::fault::clear_global();
    assert!(report.all_done());
    assert_eq!(report.merged(), expected);
    assert_eq!(report.shards[0].trips, 1);
    assert!(report.shards[0].died);

    shutdown(&addr);
    handle.join().unwrap();
}

#[test]
fn injected_stalls_fire_hedges_whose_duplicates_agree() {
    let _g = lock();
    let requests = suite();
    let expected = baseline(&requests);

    // Every attempt (primary and hedge alike) is slowed by an injected
    // 300 ms stall; a 50 ms hedge window guarantees every request
    // hedges to its ring successor. Both answers eventually arrive, so
    // the router's duplicate check gets real material: the winner is
    // merged, the loser must agree byte-for-byte.
    let (a0, h0) = spawn_shard(None);
    let (a1, h1) = spawn_shard(None);
    let shards = [a0.clone(), a1.clone()];
    gpumc::fault::install_global(std::sync::Arc::new(
        gpumc::fault::FaultPlan::parse("route.stall_ms:delay_ms:300").unwrap(),
    ));
    let policy = RoutePolicy {
        hedge_ms: Some(50),
        ..RoutePolicy::default()
    };
    let report = route(&requests, &shards, &policy);
    gpumc::fault::clear_global();

    assert!(report.all_done());
    assert_eq!(
        report.merged(),
        expected,
        "hedged results diverged from single-node"
    );
    assert!(
        report.hedge.fired as usize >= requests.len(),
        "every stalled request should hedge; fired {} of {}",
        report.hedge.fired,
        requests.len()
    );
    assert!(
        report.hedge.duplicates >= 1,
        "no duplicate answers compared"
    );
    assert_eq!(
        report.hedge.mismatches, 0,
        "hedged duplicates disagreed — determinism is broken"
    );

    shutdown(&a0);
    shutdown(&a1);
    h0.join().unwrap();
    h1.join().unwrap();
}
