//! Shared helpers for the integration test suite.
