//! Parsing litmus conditions (`exists` / `~exists` / `forall` /
//! `filter`).

use gpumc_ir::{Assertion, CondAtom, Condition, Program, Reg};

/// Parses one condition line and installs it into the program.
pub fn parse_condition_line(line: &str, program: &mut Program) -> Result<(), String> {
    let line = line.trim();
    let (keyword, rest) = match line.find(|c: char| c.is_whitespace() || c == '(') {
        Some(p) => (&line[..p], line[p..].trim()),
        None => (line, ""),
    };
    let cond = parse_condition(rest, program)?;
    match keyword {
        "exists" => program.assertion = Some(Assertion::Exists(cond)),
        "~exists" => program.assertion = Some(Assertion::NotExists(cond)),
        "forall" => program.assertion = Some(Assertion::Forall(cond)),
        "filter" => program.filter = Some(cond),
        other => return Err(format!("unknown condition keyword `{other}`")),
    }
    Ok(())
}

/// Parses a condition expression.
pub fn parse_condition(text: &str, program: &Program) -> Result<Condition, String> {
    let tokens = tokenize(text)?;
    let mut p = CondParser {
        tokens,
        pos: 0,
        program,
    };
    let c = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(format!(
            "trailing tokens after condition: {:?}",
            &p.tokens[p.pos..]
        ));
    }
    Ok(c)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LPar,
    RPar,
    And,
    Or,
    Not,
    Eq,
    Ne,
    Word(String),
}

fn tokenize(text: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Tok::LPar);
                i += 1;
            }
            ')' => {
                out.push(Tok::RPar);
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'\\') => {
                out.push(Tok::And);
                i += 2;
            }
            '\\' if chars.get(i + 1) == Some(&'/') => {
                out.push(Tok::Or);
                i += 2;
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                out.push(Tok::And);
                i += 2;
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                out.push(Tok::Or);
                i += 2;
            }
            '~' | '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            '~' => {
                out.push(Tok::Not);
                i += 1;
            }
            '=' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Eq);
                i += 2;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut w = String::new();
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || matches!(chars[i], '_' | ':' | '[' | ']'))
                {
                    w.push(chars[i]);
                    i += 1;
                }
                out.push(Tok::Word(w));
            }
            other => return Err(format!("unexpected character `{other}` in condition")),
        }
    }
    Ok(out)
}

struct CondParser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    program: &'a Program,
}

impl<'a> CondParser<'a> {
    fn or_expr(&mut self) -> Result<Condition, String> {
        let mut lhs = self.and_expr()?;
        while self.tokens.get(self.pos) == Some(&Tok::Or) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Condition::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Condition, String> {
        let mut lhs = self.atom_expr()?;
        while self.tokens.get(self.pos) == Some(&Tok::And) {
            self.pos += 1;
            let rhs = self.atom_expr()?;
            lhs = Condition::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom_expr(&mut self) -> Result<Condition, String> {
        match self.tokens.get(self.pos) {
            Some(Tok::LPar) => {
                self.pos += 1;
                let c = self.or_expr()?;
                if self.tokens.get(self.pos) != Some(&Tok::RPar) {
                    return Err("expected `)`".into());
                }
                self.pos += 1;
                Ok(c)
            }
            Some(Tok::Not) => {
                self.pos += 1;
                let c = self.atom_expr()?;
                Ok(Condition::Not(Box::new(c)))
            }
            Some(Tok::Word(w)) if w == "true" => {
                self.pos += 1;
                Ok(Condition::True)
            }
            Some(Tok::Word(_)) => {
                let a = self.atom()?;
                let op = self.tokens.get(self.pos).cloned();
                match op {
                    Some(Tok::Eq) => {
                        self.pos += 1;
                        let b = self.atom()?;
                        Ok(Condition::Eq(a, b))
                    }
                    Some(Tok::Ne) => {
                        self.pos += 1;
                        let b = self.atom()?;
                        Ok(Condition::Ne(a, b))
                    }
                    other => Err(format!("expected `==` or `!=`, found {other:?}")),
                }
            }
            other => Err(format!("expected a condition, found {other:?}")),
        }
    }

    fn atom(&mut self) -> Result<CondAtom, String> {
        let Some(Tok::Word(w)) = self.tokens.get(self.pos).cloned() else {
            return Err(format!(
                "expected a value, found {:?}",
                self.tokens.get(self.pos)
            ));
        };
        self.pos += 1;
        if let Ok(v) = w.parse::<u64>() {
            return Ok(CondAtom::Const(v));
        }
        if let Some((tname, reg)) = w.split_once(':') {
            let thread = self
                .program
                .threads
                .iter()
                .position(|t| t.name == tname)
                .ok_or_else(|| format!("unknown thread `{tname}`"))?;
            let reg = reg
                .strip_prefix('r')
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(|| format!("bad register `{reg}`"))?;
            return Ok(CondAtom::Register {
                thread,
                reg: Reg(reg),
            });
        }
        let (name, index) = match w.split_once('[') {
            Some((n, rest)) => {
                let idx = rest.trim_end_matches(']');
                let index: u32 = idx.parse().map_err(|_| format!("bad index `{idx}`"))?;
                (n, index)
            }
            None => (w.as_str(), 0),
        };
        let loc = self
            .program
            .memory_by_name(name)
            .ok_or_else(|| format!("unknown memory location `{name}`"))?;
        Ok(CondAtom::Memory { loc, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumc_ir::{Arch, MemoryDecl, Thread, ThreadPos};

    fn prog() -> Program {
        let mut p = Program::new(Arch::Ptx);
        p.declare_memory(MemoryDecl::scalar("x"));
        p.declare_memory(MemoryDecl::array("a", 4));
        p.add_thread(Thread::new("P0", ThreadPos::ptx(0, 0)));
        p.add_thread(Thread::new("P1", ThreadPos::ptx(1, 0)));
        p
    }

    #[test]
    fn parses_register_atoms() {
        let p = prog();
        let c = parse_condition("(P0:r1 == 1 /\\ P1:r2 != 0)", &p).unwrap();
        match c {
            Condition::And(a, b) => {
                assert!(matches!(
                    *a,
                    Condition::Eq(CondAtom::Register { thread: 0, .. }, _)
                ));
                assert!(matches!(
                    *b,
                    Condition::Ne(CondAtom::Register { thread: 1, .. }, _)
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_memory_and_array_atoms() {
        let p = prog();
        let c = parse_condition("x == 1 \\/ a[2] == 3", &p).unwrap();
        match c {
            Condition::Or(a, b) => {
                assert!(matches!(
                    *a,
                    Condition::Eq(CondAtom::Memory { index: 0, .. }, _)
                ));
                assert!(matches!(
                    *b,
                    Condition::Eq(CondAtom::Memory { index: 2, .. }, _)
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter() {
        let p = prog();
        let c = parse_condition("P0:r0 == 0 \\/ P0:r1 == 1 /\\ P1:r2 == 2", &p).unwrap();
        assert!(matches!(c, Condition::Or(_, _)));
    }

    #[test]
    fn negation_and_true() {
        let p = prog();
        let c = parse_condition("~(true)", &p).unwrap();
        assert!(matches!(c, Condition::Not(_)));
    }

    #[test]
    fn installs_assertions() {
        let mut p = prog();
        parse_condition_line("exists (P0:r0 == 1)", &mut p).unwrap();
        assert!(matches!(p.assertion, Some(Assertion::Exists(_))));
        parse_condition_line("~exists (P0:r0 == 1)", &mut p).unwrap();
        assert!(matches!(p.assertion, Some(Assertion::NotExists(_))));
        parse_condition_line("forall (P0:r0 == 1)", &mut p).unwrap();
        assert!(matches!(p.assertion, Some(Assertion::Forall(_))));
        parse_condition_line("filter (P0:r0 == 1)", &mut p).unwrap();
        assert!(p.filter.is_some());
    }

    #[test]
    fn rejects_unknown_names() {
        let p = prog();
        assert!(parse_condition("P9:r0 == 1", &p).is_err());
        assert!(parse_condition("zz == 1", &p).is_err());
        assert!(parse_condition("P0:r0 <", &p).is_err());
    }
}
