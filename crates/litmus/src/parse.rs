//! Top-level litmus parsing: sections, prelude, thread table.

use gpumc_ir::{Arch, MemoryDecl, Program, Proxy, Thread, ThreadPos};

#[cfg(test)]
use gpumc_ir::Instruction;

use crate::cond::parse_condition_line;
use crate::instr::{parse_instruction, LabelInterner};

/// A litmus parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl LitmusError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> LitmusError {
        LitmusError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for LitmusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LitmusError {}

/// Parses a litmus test, detecting the dialect from the leading
/// `PTX <name>` or `VULKAN <name>` line.
///
/// # Errors
///
/// Returns a [`LitmusError`] describing the first problem.
pub fn parse(source: &str) -> Result<Program, LitmusError> {
    let first = source
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with("//"))
        .unwrap_or("");
    let arch = first.split_whitespace().next().unwrap_or("");
    match arch.to_ascii_uppercase().as_str() {
        "PTX" => parse_ptx(source),
        "VULKAN" | "VK" => parse_vulkan(source),
        other => Err(LitmusError::new(
            1,
            format!("expected a `PTX <name>` or `VULKAN <name>` header, found `{other}`"),
        )),
    }
}

/// Parses a PTX-dialect litmus test.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_ptx(source: &str) -> Result<Program, LitmusError> {
    Parser::new(source, Arch::Ptx)?.run()
}

/// Parses a Vulkan-dialect litmus test.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_vulkan(source: &str) -> Result<Program, LitmusError> {
    Parser::new(source, Arch::Vulkan)?.run()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    program: Program,
    /// ssw thread-name pairs from the prelude, resolved to indices once
    /// the thread table has been parsed.
    pending_ssw: Vec<(String, String)>,
}

impl<'a> Parser<'a> {
    fn new(source: &'a str, arch: Arch) -> Result<Parser<'a>, LitmusError> {
        let lines: Vec<(usize, &str)> = source
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find("//") {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, l.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Ok(Parser {
            lines,
            pos: 0,
            program: Program::new(arch),
            pending_ssw: Vec::new(),
        })
    }

    fn here(&self) -> usize {
        // Past the end (truncated input), point at the last line so the
        // reported position is always 1-based and real.
        self.lines
            .get(self.pos)
            .or_else(|| self.lines.last())
            .map_or(1, |(n, _)| *n)
    }

    fn run(mut self) -> Result<Program, LitmusError> {
        self.header()?;
        self.prelude()?;
        self.thread_table()?;
        self.conditions()?;
        self.program
            .validate()
            .map_err(|e| LitmusError::new(0, e.message))?;
        Ok(self.program)
    }

    fn header(&mut self) -> Result<(), LitmusError> {
        let Some(&(n, line)) = self.lines.get(self.pos) else {
            // Empty or comment-only input: a parse error, not an index
            // panic — this path is reachable from untrusted serve input.
            return Err(LitmusError::new(
                1,
                "empty litmus source: expected a dialect header",
            ));
        };
        let mut parts = line.split_whitespace();
        let arch = parts.next().unwrap_or("");
        let expect = match self.program.arch {
            Arch::Ptx => "PTX",
            Arch::Vulkan => "VULKAN",
        };
        let arch_ok = arch.eq_ignore_ascii_case(expect)
            || (expect == "VULKAN" && arch.eq_ignore_ascii_case("VK"));
        if !arch_ok {
            return Err(LitmusError::new(n, format!("expected `{expect}` header")));
        }
        self.program.name = parts.collect::<Vec<_>>().join(" ");
        self.pos += 1;
        Ok(())
    }

    fn prelude(&mut self) -> Result<(), LitmusError> {
        let Some(&(_, line)) = self.lines.get(self.pos) else {
            return Ok(());
        };
        if !line.starts_with('{') {
            return Ok(());
        }
        // Gather prelude text until the closing brace.
        let mut text = String::new();
        let mut closed = false;
        while self.pos < self.lines.len() {
            let (_, l) = self.lines[self.pos];
            self.pos += 1;
            text.push_str(l);
            text.push(' ');
            if l.contains('}') {
                closed = true;
                break;
            }
        }
        if !closed {
            return Err(LitmusError::new(self.here(), "unterminated prelude"));
        }
        let inner = text
            .trim()
            .trim_start_matches('{')
            .trim_end_matches(|c: char| c.is_whitespace())
            .trim_end_matches('}');
        let mut pending_ssw: Vec<(String, String)> = Vec::new();
        for entry in inner.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            self.prelude_entry(entry, &mut pending_ssw)?;
        }
        // ssw pairs resolve after threads are parsed: stash names.
        self.pending_ssw = pending_ssw;
        Ok(())
    }

    fn prelude_entry(
        &mut self,
        entry: &str,
        pending_ssw: &mut Vec<(String, String)>,
    ) -> Result<(), LitmusError> {
        let n = self.here();
        if let Some(rest) = entry.strip_prefix("ssw ") {
            let names: Vec<&str> = rest.split_whitespace().collect();
            if names.len() != 2 {
                return Err(LitmusError::new(n, "ssw expects two thread names"));
            }
            pending_ssw.push((names[0].to_string(), names[1].to_string()));
            return Ok(());
        }
        // Forms: `name = v`, `name`, `name[k]`, `name[k] = {a,b}`,
        // `alias -> target @ proxy`, with an optional `@ sc0|sc1` suffix.
        let (body, storage) = match entry.rsplit_once('@') {
            Some((b, sfx)) if matches!(sfx.trim(), "sc0" | "sc1") => {
                (b.trim(), if sfx.trim() == "sc1" { 1u8 } else { 0 })
            }
            _ => (entry, 0),
        };
        if let Some((alias, rest)) = body.split_once("->") {
            // `s -> x @ surface`
            let alias = alias.trim();
            let (target, proxy) = match rest.split_once('@') {
                Some((t, p)) => (t.trim(), p.trim()),
                None => (rest.trim(), "generic"),
            };
            let proxy = match proxy {
                "generic" | "gen" => Proxy::Generic,
                "surface" | "sur" => Proxy::Surface,
                "texture" | "tex" => Proxy::Texture,
                "constant" | "con" => Proxy::Constant,
                other => return Err(LitmusError::new(n, format!("unknown proxy `{other}`"))),
            };
            let target_id = self
                .program
                .memory_by_name(target)
                .ok_or_else(|| LitmusError::new(n, format!("unknown alias target `{target}`")))?;
            self.program.declare_memory(
                MemoryDecl::scalar(alias)
                    .with_alias(target_id, proxy)
                    .with_storage_class(storage),
            );
            return Ok(());
        }
        let (lhs, init) = match body.split_once('=') {
            Some((l, r)) => (l.trim(), Some(r.trim())),
            None => (body.trim(), None),
        };
        let (name, size) = match lhs.split_once('[') {
            Some((nm, sz)) => {
                let sz = sz.trim_end_matches(']').trim();
                let size: u32 = sz
                    .parse()
                    .map_err(|_| LitmusError::new(n, format!("bad array size `{sz}`")))?;
                (nm.trim(), size)
            }
            None => (lhs, 1),
        };
        let mut decl = MemoryDecl::array(name, size).with_storage_class(storage);
        if let Some(init) = init {
            let inner = init.trim_start_matches('{').trim_end_matches('}');
            for (i, v) in inner.split(',').enumerate() {
                let v = v.trim();
                if v.is_empty() {
                    continue;
                }
                let value: u64 = v
                    .parse()
                    .map_err(|_| LitmusError::new(n, format!("bad initial value `{v}`")))?;
                if i >= decl.init.len() {
                    decl.init.resize(i + 1, 0);
                }
                decl.init[i] = value;
            }
        }
        self.program.declare_memory(decl);
        Ok(())
    }

    fn thread_table(&mut self) -> Result<(), LitmusError> {
        let n = self.here();
        let Some(&(_, header)) = self.lines.get(self.pos) else {
            return Err(LitmusError::new(n, "missing thread header row"));
        };
        self.pos += 1;
        let header = header.trim_end_matches(';').trim();
        let mut threads = Vec::new();
        for cell in header.split('|') {
            threads.push(self.thread_header(cell.trim(), n)?);
        }
        let mut interners: Vec<LabelInterner> =
            threads.iter().map(|_| LabelInterner::new()).collect();
        // Instruction rows until a condition keyword.
        while let Some(&(row_n, line)) = self.lines.get(self.pos) {
            let first_word = line.split_whitespace().next().unwrap_or("");
            if matches!(first_word, "exists" | "~exists" | "forall" | "filter") {
                break;
            }
            self.pos += 1;
            let line = line.trim_end_matches(';').trim_end();
            for (ti, cell) in line.split('|').enumerate() {
                let cell = cell.trim();
                if cell.is_empty() {
                    continue;
                }
                if ti >= threads.len() {
                    return Err(LitmusError::new(
                        row_n,
                        "more instruction columns than threads",
                    ));
                }
                let instrs =
                    parse_instruction(cell, self.program.arch, &self.program, &mut interners[ti])
                        .map_err(|m| LitmusError::new(row_n, m))?;
                for i in instrs {
                    threads[ti].push(i);
                }
            }
        }
        // Append label definitions that were referenced but follow the
        // last row implicitly (e.g. a trailing `LC01:` column) — handled
        // by the interner: any label referenced must also be defined.
        for (ti, interner) in interners.iter().enumerate() {
            if let Some(missing) = interner.undefined_label() {
                return Err(LitmusError::new(
                    n,
                    format!("thread {ti}: label `{missing}` is never defined"),
                ));
            }
        }
        for t in threads {
            self.program.add_thread(t);
        }
        // Resolve stashed ssw names.
        for (a, b) in std::mem::take(&mut self.pending_ssw) {
            let find = |name: &str| self.program.threads.iter().position(|t| t.name == name);
            let (Some(ia), Some(ib)) = (find(&a), find(&b)) else {
                return Err(LitmusError::new(
                    n,
                    format!("unknown ssw thread `{a}`/`{b}`"),
                ));
            };
            self.program.ssw_pairs.push((ia, ib));
            self.program.ssw_pairs.push((ib, ia));
        }
        Ok(())
    }

    fn thread_header(&self, cell: &str, n: usize) -> Result<Thread, LitmusError> {
        // `P0@cta 0,gpu 0` or `P1@sg 0,wg 1,qf 0`.
        let (name, spec) = cell
            .split_once('@')
            .ok_or_else(|| LitmusError::new(n, format!("bad thread header `{cell}`")))?;
        let mut coords = std::collections::HashMap::new();
        for part in spec.split(',') {
            let mut it = part.split_whitespace();
            let (Some(level), Some(idx)) = (it.next(), it.next()) else {
                return Err(LitmusError::new(n, format!("bad scope spec `{part}`")));
            };
            let idx: u32 = idx
                .parse()
                .map_err(|_| LitmusError::new(n, format!("bad scope index `{idx}`")))?;
            coords.insert(level.to_string(), idx);
        }
        let get = |k: &str| coords.get(k).copied().unwrap_or(0);
        let pos = match self.program.arch {
            Arch::Ptx => ThreadPos::ptx(get("cta"), get("gpu")),
            Arch::Vulkan => ThreadPos::vulkan(get("sg"), get("wg"), get("qf")),
        };
        Ok(Thread::new(name.trim(), pos))
    }

    fn conditions(&mut self) -> Result<(), LitmusError> {
        while let Some(&(n, line)) = self.lines.get(self.pos) {
            // Conditions may span several lines; join until balanced or
            // the next keyword.
            let mut text = line.to_string();
            self.pos += 1;
            while let Some(&(_, next)) = self.lines.get(self.pos) {
                let w = next.split_whitespace().next().unwrap_or("");
                if matches!(w, "exists" | "~exists" | "forall" | "filter") {
                    break;
                }
                text.push(' ');
                text.push_str(next);
                self.pos += 1;
            }
            parse_condition_line(&text, &mut self.program).map_err(|m| LitmusError::new(n, m))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumc_ir::{Assertion, EventKind, MemOrder, Tag};

    const MP_PTX: &str = r#"
PTX MP
{ x = 0; flag = 0; }
P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
st.weak x, 1            | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1  | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

    #[test]
    fn parses_mp_ptx() {
        let p = parse(MP_PTX).unwrap();
        assert_eq!(p.arch, Arch::Ptx);
        assert_eq!(p.name, "MP");
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.memory.len(), 2);
        assert_eq!(p.threads[0].instructions.len(), 2);
        assert!(matches!(p.assertion, Some(Assertion::Exists(_))));
    }

    #[test]
    fn parses_scopes_and_orders() {
        let p = parse(MP_PTX).unwrap();
        match &p.threads[1].instructions[0] {
            Instruction::Load { attrs, .. } => {
                assert_eq!(attrs.order, MemOrder::Acquire);
                assert_eq!(attrs.scope, gpumc_ir::Scope::Gpu);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_alias_prelude() {
        let src = r#"
PTX proxies
{ x = 0; s -> x @ surface; t -> x @ texture; }
P0@cta 0,gpu 0 ;
sust s, 1 ;
exists (x == 1)
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.memory.len(), 3);
        assert_eq!(p.memory[1].alias_of, Some(gpumc_ir::LocId(0)));
        assert_eq!(p.memory[1].proxy, Proxy::Surface);
        assert_eq!(p.memory[2].proxy, Proxy::Texture);
    }

    #[test]
    fn parses_vulkan_fig10_style() {
        let src = r#"
VULKAN MP-spin
{ data = 0; flag = 0; }
P0@sg 0,wg 0,qf 0          | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 data, 1     | LC00: ;
membar.rel.dv.semsc0       | ld.atom.dv.sc0 r1, flag ;
st.atom.dv.sc0 flag, 1     | bne r1, 0, LC01 ;
                           | goto LC00 ;
                           | LC01: ;
                           | membar.acq.dv.semsc0 ;
                           | ld.atom.dv.sc0 r2, data ;
exists (P1:r1 == 1 /\ P1:r2 != 1)
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.arch, Arch::Vulkan);
        assert_eq!(p.threads[1].instructions.len(), 7);
        // The spin structure compiles.
        let g = gpumc_ir::compile(&gpumc_ir::unroll(&p, 2).unwrap());
        assert!(g.n_events() > 5);
    }

    #[test]
    fn parses_barriers_and_rmw() {
        let src = r#"
PTX ticket
{ in = 0; out = 0; x = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.acquire.gpu.add r1, in, 1 | atom.acquire.gpu.add r1, in, 1 ;
bar.cta.sync 0 | bar.cta.sync r1 ;
exists (P0:r1 == 0)
"#;
        let p = parse(src).unwrap();
        match &p.threads[0].instructions[0] {
            Instruction::Rmw { attrs, .. } => {
                assert_eq!(attrs.order, MemOrder::Acquire);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.threads[1].instructions[1] {
            Instruction::Barrier { attrs } => {
                assert_eq!(attrs.id, gpumc_ir::Operand::Reg(gpumc_ir::Reg(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forall_and_filter() {
        let src = r#"
PTX SB
{ x = 0; y = 0; z = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1   | st.weak y, 1 ;
ld.weak r0, y  | ld.weak r1, x ;
filter (P0:r0 == 0)
forall (P0:r0 == 1 \/ P1:r1 == 1)
"#;
        let p = parse(src).unwrap();
        assert!(p.filter.is_some());
        assert!(matches!(p.assertion, Some(Assertion::Forall(_))));
    }

    #[test]
    fn ssw_pairs_resolve() {
        let src = r#"
VULKAN ssw-test
{ x = 0; ssw P0 P1; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 1 ;
st.sc0 x, 1       | ld.sc0 r0, x ;
exists (P1:r0 == 1)
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.ssw_pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn storage_class_annotations() {
        let src = r#"
VULKAN sc
{ x = 0; y = 0 @ sc1; }
P0@sg 0,wg 0,qf 0 ;
st.atom.dv.sc0 x, 1 ;
st.atom.dv.sc1 y, 1 ;
exists (x == 1)
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.memory[0].storage_class, 0);
        assert_eq!(p.memory[1].storage_class, 1);
        let g = gpumc_ir::compile(&gpumc_ir::unroll(&p, 2).unwrap());
        let stores: Vec<_> = g
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Store { .. }))
            .collect();
        assert!(stores[0].tags.contains(Tag::SC0));
        assert!(stores[1].tags.contains(Tag::SC1));
    }

    #[test]
    fn rejects_mismatched_storage_annotation() {
        let src = r#"
VULKAN bad
{ x = 0; }
P0@sg 0,wg 0,qf 0 ;
st.atom.dv.sc1 x, 1 ;
exists (x == 1)
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_variable() {
        let src = r#"
PTX bad
{ x = 0; }
P0@cta 0,gpu 0 ;
st.weak nope, 1 ;
exists (x == 1)
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_undefined_label() {
        let src = r#"
PTX bad
{ x = 0; }
P0@cta 0,gpu 0 ;
goto LC99 ;
exists (x == 0)
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn memory_condition_atoms() {
        let src = r#"
PTX memcond
{ x = 0; }
P0@cta 0,gpu 0 ;
st.weak x, 7 ;
exists (x == 7)
"#;
        let p = parse(src).unwrap();
        match p.assertion.unwrap() {
            Assertion::Exists(c) => match c {
                gpumc_ir::Condition::Eq(a, b) => {
                    assert!(matches!(a, gpumc_ir::CondAtom::Memory { .. }));
                    assert!(matches!(b, gpumc_ir::CondAtom::Const(7)));
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => panic!(),
        }
    }
}
