//! Parsing individual litmus instructions.

use gpumc_ir::{
    AccessAttrs, AluOp, Arch, BarrierAttrs, CmpOp, FenceAttrs, Instruction, MemOrder, MemRef,
    Operand, Program, Proxy, ProxyFence, Reg, RmwOp, Scope,
};

/// Interns label names to numeric ids and tracks definition/reference so
/// the parser can report labels that are used but never defined.
#[derive(Debug, Default)]
pub struct LabelInterner {
    names: Vec<String>,
    defined: Vec<bool>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> LabelInterner {
        LabelInterner::default()
    }

    fn intern(&mut self, name: &str, defines: bool) -> u32 {
        let id = match self.names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name.to_string());
                self.defined.push(false);
                self.names.len() - 1
            }
        };
        if defines {
            self.defined[id] = true;
        }
        id as u32
    }

    /// A label that was referenced but never defined, if any.
    pub fn undefined_label(&self) -> Option<&str> {
        self.names
            .iter()
            .zip(&self.defined)
            .find(|(_, &d)| !d)
            .map(|(n, _)| n.as_str())
    }
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    let s = s.trim();
    if let Some(num) = s.strip_prefix('r') {
        if let Ok(idx) = num.parse::<u32>() {
            return Ok(Operand::Reg(Reg(idx)));
        }
    }
    s.parse::<u64>()
        .map(Operand::Const)
        .map_err(|_| format!("bad operand `{s}`"))
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    match parse_operand(s)? {
        Operand::Reg(r) => Ok(r),
        Operand::Const(_) => Err(format!("expected a register, found `{s}`")),
    }
}

fn parse_addr(s: &str, program: &Program) -> Result<MemRef, String> {
    let s = s.trim();
    let (name, index) = match s.split_once('[') {
        Some((n, rest)) => {
            let idx = rest.trim_end_matches(']').trim();
            (n.trim(), parse_operand(idx)?)
        }
        None => (s, Operand::Const(0)),
    };
    let loc = program
        .memory_by_name(name)
        .ok_or_else(|| format!("unknown memory location `{name}`"))?;
    Ok(MemRef { loc, index })
}

/// Attributes accumulated from dot-suffixes.
#[derive(Debug)]
struct Suffixes {
    order: Option<MemOrder>,
    scope: Option<Scope>,
    atomic_marker: bool,
    storage_annotation: Option<u8>,
    sem_sc: u8,
    av: bool,
    vis: bool,
    sem_av: bool,
    sem_vis: bool,
    av_device: bool,
    vis_device: bool,
    nonpriv: Option<bool>,
    proxy_fence: Option<ProxyFence>,
    rmw_op: Option<&'static str>,
    rest: Vec<String>,
}

fn parse_suffixes(parts: &[&str]) -> Result<Suffixes, String> {
    let mut s = Suffixes {
        order: None,
        scope: None,
        atomic_marker: false,
        storage_annotation: None,
        sem_sc: 0,
        av: false,
        vis: false,
        sem_av: false,
        sem_vis: false,
        av_device: false,
        vis_device: false,
        nonpriv: None,
        proxy_fence: None,
        rmw_op: None,
        rest: Vec::new(),
    };
    for &p in parts {
        match p {
            "weak" => s.order = Some(MemOrder::Weak),
            "relaxed" | "rlx" => s.order = Some(MemOrder::Relaxed),
            "acquire" | "acq" => s.order = Some(MemOrder::Acquire),
            "release" | "rel" => s.order = Some(MemOrder::Release),
            "acq_rel" | "acqrel" => s.order = Some(MemOrder::AcqRel),
            "sc" => s.order = Some(MemOrder::Sc),
            "atom" => s.atomic_marker = true,
            "cta" => s.scope = Some(Scope::Cta),
            "gpu" => s.scope = Some(Scope::Gpu),
            "sys" => s.scope = Some(Scope::Sys),
            "sg" => s.scope = Some(Scope::Sg),
            "wg" => s.scope = Some(Scope::Wg),
            "qf" => s.scope = Some(Scope::Qf),
            "dv" | "device" => s.scope = Some(Scope::Dv),
            "sc0" => s.storage_annotation = Some(0),
            "sc1" => s.storage_annotation = Some(1),
            "semsc0" => s.sem_sc |= 0b01,
            "semsc1" => s.sem_sc |= 0b10,
            "semsc01" => s.sem_sc = 0b11,
            "av" => s.av = true,
            "vis" => s.vis = true,
            "semav" => s.sem_av = true,
            "semvis" => s.sem_vis = true,
            "avdevice" => s.av_device = true,
            "visdevice" => s.vis_device = true,
            "nonpriv" => s.nonpriv = Some(true),
            "priv" => s.nonpriv = Some(false),
            "alias" => s.proxy_fence = Some(ProxyFence::Alias),
            "texture" => s.proxy_fence = Some(ProxyFence::Texture),
            "surface" => s.proxy_fence = Some(ProxyFence::Surface),
            "constant" => s.proxy_fence = Some(ProxyFence::Constant),
            "proxy" => {} // `fence.proxy.alias` — the kind follows
            "sync" => {}  // `bar.cta.sync`
            "add" | "exch" | "cas" | "inc" => {
                s.rmw_op = Some(match p {
                    "add" | "inc" => "add",
                    "exch" => "exch",
                    _ => "cas",
                })
            }
            other => s.rest.push(other.to_string()),
        }
    }
    if let Some(unknown) = s.rest.first() {
        return Err(format!("unknown instruction suffix `.{unknown}`"));
    }
    Ok(s)
}

fn access_attrs(
    s: &Suffixes,
    arch: Arch,
    program: &Program,
    addr: &MemRef,
) -> Result<AccessAttrs, String> {
    let decl = &program.memory[addr.loc.index()];
    if let Some(ann) = s.storage_annotation {
        if arch == Arch::Vulkan && decl.storage_class != ann {
            return Err(format!(
                "storage-class annotation .sc{ann} does not match declaration of `{}` (sc{})",
                decl.name, decl.storage_class
            ));
        }
    }
    let order = s.order.unwrap_or(if s.atomic_marker {
        MemOrder::Relaxed
    } else {
        MemOrder::Weak
    });
    let default_scope = Scope::widest(arch);
    let mut attrs = if order.is_atomic() {
        AccessAttrs::atomic(order, s.scope.unwrap_or(default_scope))
    } else {
        AccessAttrs {
            scope: s.scope.unwrap_or(default_scope),
            // Litmus-level non-atomic Vulkan accesses default to
            // NonPrivate (they participate in synchronization) — the
            // paper's examples assume this; `.priv` opts out.
            nonpriv: arch == Arch::Vulkan,
            ..AccessAttrs::weak()
        }
    };
    attrs.sem_sc = s.sem_sc;
    attrs.avail = s.av;
    attrs.visible = s.vis;
    attrs.sem_av = s.sem_av;
    attrs.sem_vis = s.sem_vis;
    if let Some(np) = s.nonpriv {
        attrs.nonpriv = np || order.is_atomic();
    }
    Ok(attrs)
}

fn fence_attrs(s: &Suffixes, arch: Arch) -> FenceAttrs {
    if let Some(kind) = s.proxy_fence {
        return FenceAttrs::proxy_fence(kind, s.scope.unwrap_or(Scope::Cta));
    }
    let order = s.order.unwrap_or(match arch {
        Arch::Ptx => MemOrder::Sc,
        Arch::Vulkan => MemOrder::AcqRel,
    });
    let mut f = FenceAttrs::new(order, s.scope.unwrap_or(Scope::widest(arch)));
    f.sem_sc = s.sem_sc;
    f.sem_av = s.sem_av;
    f.sem_vis = s.sem_vis;
    f.av_device = s.av_device;
    f.vis_device = s.vis_device;
    f
}

/// Parses one litmus cell into zero or more IR instructions (a cell can
/// hold a label definition plus an instruction).
pub fn parse_instruction(
    cell: &str,
    arch: Arch,
    program: &Program,
    labels: &mut LabelInterner,
) -> Result<Vec<Instruction>, String> {
    let mut out = Vec::new();
    let mut cell = cell.trim();
    // Leading label definitions: `LC00:` or `LC00: instr`.
    while let Some(colon) = cell.find(':') {
        let head = &cell[..colon];
        if head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && head.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        {
            let id = labels.intern(head, true);
            out.push(Instruction::Label(id));
            cell = cell[colon + 1..].trim();
        } else {
            break;
        }
    }
    if cell.is_empty() {
        return Ok(out);
    }
    let (head, operands) = match cell.find(char::is_whitespace) {
        Some(p) => (&cell[..p], cell[p..].trim()),
        None => (cell, ""),
    };
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };
    let parts: Vec<&str> = head.split('.').collect();
    let mnemonic = parts[0];
    let sfx = parse_suffixes(&parts[1..])?;

    match mnemonic {
        // Loads (including proxy sugar: suld/tld/cld read via the
        // declared proxy of the address).
        "ld" | "suld" | "tld" | "cld" => {
            if ops.len() != 2 {
                return Err(format!("`{mnemonic}` expects `dst, addr`"));
            }
            let dst = parse_reg(ops[0])?;
            let addr = parse_addr(ops[1], program)?;
            let attrs = access_attrs(&sfx, arch, program, &addr)?;
            out.push(Instruction::Load { dst, addr, attrs });
        }
        "st" | "sust" | "tst" | "cst" => {
            if ops.len() != 2 {
                return Err(format!("`{mnemonic}` expects `addr, src`"));
            }
            let addr = parse_addr(ops[0], program)?;
            let src = parse_operand(ops[1])?;
            let attrs = access_attrs(&sfx, arch, program, &addr)?;
            out.push(Instruction::Store { addr, src, attrs });
        }
        "atom" => {
            let op = sfx
                .rmw_op
                .ok_or_else(|| "atom needs an operation suffix (.add/.exch/.cas)".to_string())?;
            match op {
                "cas" => {
                    if ops.len() != 4 {
                        return Err("`atom.cas` expects `dst, addr, expected, new`".into());
                    }
                    let dst = parse_reg(ops[0])?;
                    let addr = parse_addr(ops[1], program)?;
                    let expected = parse_operand(ops[2])?;
                    let new = parse_operand(ops[3])?;
                    let mut s2 = sfx;
                    s2.atomic_marker = true;
                    let attrs = access_attrs(&s2, arch, program, &addr)?;
                    out.push(Instruction::Rmw {
                        dst,
                        addr,
                        op: RmwOp::Cas { expected },
                        operand: new,
                        attrs,
                    });
                }
                _ => {
                    if ops.len() != 3 {
                        return Err(format!("`atom.{op}` expects `dst, addr, operand`"));
                    }
                    let dst = parse_reg(ops[0])?;
                    let addr = parse_addr(ops[1], program)?;
                    let operand = parse_operand(ops[2])?;
                    let mut s2 = sfx;
                    s2.atomic_marker = true;
                    let attrs = access_attrs(&s2, arch, program, &addr)?;
                    out.push(Instruction::Rmw {
                        dst,
                        addr,
                        op: if op == "add" {
                            RmwOp::Add
                        } else {
                            RmwOp::Exchange
                        },
                        operand,
                        attrs,
                    });
                }
            }
        }
        "fence" | "membar" => {
            out.push(Instruction::Fence {
                attrs: fence_attrs(&sfx, arch),
            });
        }
        "avdevice" => {
            let mut f = FenceAttrs::new(MemOrder::Weak, sfx.scope.unwrap_or(Scope::Dv));
            f.av_device = true;
            out.push(Instruction::Fence { attrs: f });
        }
        "visdevice" => {
            let mut f = FenceAttrs::new(MemOrder::Weak, sfx.scope.unwrap_or(Scope::Dv));
            f.vis_device = true;
            out.push(Instruction::Fence { attrs: f });
        }
        "bar" | "cbar" => {
            if ops.len() != 1 {
                return Err(format!("`{mnemonic}` expects a barrier id"));
            }
            let id = parse_operand(ops[0])?;
            let scope = sfx.scope.unwrap_or(match arch {
                Arch::Ptx => Scope::Cta,
                Arch::Vulkan => Scope::Wg,
            });
            let fence = if sfx.order.is_some() || sfx.sem_sc != 0 {
                let mut f = FenceAttrs::new(sfx.order.unwrap_or(MemOrder::AcqRel), scope);
                f.sem_sc = sfx.sem_sc;
                f.sem_av = sfx.sem_av;
                f.sem_vis = sfx.sem_vis;
                Some(f)
            } else {
                None
            };
            out.push(Instruction::Barrier {
                attrs: BarrierAttrs { id, scope, fence },
            });
        }
        "mov" | "add" | "sub" | "and" | "or" | "xor" => {
            let op = match mnemonic {
                "mov" => AluOp::Mov,
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                _ => AluOp::Xor,
            };
            if mnemonic == "mov" {
                if ops.len() != 2 {
                    return Err("`mov` expects `dst, src`".into());
                }
                let dst = parse_reg(ops[0])?;
                let a = parse_operand(ops[1])?;
                out.push(Instruction::Alu {
                    dst,
                    op,
                    a,
                    b: Operand::Const(0),
                });
            } else {
                if ops.len() != 3 {
                    return Err(format!("`{mnemonic}` expects `dst, a, b`"));
                }
                let dst = parse_reg(ops[0])?;
                let a = parse_operand(ops[1])?;
                let b = parse_operand(ops[2])?;
                out.push(Instruction::Alu { dst, op, a, b });
            }
        }
        "goto" => {
            if ops.len() != 1 {
                return Err("`goto` expects a label".into());
            }
            let id = labels.intern(ops[0], false);
            out.push(Instruction::Goto(id));
        }
        "beq" | "bne" => {
            if ops.len() != 3 {
                return Err(format!("`{mnemonic}` expects `a, b, label`"));
            }
            let a = parse_operand(ops[0])?;
            let b = parse_operand(ops[1])?;
            let target = labels.intern(ops[2], false);
            out.push(Instruction::Branch {
                cmp: if mnemonic == "beq" {
                    CmpOp::Eq
                } else {
                    CmpOp::Ne
                },
                a,
                b,
                target,
            });
        }
        other => return Err(format!("unknown mnemonic `{other}`")),
    }
    // Proxy sugar sanity: sust/tld/etc must target a matching alias.
    let expect_proxy = match mnemonic {
        "sust" | "suld" => Some(Proxy::Surface),
        "tld" | "tst" => Some(Proxy::Texture),
        "cld" | "cst" => Some(Proxy::Constant),
        _ => None,
    };
    if let Some(proxy) = expect_proxy {
        let addr = match out.last() {
            Some(Instruction::Load { addr, .. }) | Some(Instruction::Store { addr, .. }) => *addr,
            _ => unreachable!(),
        };
        let decl = &program.memory[addr.loc.index()];
        if decl.proxy != proxy {
            return Err(format!(
                "`{mnemonic}` accesses `{}` which is declared in the {} proxy",
                decl.name, decl.proxy
            ));
        }
    }
    Ok(out)
}
