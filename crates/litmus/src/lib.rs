//! Litmus-test front-ends for the PTX and Vulkan assembly dialects.
//!
//! The syntax follows the paper's figures: columns are threads, the first
//! row places each thread in the GPU hierarchy (`P0@cta 0,gpu 0` /
//! `P1@sg 0,wg 1,qf 0`), the remaining rows are instructions, and the
//! test ends with an `exists` / `~exists` / `forall` condition
//! (optionally preceded by a `filter`). An optional `{ ... }` prelude
//! declares memory: initial values, array sizes, PTX proxy aliases
//! (`s -> x @ surface;`), Vulkan storage classes (`y @ sc1;`), and
//! system-synchronizes-with marks (`ssw P0 P1;`).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! PTX MP
//! { x = 0; flag = 0; }
//! P0@cta 0,gpu 0          | P1@cta 1,gpu 0 ;
//! st.weak x, 1            | ld.acquire.gpu r0, flag ;
//! st.release.gpu flag, 1  | ld.weak r1, x ;
//! exists (P1:r0 == 1 /\ P1:r1 == 0)
//! "#;
//! let program = gpumc_litmus::parse(src).expect("valid litmus test");
//! assert_eq!(program.threads.len(), 2);
//! assert_eq!(program.name, "MP");
//! ```

mod cond;
mod instr;
mod parse;

pub use parse::{parse, parse_ptx, parse_vulkan, LitmusError};
