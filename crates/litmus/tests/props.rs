//! Robustness properties for the litmus parser: arbitrarily mangled
//! input — truncated, byte-flipped, spliced, or outright random — must
//! always come back as `Ok` or a positioned `LitmusError`, never a
//! panic. The parser sits on the untrusted edge (files from the CLI,
//! `source` strings from serve clients), so an index-out-of-bounds here
//! is a remote daemon crash.

use gpumc_litmus::parse;
use proptest::prelude::*;

/// A seed corpus of well-formed sources to mangle: mutations of valid
/// input explore much deeper parser states than uniform noise.
const SEEDS: &[&str] = &[
    "",
    "PTX MP\n{ x = 0; y = 0; }\nP0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;\n\
     st.relaxed.sys x, 1 | ld.acquire.sys r0, y ;\n\
     st.release.sys y, 1 | ld.relaxed.sys r1, x ;\n\
     exists (P1:r0 == 1 /\\ P1:r1 == 0)",
    "VULKAN CORR\n{ x = 0; }\nP0@sg 0,wg 0,qf 0 | P1@sg 1,wg 1,qf 0 ;\n\
     st.atom.scopedev x, 1 | ld.atom.scopedev r0, x ;\n\
     | ld.atom.scopedev r1, x ;\n\
     exists (P1:r0 == 1 /\\ P1:r1 == 0)",
];

/// Splices, flips, and truncates a seed according to `edits`, then
/// repairs UTF-8 (the parser API takes `&str`; byte-level damage lands
/// as replacement characters, which are hostile input in their own
/// right).
fn mangle(seed: &str, edits: &[(usize, u8)], truncate_at: usize) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for &(pos, byte) in edits {
        if bytes.is_empty() {
            bytes.push(byte);
        } else {
            let pos = pos % (bytes.len() + 1);
            if pos < bytes.len() && byte % 3 == 0 {
                bytes[pos] ^= byte; // flip in place
            } else if byte % 3 == 1 {
                bytes.insert(pos, byte); // splice in
            } else if pos < bytes.len() {
                bytes.remove(pos); // delete
            }
        }
    }
    if !bytes.is_empty() {
        bytes.truncate(truncate_at % (bytes.len() + 1) + 1);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Mangled near-valid sources never panic the parser.
    #[test]
    fn mangled_sources_never_panic(
        seed in 0usize..3,
        edits in proptest::collection::vec((0usize..4096, any::<u8>()), 0..12),
        truncate_at in 0usize..4096,
    ) {
        let source = mangle(SEEDS[seed], &edits, truncate_at);
        // Ok or Err are both fine; reaching this line is the property.
        let outcome = parse(&source);
        if let Err(e) = outcome {
            prop_assert!(e.line >= 1, "error must carry a 1-based line: {e}");
        }
    }

    /// Pure noise never panics either.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&source);
    }
}
