//! Engine-level tests: enumeration + interpretation on hand-built
//! programs against small inline `.cat` models.

use gpumc_exec::{enumerate, enumerate_consistent, Behavior, EnumerateOptions};
use gpumc_ir::*;

/// A minimal "sequential consistency per location" model with atomicity —
/// weak enough to allow classic weak behaviours, strong enough to be a
/// meaningful coherence baseline.
const SC_PER_LOC: &str = r#"
"sc-per-location"
let fr = (rf^-1; co) \ id
acyclic (po & loc) | rf | fr | co as coherence
empty rmw & (fr; co) as atomicity
acyclic rf | addr | data | ctrl as no-thin-air
"#;

/// A fully sequentially consistent model (total order over everything).
/// The `co-total` axiom matters on PTX, where the engine enumerates
/// *partial* coherence orders (§4.1): without it, unordered writes evade
/// the acyclicity and atomicity axioms exactly as in the paper's Fig. 6.
const SC_FULL: &str = r#"
"sc"
let fr = (rf^-1; co) \ id
empty (((W * W) & loc) \ (co | co^-1 | id)) as co-total
acyclic po | rf | fr | co as sc
empty rmw & (fr; co) as atomicity
"#;

fn weak(order: MemOrder) -> AccessAttrs {
    AccessAttrs {
        order,
        ..AccessAttrs::weak()
    }
}

/// Builds the classic message-passing test with plain accesses:
/// P0: x=1; y=1   P1: r0=y; r1=x   exists (r0==1 && r1==0).
fn mp_program() -> Program {
    let mut p = Program::new(Arch::Ptx);
    p.name = "MP".into();
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let y = p.declare_memory(MemoryDecl::scalar("y"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::store(
        MemRef::scalar(y),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::load(
        Reg(0),
        MemRef::scalar(y),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::load(
        Reg(1),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    p.assertion = Some(Assertion::Exists(Condition::and(
        Condition::reg_eq(1, Reg(0), 1),
        Condition::reg_eq(1, Reg(1), 0),
    )));
    p
}

fn graph_of(p: &Program, bound: u32) -> EventGraph {
    compile(&unroll(p, bound).unwrap())
}

fn behaviors(p: &Program, cat: &str, bound: u32) -> Vec<(bool, bool)> {
    // Returns (all_completed, condition_holds) per consistent behaviour.
    let model = gpumc_cat::parse(cat).unwrap();
    let graph = graph_of(p, bound);
    let cond = p.assertion.as_ref().map(|a| a.condition().clone());
    let mut out = Vec::new();
    enumerate(
        &graph,
        &model,
        &EnumerateOptions::default(),
        |b: &Behavior| {
            let holds = cond
                .as_ref()
                .and_then(|c| b.execution.eval_condition(c))
                .unwrap_or(false);
            out.push((b.execution.all_completed(), holds));
        },
    )
    .unwrap();
    out
}

#[test]
fn mp_weak_allows_stale_read_under_sc_per_location() {
    let p = mp_program();
    let bs = behaviors(&p, SC_PER_LOC, 1);
    assert!(!bs.is_empty());
    // The weak MP behaviour (r0=1, r1=0) must be reachable.
    assert!(bs.iter().any(|&(done, holds)| done && holds));
}

#[test]
fn mp_forbidden_under_full_sc() {
    let p = mp_program();
    let bs = behaviors(&p, SC_FULL, 1);
    assert!(!bs.is_empty());
    assert!(
        bs.iter().all(|&(_, holds)| !holds),
        "SC forbids stale MP read"
    );
}

#[test]
fn sb_allows_both_zero_only_under_weak_model() {
    // Store buffering: P0: x=1; r0=y  P1: y=1; r1=x; exists r0==0 && r1==0.
    let mut p = Program::new(Arch::Ptx);
    p.name = "SB".into();
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let y = p.declare_memory(MemoryDecl::scalar("y"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::load(
        Reg(0),
        MemRef::scalar(y),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::store(
        MemRef::scalar(y),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::load(
        Reg(1),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    p.assertion = Some(Assertion::Exists(Condition::and(
        Condition::reg_eq(0, Reg(0), 0),
        Condition::reg_eq(1, Reg(1), 0),
    )));
    let weak_bs = behaviors(&p, SC_PER_LOC, 1);
    assert!(weak_bs.iter().any(|&(_, h)| h), "weak model allows SB");
    let sc_bs = behaviors(&p, SC_FULL, 1);
    assert!(sc_bs.iter().all(|&(_, h)| !h), "SC forbids SB");
}

#[test]
fn coherence_forbids_corr_inversion() {
    // CoRR: P0: x=1; x=2  P1: r0=x; r1=x; exists r0==2 && r1==1.
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        2u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::load(
        Reg(0),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::load(
        Reg(1),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    p.assertion = Some(Assertion::Exists(Condition::and(
        Condition::reg_eq(1, Reg(0), 2),
        Condition::reg_eq(1, Reg(1), 1),
    )));
    let bs = behaviors(&p, SC_PER_LOC, 1);
    // Under sc-per-location with *total* co... co is enumerated partially
    // for PTX, but the coherence axiom with fr still forbids the
    // new-then-old read pair when the writes are co-ordered. The pair can
    // appear when the writes stay unordered (PTX's partial co).
    // Under full SC it is always forbidden.
    let sc = behaviors(&p, SC_FULL, 1);
    assert!(sc.iter().all(|&(_, h)| !h));
    assert!(!bs.is_empty());
}

#[test]
fn atomicity_axiom_enforces_mutex_increment() {
    // Two atomic fetch-and-adds on x must not read the same value.
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    for i in 0..2 {
        let mut t = Thread::new(format!("P{i}"), ThreadPos::ptx(i, 0));
        t.push(Instruction::Rmw {
            dst: Reg(0),
            addr: MemRef::scalar(x),
            op: RmwOp::Add,
            operand: 1u64.into(),
            attrs: AccessAttrs::atomic(MemOrder::Relaxed, Scope::Gpu),
        });
        p.add_thread(t);
    }
    p.assertion = Some(Assertion::Exists(Condition::and(
        Condition::reg_eq(0, Reg(0), 0),
        Condition::reg_eq(1, Reg(0), 0),
    )));
    let model = gpumc_cat::parse(SC_FULL).unwrap();
    let graph = graph_of(&p, 1);
    let cond = p.assertion.as_ref().unwrap().condition().clone();
    let mut both_zero = false;
    let mut any = false;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        any = true;
        if b.execution.eval_condition(&cond) == Some(true) {
            both_zero = true;
        }
    })
    .unwrap();
    assert!(any);
    assert!(!both_zero, "atomicity forbids both RMWs reading 0");
}

#[test]
fn cas_failure_produces_no_write() {
    // P0: cas x 5 -> 7 (fails: x==0). Final x must be 0 in all behaviours.
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
    t.push(Instruction::Rmw {
        dst: Reg(0),
        addr: MemRef::scalar(x),
        op: RmwOp::Cas {
            expected: 5u64.into(),
        },
        operand: 7u64.into(),
        attrs: AccessAttrs::atomic(MemOrder::Relaxed, Scope::Gpu),
    });
    p.add_thread(t);
    let model = gpumc_cat::parse(SC_FULL).unwrap();
    let graph = graph_of(&p, 1);
    let mut finals = Vec::new();
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        finals.push(b.execution.final_mem(x, 0));
    })
    .unwrap();
    assert!(!finals.is_empty());
    assert!(finals.iter().all(|&v| v == Some(0)));
}

#[test]
fn cas_success_writes() {
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
    t.push(Instruction::Rmw {
        dst: Reg(0),
        addr: MemRef::scalar(x),
        op: RmwOp::Cas {
            expected: 0u64.into(),
        },
        operand: 7u64.into(),
        attrs: AccessAttrs::atomic(MemOrder::Relaxed, Scope::Gpu),
    });
    p.add_thread(t);
    let model = gpumc_cat::parse(SC_FULL).unwrap();
    let graph = graph_of(&p, 1);
    let mut finals = Vec::new();
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        finals.push(b.execution.final_mem(x, 0));
    })
    .unwrap();
    assert_eq!(finals, vec![Some(7)]);
}

#[test]
fn spinloop_liveness_violation_detected() {
    // P0: spins on flag; P1: never sets it => stuck state exists.
    let mut p = Program::new(Arch::Ptx);
    let flag = p.declare_memory(MemoryDecl::scalar("flag"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::Label(0));
    t0.push(Instruction::load(
        Reg(0),
        MemRef::scalar(flag),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::Branch {
        cmp: CmpOp::Ne,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(1),
        target: 0,
    });
    p.add_thread(t0);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 2);
    let mut violation = false;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        if b.execution.is_liveness_violation() {
            violation = true;
        }
    })
    .unwrap();
    assert!(
        violation,
        "spinning on a never-set flag must be a liveness bug"
    );
}

#[test]
fn spinloop_with_writer_has_no_liveness_violation() {
    // P1 sets the flag; the co-maximal write is 1, so the spin exits.
    let mut p = Program::new(Arch::Ptx);
    let flag = p.declare_memory(MemoryDecl::scalar("flag"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::Label(0));
    t0.push(Instruction::load(
        Reg(0),
        MemRef::scalar(flag),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::Branch {
        cmp: CmpOp::Ne,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(1),
        target: 0,
    });
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::store(
        MemRef::scalar(flag),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 2);
    let mut violation = false;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        if b.execution.is_liveness_violation() {
            violation = true;
        }
    })
    .unwrap();
    assert!(
        !violation,
        "the stuck read cannot be co-maximal once the writer runs"
    );
}

#[test]
fn straight_line_restriction_rejects_loops() {
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let mut t = Thread::new("P0", ThreadPos::ptx(0, 0));
    t.push(Instruction::Label(0));
    t.push(Instruction::load(
        Reg(0),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    t.push(Instruction::Branch {
        cmp: CmpOp::Ne,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(1),
        target: 0,
    });
    p.add_thread(t);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 2);
    let opts = EnumerateOptions {
        straight_line_only: true,
        ..EnumerateOptions::default()
    };
    let err = enumerate(&graph, &model, &opts, |_| {}).unwrap_err();
    assert!(matches!(err, gpumc_exec::EnumerateError::Unsupported(_)));
}

#[test]
fn filter_restricts_behaviours() {
    // MP with filter r0==1: only behaviours where the flag was observed.
    let mut p = mp_program();
    p.filter = Some(Condition::reg_eq(1, Reg(0), 1));
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 1);
    let mut n = 0;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        assert_eq!(b.execution.final_reg(1, Reg(0)), Some(1));
        n += 1;
    })
    .unwrap();
    assert!(n > 0);
}

#[test]
fn enumerate_consistent_collects() {
    let p = mp_program();
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 1);
    let bs = enumerate_consistent(&graph, &model, &EnumerateOptions::default()).unwrap();
    // 2 reads × 2 writes each = 4 rf combinations, all consistent under
    // sc-per-location for distinct locations; co fixed by single writes.
    assert_eq!(bs.len(), 4);
}

#[test]
fn dependency_cycle_rejected() {
    // LB+data: P0: r0=x; y=r0  P1: r1=y; x=r1. Values out of thin air
    // (r0=r1=1) are unconstructible and must not appear.
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let y = p.declare_memory(MemoryDecl::scalar("y"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::load(
        Reg(0),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::store(
        MemRef::scalar(y),
        Operand::Reg(Reg(0)),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::load(
        Reg(1),
        MemRef::scalar(y),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::store(
        MemRef::scalar(x),
        Operand::Reg(Reg(1)),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 1);
    let mut nonzero = false;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        if b.execution.final_reg(0, Reg(0)) != Some(0)
            || b.execution.final_reg(1, Reg(1)) != Some(0)
        {
            nonzero = true;
        }
    })
    .unwrap();
    assert!(!nonzero, "thin-air values must be rejected");
}

#[test]
fn flagged_axiom_reports_race() {
    const RACY: &str = r#"
"race-detector"
let fr = (rf^-1; co) \ id
acyclic (po & loc) | rf | fr | co
let wm = ((W * W) | (W * R) | (R * W)) \ ((IW * _) | (_ * IW))
let dr = (loc & wm & ext) \ (A * A) \ id
flag ~empty dr as race
"#;
    let p = mp_program(); // plain accesses: racy
    let model = gpumc_cat::parse(RACY).unwrap();
    let graph = graph_of(&p, 1);
    let mut raced = false;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        if b.verdict.has_flag("race") {
            raced = true;
        }
    })
    .unwrap();
    assert!(raced, "plain MP must be flagged racy");
}

#[test]
fn dynamic_array_index_addresses() {
    // P0 writes a[1]; P1 reads a[r], r loaded from idx (=1).
    let mut p = Program::new(Arch::Ptx);
    let a = p.declare_memory(MemoryDecl::array("a", 2));
    let idx = p.declare_memory(MemoryDecl::scalar("idx").with_init(1));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(
        MemRef::indexed(a, 1u64),
        9u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::load(
        Reg(0),
        MemRef::scalar(idx),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::load(
        Reg(1),
        MemRef::indexed(a, Reg(0)),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    p.assertion = Some(Assertion::Exists(Condition::reg_eq(1, Reg(1), 9)));
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let graph = graph_of(&p, 1);
    let mut seen9 = false;
    enumerate(&graph, &model, &EnumerateOptions::default(), |b| {
        if b.execution.final_reg(1, Reg(1)) == Some(9) {
            seen9 = true;
        }
    })
    .unwrap();
    assert!(seen9, "dynamic index must resolve to a[1]");
}
