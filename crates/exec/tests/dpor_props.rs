//! DPOR engine tests: footprint equivalence against the enumeration
//! engine, prune soundness, and deterministic exploration counts.
//!
//! The key invariant is *exactness*: over the set of consistent
//! behaviours — identified by their footprint `(X, rf, co, sync_fence)`
//! — the DPOR engine with every prune enabled, the DPOR engine with
//! every prune disabled, and the enumeration engine must all agree.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpumc_cat::CatModel;
use gpumc_exec::{
    dpor_explore, dpor_explore_parallel, enumerate, BaseInterpretation, DporOptions, DporParReport,
    DporStats, EnumerateOptions, Execution,
};
use gpumc_ir::*;
use proptest::prelude::*;

const SC_PER_LOC: &str = r#"
"sc-per-location"
let fr = (rf^-1; co) \ id
acyclic (po & loc) | rf | fr | co as coherence
empty rmw & (fr; co) as atomicity
acyclic rf | addr | data | ctrl as no-thin-air
"#;

const SC_FULL: &str = r#"
"sc"
let fr = (rf^-1; co) \ id
empty (((W * W) & loc) \ (co | co^-1 | id)) as co-total
acyclic po | rf | fr | co as sc
empty rmw & (fr; co) as atomicity
"#;

/// A model that constrains the runtime `sync_fence` order: the chosen
/// total order over SC fences must embed into program order. Exercises
/// the sleep-set linearizer and the monotone-axiom co/fence pruning.
const SC_FENCED: &str = r#"
"sc-fenced"
let fr = (rf^-1; co) \ id
acyclic (po & loc) | rf | fr | co as coherence
acyclic po | sync_fence as fence-po
acyclic rf | fr | co | sync_fence | (po; sync_fence; po) as fenced-sc
"#;

fn weak(order: MemOrder) -> AccessAttrs {
    AccessAttrs {
        order,
        ..AccessAttrs::weak()
    }
}

fn graph_of(p: &Program, bound: u32) -> EventGraph {
    compile(&unroll(p, bound).unwrap())
}

/// The identity of a behaviour: executed events, reads-from (restricted
/// to executed reads), coherence edges, and the runtime SC-fence order
/// as seen by the model (`sync_fence`, empty on Vulkan).
type Footprint = (Vec<u32>, Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<(u32, u32)>);

fn footprint(x: &Execution<'_>) -> Footprint {
    let executed: Vec<u32> = x.executed.iter().map(|e| e.0).collect();
    let mut rf: Vec<(u32, u32)> =
        x.rf.iter()
            .enumerate()
            .filter_map(|(r, w)| w.map(|w| (w.0, r as u32)))
            .filter(|&(_, r)| x.executed.contains(EventId(r)))
            .collect();
    rf.sort_unstable();
    let mut co: Vec<(u32, u32)> = x.co.iter().map(|(a, b)| (a.0, b.0)).collect();
    co.sort_unstable();
    let base = BaseInterpretation::compute(x);
    let mut sf: Vec<(u32, u32)> = base
        .rel("sync_fence")
        .map(|r| r.iter().map(|(a, b)| (a.0, b.0)).collect())
        .unwrap_or_default();
    sf.sort_unstable();
    (executed, rf, co, sf)
}

fn dpor_footprints(
    g: &EventGraph,
    model: &CatModel,
    opts: &DporOptions,
) -> (BTreeSet<Footprint>, DporStats) {
    let mut out = BTreeSet::new();
    let stats = dpor_explore(g, model, opts, |b| {
        out.insert(footprint(&b.execution));
    })
    .expect("dpor within caps");
    (out, stats)
}

fn enum_footprints(g: &EventGraph, model: &CatModel) -> BTreeSet<Footprint> {
    let mut out = BTreeSet::new();
    enumerate(g, model, &EnumerateOptions::default(), |b| {
        out.insert(footprint(&b.execution));
    })
    .expect("enumerate within caps");
    out
}

fn no_prunes() -> DporOptions {
    DporOptions {
        prune_rf: false,
        prune_guards: false,
        prune_co: false,
        sleep_fences: false,
        ..DporOptions::default()
    }
}

/// Asserts the three-way footprint agreement on a straight-line graph
/// and returns the pruned-run stats.
fn assert_equivalent(g: &EventGraph, cat: &str) -> DporStats {
    let model = gpumc_cat::parse(cat).unwrap();
    let reference = enum_footprints(g, &model);
    let (pruned, pruned_stats) = dpor_footprints(g, &model, &DporOptions::default());
    let (unpruned, unpruned_stats) = dpor_footprints(g, &model, &no_prunes());
    assert_eq!(pruned, reference, "pruned dpor != enumerate");
    assert_eq!(unpruned, reference, "unpruned dpor != enumerate");
    assert!(
        pruned_stats.explored <= unpruned_stats.explored,
        "pruning must not explore more candidates"
    );
    pruned_stats
}

// ---------------------------------------------------------------------
// Hand-built programs.
// ---------------------------------------------------------------------

fn mp_program() -> Program {
    let mut p = Program::new(Arch::Ptx);
    p.name = "MP".into();
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let y = p.declare_memory(MemoryDecl::scalar("y"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::store(
        MemRef::scalar(y),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::load(
        Reg(0),
        MemRef::scalar(y),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::load(
        Reg(1),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    p
}

/// Store buffering with an SC fence between the store and the load on
/// each thread — two SC fences on distinct threads, so the fence order
/// is a genuine runtime choice.
fn sb_fenced_program(scope: Scope) -> Program {
    let mut p = Program::new(Arch::Ptx);
    p.name = "SB+fences".into();
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let y = p.declare_memory(MemoryDecl::scalar("y"));
    for (i, (w, r)) in [(x, y), (y, x)].into_iter().enumerate() {
        let mut t = Thread::new(format!("P{i}"), ThreadPos::ptx(i as u32, 0));
        t.push(Instruction::store(
            MemRef::scalar(w),
            1u64.into(),
            weak(MemOrder::Weak),
        ));
        t.push(Instruction::fence(FenceAttrs::new(MemOrder::Sc, scope)));
        t.push(Instruction::load(
            Reg(0),
            MemRef::scalar(r),
            weak(MemOrder::Weak),
        ));
        p.add_thread(t);
    }
    p
}

/// A branching program the straight-line enumeration baseline rejects:
/// P0 spins on `flag`; P1 sets it.
fn spin_program() -> Program {
    let mut p = Program::new(Arch::Ptx);
    p.name = "spin".into();
    let flag = p.declare_memory(MemoryDecl::scalar("flag"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::Label(0));
    t0.push(Instruction::load(
        Reg(0),
        MemRef::scalar(flag),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::Branch {
        cmp: CmpOp::Ne,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(1),
        target: 0,
    });
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::store(
        MemRef::scalar(flag),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t1);
    p
}

#[test]
fn dpor_matches_enumerate_on_mp() {
    let p = mp_program();
    for cat in [SC_PER_LOC, SC_FULL] {
        let g = graph_of(&p, 1);
        let stats = assert_equivalent(&g, cat);
        assert!(stats.consistent > 0, "MP must have consistent behaviours");
    }
}

#[test]
fn dpor_matches_enumerate_on_coherence_and_rmw() {
    // CoRR (two same-location writes against two reads) plus an
    // atomic fetch-add on a third thread: exercises partial-co
    // enumeration, co pruning, and failed/successful RMW writes.
    let mut p = Program::new(Arch::Ptx);
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        1u64.into(),
        weak(MemOrder::Weak),
    ));
    t0.push(Instruction::store(
        MemRef::scalar(x),
        2u64.into(),
        weak(MemOrder::Weak),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::load(
        Reg(0),
        MemRef::scalar(x),
        weak(MemOrder::Weak),
    ));
    t1.push(Instruction::Rmw {
        dst: Reg(1),
        addr: MemRef::scalar(x),
        op: RmwOp::Cas {
            expected: 1u64.into(),
        },
        operand: 9u64.into(),
        attrs: AccessAttrs::atomic(MemOrder::Relaxed, Scope::Gpu),
    });
    p.add_thread(t1);
    for cat in [SC_PER_LOC, SC_FULL] {
        let g = graph_of(&p, 1);
        assert_equivalent(&g, cat);
    }
}

#[test]
fn dpor_matches_enumerate_on_fenced_sb() {
    for scope in [Scope::Gpu, Scope::Cta] {
        let p = sb_fenced_program(scope);
        let g = graph_of(&p, 1);
        let stats = assert_equivalent(&g, SC_FENCED);
        assert!(stats.consistent > 0);
    }
}

#[test]
fn sleep_sets_prune_commuting_fences() {
    // CTA-scoped fences on different CTAs are not sr-related: the two
    // linearizations induce the same (empty) sync_fence, and the sleep
    // set must visit only one of them.
    let p = sb_fenced_program(Scope::Cta);
    let g = graph_of(&p, 1);
    let model = gpumc_cat::parse(SC_FENCED).unwrap();
    let (_, stats) = dpor_footprints(&g, &model, &DporOptions::default());
    assert!(
        stats.pruned_fence > 0,
        "commuting SC fences must be sleep-set pruned, stats: {stats:?}"
    );
}

#[test]
fn dpor_accepts_branching_program_enumerate_rejects() {
    let p = spin_program();
    let g = graph_of(&p, 2);
    // The straight-line baseline rejects the loop outright...
    let opts = EnumerateOptions {
        straight_line_only: true,
        ..EnumerateOptions::default()
    };
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let err = enumerate(&g, &model, &opts, |_| {}).unwrap_err();
    assert!(matches!(err, gpumc_exec::EnumerateError::Unsupported(_)));
    // ...while DPOR explores it and agrees with the unrestricted
    // enumerator, including the path-pruned descent.
    let stats = assert_equivalent(&g, SC_PER_LOC);
    assert!(stats.consistent > 0);
    assert!(
        stats.pruned_rf + stats.pruned_paths > 0,
        "branchy spin program should trigger rf or path pruning: {stats:?}"
    );
}

#[test]
fn dpor_stats_are_deterministic() {
    let p = spin_program();
    let g = graph_of(&p, 2);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let (f1, s1) = dpor_footprints(&g, &model, &DporOptions::default());
    let (f2, s2) = dpor_footprints(&g, &model, &DporOptions::default());
    assert_eq!(s1, s2, "same input must explore identically");
    assert_eq!(f1, f2);
}

#[test]
fn dpor_budget_exhaustion_is_interrupted() {
    let p = mp_program();
    let g = graph_of(&p, 1);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let opts = DporOptions {
        max_steps: 3,
        ..DporOptions::default()
    };
    let err = dpor_explore(&g, &model, &opts, |_| {}).unwrap_err();
    assert!(matches!(err, gpumc_exec::DporError::Interrupted(_)));
}

// ---------------------------------------------------------------------
// Parallel driver: agreement with the sequential engine and the
// determinism gate (identical verdicts AND identical merged stats for
// every worker count, run after run).
// ---------------------------------------------------------------------

fn par_footprints(
    g: &EventGraph,
    model: &CatModel,
    opts: &DporOptions,
    workers: usize,
) -> (BTreeSet<Footprint>, DporParReport) {
    let out = Mutex::new(BTreeSet::new());
    let report = dpor_explore_parallel(g, model, opts, workers, None, &|b| {
        out.lock().unwrap().insert(footprint(&b.execution));
        ControlFlow::Continue(())
    })
    .expect("parallel dpor within caps");
    (out.into_inner().unwrap(), report)
}

#[test]
fn parallel_dpor_matches_sequential_per_worker_count() {
    let programs = [
        (mp_program(), 1, SC_PER_LOC),
        (mp_program(), 1, SC_FULL),
        (sb_fenced_program(Scope::Gpu), 1, SC_FENCED),
        (spin_program(), 2, SC_PER_LOC),
    ];
    for (p, bound, cat) in programs {
        let g = graph_of(&p, bound);
        let model = gpumc_cat::parse(cat).unwrap();
        for opts in [DporOptions::default(), no_prunes()] {
            let (seq, seq_stats) = dpor_footprints(&g, &model, &opts);
            for workers in 1..=4 {
                let (par, report) = par_footprints(&g, &model, &opts, workers);
                assert_eq!(
                    par, seq,
                    "parallel != sequential footprints ({} workers, {})",
                    workers, p.name
                );
                assert!(!report.stopped_early);
                assert_eq!(report.workers, workers);
                assert!(report.tasks >= 1);
                assert_eq!(
                    report.stats, seq_stats,
                    "merged stats must equal sequential exactly ({} workers, {})",
                    workers, p.name
                );
            }
        }
    }
}

#[test]
fn parallel_dpor_is_deterministic_across_runs() {
    let p = spin_program();
    let g = graph_of(&p, 2);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    for workers in 1..=4 {
        let (f1, r1) = par_footprints(&g, &model, &DporOptions::default(), workers);
        let (f2, r2) = par_footprints(&g, &model, &DporOptions::default(), workers);
        assert_eq!(f1, f2, "verdicts must not depend on scheduling");
        assert_eq!(
            r1.stats, r2.stats,
            "merged stats must not depend on scheduling"
        );
        assert_eq!(r1.tasks, r2.tasks, "the splitter is deterministic");
    }
}

#[test]
fn parallel_dpor_break_cancels_remaining_tasks() {
    let p = spin_program();
    let g = graph_of(&p, 2);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let visits = AtomicU64::new(0);
    let report = dpor_explore_parallel(&g, &model, &DporOptions::default(), 4, None, &|_| {
        visits.fetch_add(1, Ordering::Relaxed);
        ControlFlow::Break(())
    })
    .expect("early stop is not an error");
    assert!(
        report.stopped_early,
        "a Break must be reported as an early stop"
    );
    assert!(visits.load(Ordering::Relaxed) >= 1);
    // A cancelled run reports partial (but still well-defined) stats.
    let (_, seq_stats) = dpor_footprints(&g, &model, &DporOptions::default());
    assert!(report.stats.explored <= seq_stats.explored);
}

#[test]
fn parallel_dpor_shares_one_step_budget() {
    let p = mp_program();
    let g = graph_of(&p, 1);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let opts = DporOptions {
        max_steps: 3,
        ..DporOptions::default()
    };
    let err = dpor_explore_parallel(&g, &model, &opts, 2, None, &|_| ControlFlow::Continue(()))
        .unwrap_err();
    assert!(
        matches!(err, gpumc_exec::DporError::Interrupted(_)),
        "got {err:?}"
    );
}

#[test]
fn parallel_dpor_contains_injected_panic() {
    let p = mp_program();
    let g = graph_of(&p, 1);
    let model = gpumc_cat::parse(SC_PER_LOC).unwrap();
    let plan = gpumc_fault::FaultPlan::single(
        gpumc_fault::points::DPOR_EXPLORE,
        gpumc_fault::FaultKind::Panic,
    );
    let _guard = gpumc_fault::scoped(std::sync::Arc::new(plan));
    let err = dpor_explore_parallel(&g, &model, &DporOptions::default(), 2, None, &|_| {
        ControlFlow::Continue(())
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            gpumc_exec::DporError::Interrupted(ref m)
                if m.contains("panicked") && m.contains("injected fault")
        ),
        "an injected panic must surface as Interrupted with its message, got {err:?}"
    );
}

// ---------------------------------------------------------------------
// Randomized prune-soundness.
// ---------------------------------------------------------------------

/// A tiny instruction descriptor for random programs (modeled on the
/// cross-crate differential generator, kept local to the exec crate).
#[derive(Debug, Clone)]
enum I {
    Load { loc: u8 },
    Store { loc: u8, val: u8 },
    Cas { loc: u8, expected: u8, new: u8 },
    FenceSc,
    SkipNext { eq: u8 },
}

fn instr_strategy() -> impl Strategy<Value = I> {
    prop_oneof![
        (0u8..2).prop_map(|loc| I::Load { loc }),
        (0u8..2, 1u8..3).prop_map(|(loc, val)| I::Store { loc, val }),
        (0u8..2, 0u8..2, 1u8..3).prop_map(|(loc, expected, new)| I::Cas { loc, expected, new }),
        Just(I::FenceSc),
        (0u8..2).prop_map(|eq| I::SkipNext { eq }),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<I>>> {
    proptest::collection::vec(proptest::collection::vec(instr_strategy(), 1..=3), 2..=2)
}

fn build(threads: &[Vec<I>]) -> Program {
    let mut p = Program::new(Arch::Ptx);
    p.name = "random".into();
    let locs = [
        p.declare_memory(MemoryDecl::scalar("x")),
        p.declare_memory(MemoryDecl::scalar("y")),
    ];
    for (ti, instrs) in threads.iter().enumerate() {
        let mut t = Thread::new(format!("P{ti}"), ThreadPos::ptx(ti as u32, 0));
        let mut reg = 0u32;
        let mut next_label = ti as u32 * 100;
        let mut skip_open: Option<u32> = None;
        for i in instrs {
            match i {
                I::Load { loc } => {
                    t.push(Instruction::load(
                        Reg(reg),
                        MemRef::scalar(locs[*loc as usize]),
                        weak(MemOrder::Weak),
                    ));
                    reg += 1;
                }
                I::Store { loc, val } => {
                    // Data-dependent value when a register is live: feeds
                    // the thin-air value-cycle prune.
                    let v: Operand = if reg > 0 && *val == 2 {
                        Operand::Reg(Reg(reg - 1))
                    } else {
                        u64::from(*val).into()
                    };
                    t.push(Instruction::store(
                        MemRef::scalar(locs[*loc as usize]),
                        v,
                        weak(MemOrder::Weak),
                    ));
                }
                I::Cas { loc, expected, new } => {
                    t.push(Instruction::Rmw {
                        dst: Reg(reg),
                        addr: MemRef::scalar(locs[*loc as usize]),
                        op: RmwOp::Cas {
                            expected: u64::from(*expected).into(),
                        },
                        operand: u64::from(*new).into(),
                        attrs: AccessAttrs::atomic(MemOrder::Relaxed, Scope::Gpu),
                    });
                    reg += 1;
                }
                I::FenceSc => {
                    t.push(Instruction::fence(FenceAttrs::new(
                        MemOrder::Sc,
                        Scope::Gpu,
                    )));
                }
                I::SkipNext { eq } => {
                    if reg == 0 || skip_open.is_some() {
                        continue;
                    }
                    // Forward branch over the next instruction, guarded on
                    // the last loaded value: a genuinely branching program.
                    t.push(Instruction::Branch {
                        cmp: CmpOp::Eq,
                        a: Operand::Reg(Reg(reg - 1)),
                        b: Operand::Const(u64::from(*eq)),
                        target: next_label,
                    });
                    skip_open = Some(next_label);
                    next_label += 1;
                    continue;
                }
            }
            if let Some(label) = skip_open.take() {
                t.push(Instruction::Label(label));
            }
        }
        if let Some(label) = skip_open.take() {
            t.push(Instruction::Label(label));
        }
        p.add_thread(t);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Prune soundness: over random small programs, the fully pruned
    /// explorer, the unpruned explorer, and (on straight-line programs)
    /// the enumeration engine visit the same consistent footprints.
    #[test]
    fn prune_soundness_random_programs(threads in program_strategy()) {
        let p = build(&threads);
        for cat in [SC_PER_LOC, SC_FENCED] {
            let model = gpumc_cat::parse(cat).unwrap();
            let g = graph_of(&p, 2);
            let (pruned, _) = dpor_footprints(&g, &model, &DporOptions::default());
            let (unpruned, _) = dpor_footprints(&g, &model, &no_prunes());
            prop_assert_eq!(&pruned, &unpruned, "prunes changed behaviours under {}", cat);
            let reference = enum_footprints(&g, &model);
            prop_assert_eq!(&pruned, &reference, "dpor != enumerate under {}", cat);
        }
    }

    /// Each prune in isolation preserves the behaviour set, and the
    /// explored count is deterministic across repeated runs.
    #[test]
    fn individual_prunes_sound_and_deterministic(threads in program_strategy()) {
        let p = build(&threads);
        let model = gpumc_cat::parse(SC_FENCED).unwrap();
        let g = graph_of(&p, 1);
        let (reference, _) = dpor_footprints(&g, &model, &no_prunes());
        for flag in 0..4 {
            let opts = DporOptions {
                prune_rf: flag == 0,
                prune_guards: flag == 1,
                prune_co: flag == 2,
                sleep_fences: flag == 3,
                ..DporOptions::default()
            };
            let (got, s1) = dpor_footprints(&g, &model, &opts);
            prop_assert_eq!(&got, &reference, "prune #{} changed behaviours", flag);
            let (_, s2) = dpor_footprints(&g, &model, &opts);
            prop_assert_eq!(s1, s2);
        }
    }
}
