//! Property-based tests of the relation algebra: the cat operators obey
//! their algebraic laws on random relations.

use gpumc_exec::{EventSet, Relation};
use gpumc_ir::EventId;
use proptest::prelude::*;

const N: usize = 24;

fn rel_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..N, 0..N), 0..60).prop_map(|pairs| {
        Relation::from_pairs(
            N,
            pairs
                .into_iter()
                .map(|(a, b)| (EventId(a as u32), EventId(b as u32))),
        )
    })
}

fn set_strategy() -> impl Strategy<Value = EventSet> {
    proptest::collection::vec(0..N, 0..N).prop_map(|xs| {
        let mut s = EventSet::empty(N);
        for x in xs {
            s.insert(EventId(x as u32));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compose_is_associative(r in rel_strategy(), s in rel_strategy(), t in rel_strategy()) {
        prop_assert_eq!(r.compose(&s).compose(&t), r.compose(&s.compose(&t)));
    }

    #[test]
    fn union_distributes_over_compose(r in rel_strategy(), s in rel_strategy(), t in rel_strategy()) {
        // (r | s); t == (r; t) | (s; t)
        prop_assert_eq!(
            r.union(&s).compose(&t),
            r.compose(&t).union(&s.compose(&t))
        );
    }

    #[test]
    fn inverse_is_involutive_and_antidistributes(r in rel_strategy(), s in rel_strategy()) {
        prop_assert_eq!(r.inverse().inverse(), r.clone());
        prop_assert_eq!(r.compose(&s).inverse(), s.inverse().compose(&r.inverse()));
    }

    #[test]
    fn transitive_closure_is_idempotent_and_transitive(r in rel_strategy()) {
        let tc = r.transitive_closure();
        prop_assert_eq!(tc.transitive_closure(), tc.clone());
        prop_assert_eq!(tc.compose(&tc).union(&tc), tc.clone(), "closure is transitive");
        // r ⊆ r+
        prop_assert_eq!(r.union(&tc), tc);
    }

    #[test]
    fn refl_closure_contains_identity(r in rel_strategy()) {
        let rc = r.refl_transitive_closure();
        for i in 0..N as u32 {
            prop_assert!(rc.contains(EventId(i), EventId(i)));
        }
        prop_assert_eq!(rc.clone().compose(&rc.clone()).union(&rc.clone()), rc);
    }

    #[test]
    fn acyclicity_matches_closure_reflexivity(r in rel_strategy()) {
        prop_assert_eq!(r.is_cyclic(), r.transitive_closure().has_reflexive_pair());
    }

    #[test]
    fn identity_on_is_neutral_for_members(s in set_strategy(), r in rel_strategy()) {
        let id = Relation::identity_on(&s);
        // [S]; r keeps exactly the rows whose source is in S.
        let restricted = id.compose(&r);
        for (a, b) in r.iter() {
            prop_assert_eq!(restricted.contains(a, b), s.contains(a));
        }
    }

    #[test]
    fn cross_product_has_expected_cardinality(a in set_strategy(), b in set_strategy()) {
        let cr = Relation::cross(&a, &b);
        prop_assert_eq!(cr.len(), a.len() * b.len());
    }

    #[test]
    fn domain_range_consistency(r in rel_strategy()) {
        let dom = r.domain();
        let ran = r.range();
        for (a, b) in r.iter() {
            prop_assert!(dom.contains(a));
            prop_assert!(ran.contains(b));
        }
        prop_assert_eq!(r.inverse().domain(), ran);
    }

    #[test]
    fn set_algebra_laws(a in set_strategy(), b in set_strategy()) {
        prop_assert_eq!(a.union(&b).diff(&b), a.diff(&b));
        prop_assert_eq!(a.inter(&b), b.inter(&a));
        prop_assert_eq!(a.diff(&b).inter(&b).len(), 0);
    }
}
