//! Allocation micro-benchmark for the DPOR hot path.
//!
//! The candidate-validation stage used to defensively clone every `Val`
//! expression before evaluating it (`ctx.eval(&v.clone())`) and cloned
//! each block terminator on every tree visit; this bench counts heap
//! allocations per explored candidate with a counting global allocator
//! so the fix is measurable independent of wall-clock noise and of the
//! parallel-exploration work built on top of it.
//!
//! Run with: `cargo bench -p gpumc-exec --bench dpor_alloc`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, Criterion};
use gpumc_exec::{dpor_explore, DporOptions, DporStats};
use gpumc_ir::{
    compile, unroll, AccessAttrs, AluOp, Arch, CmpOp, EventGraph, Instruction, MemOrder, MemRef,
    MemoryDecl, Operand, Program, Reg, Thread, ThreadPos,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SC_PER_LOC: &str = r#"
"sc-per-location"
let fr = (rf^-1; co) \ id
acyclic (po & loc) | rf | fr | co as coherence
empty rmw & (fr; co) as atomicity
acyclic rf | addr | data | ctrl as no-thin-air
"#;

fn weak() -> AccessAttrs {
    AccessAttrs {
        order: MemOrder::Weak,
        ..AccessAttrs::weak()
    }
}

/// A guarded message-passing shape whose stored values and branch
/// guards are compound (`Val::Bin`) expressions — exactly the values
/// the old code cloned (boxed nodes, so every clone allocated) before
/// each evaluation.
fn guarded_mp() -> Program {
    let mut p = Program::new(Arch::Ptx);
    p.name = "guarded-mp".into();
    let x = p.declare_memory(MemoryDecl::scalar("x"));
    let y = p.declare_memory(MemoryDecl::scalar("y"));
    let mut t0 = Thread::new("P0", ThreadPos::ptx(0, 0));
    t0.push(Instruction::store(MemRef::scalar(x), 1u64.into(), weak()));
    t0.push(Instruction::load(Reg(0), MemRef::scalar(x), weak()));
    // A deep ALU chain: the stored value becomes a `Val::Bin` tree with
    // one boxed node per link, so one defensive clone of it costs many
    // heap allocations.
    t0.push(Instruction::Alu {
        dst: Reg(1),
        op: AluOp::Add,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(1),
    });
    for _ in 0..7 {
        t0.push(Instruction::Alu {
            dst: Reg(1),
            op: AluOp::Add,
            a: Operand::Reg(Reg(1)),
            b: Operand::Const(0),
        });
    }
    t0.push(Instruction::store(
        MemRef::scalar(y),
        Operand::Reg(Reg(1)),
        weak(),
    ));
    p.add_thread(t0);
    let mut t1 = Thread::new("P1", ThreadPos::ptx(1, 0));
    t1.push(Instruction::Label(0));
    t1.push(Instruction::load(Reg(0), MemRef::scalar(y), weak()));
    t1.push(Instruction::Alu {
        dst: Reg(1),
        op: AluOp::Add,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(1),
    });
    for _ in 0..7 {
        t1.push(Instruction::Alu {
            dst: Reg(1),
            op: AluOp::Add,
            a: Operand::Reg(Reg(1)),
            b: Operand::Const(0),
        });
    }
    t1.push(Instruction::Branch {
        cmp: CmpOp::Ne,
        a: Operand::Reg(Reg(1)),
        b: Operand::Const(3),
        target: 0,
    });
    // A computed element index (`r0 & 0`): the address expression is
    // compound too, which the old code cloned once per event per
    // candidate while resolving addresses.
    t1.push(Instruction::Alu {
        dst: Reg(2),
        op: AluOp::And,
        a: Operand::Reg(Reg(0)),
        b: Operand::Const(0),
    });
    t1.push(Instruction::load(
        Reg(3),
        MemRef::indexed(x, Reg(2)),
        weak(),
    ));
    p.add_thread(t1);
    p
}

fn bench_graph() -> EventGraph {
    compile(&unroll(&guarded_mp(), 2).expect("unrolls"))
}

fn explore_counting(g: &EventGraph) -> (u64, DporStats) {
    let model = gpumc_cat::parse(SC_PER_LOC).expect("model parses");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let stats = dpor_explore(g, &model, &DporOptions::default(), |b| {
        black_box(b.execution.leaf.len());
    })
    .expect("exploration within caps");
    (ALLOCATIONS.load(Ordering::Relaxed) - before, stats)
}

fn bench_dpor_explore(c: &mut Criterion) {
    let g = bench_graph();
    let model = gpumc_cat::parse(SC_PER_LOC).expect("model parses");
    c.bench_function("dpor/guarded-mp-bound-2", |b| {
        b.iter(|| {
            dpor_explore(&g, &model, &DporOptions::default(), |bh| {
                black_box(bh.execution.leaf.len());
            })
            .expect("exploration within caps")
        })
    });
}

criterion_group!(benches, bench_dpor_explore);

fn main() {
    benches();

    // Allocation count per explored candidate. Before the
    // clone-before-eval fix this program measured ~340 allocations per
    // candidate; with `&Val` taken throughout (plus the terminator and
    // duplicate-rf-snapshot clones gone) it drops to ~246. The ceiling
    // sits between the two so a regression back to defensive cloning
    // fails the bench.
    let g = bench_graph();
    let (allocs, stats) = explore_counting(&g);
    assert!(stats.explored > 0, "bench program explored no candidates");
    let per_candidate = allocs as f64 / stats.explored as f64;
    println!(
        "dpor/guarded-mp-bound-2: {allocs} allocations / {} candidates = {per_candidate:.1} per candidate",
        stats.explored
    );
    const PER_CANDIDATE_CEILING: f64 = 290.0;
    assert!(
        per_candidate < PER_CANDIDATE_CEILING,
        "allocation regression: {per_candidate:.1} allocations per explored candidate \
         (ceiling {PER_CANDIDATE_CEILING})"
    );
}
