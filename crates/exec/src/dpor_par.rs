//! Work-stealing parallel driver for the stateless DPOR engine.
//!
//! The decision tree of [`crate::dpor_explore`] — rf-source choices,
//! unresolved branches, and coherence refinements — is split into
//! independent subtree tasks, each identified by a *plan*: the forced
//! eligible-choice indices at the decision nodes on its prefix path.
//! Tasks own their `(X, rf, co)` prefix privately (each replays it from
//! scratch), so workers share nothing mutable except a relaxed step
//! counter, a stop flag, and the caller's `Sync` visitor.
//!
//! Splitting happens up front: a breadth-first probe pass walks plans
//! from the root, and each probe either explores a decision-free
//! subtree to completion (its stats are final) or aborts at its first
//! frontier decision node, forking one child plan per eligible choice.
//! Probing stops once the frontier holds about four tasks per worker;
//! the remaining plans are distributed round-robin over per-worker
//! deques and balanced by stealing from the back of the most-loaded
//! deque (the same LIFO-victim idiom as the fleet scheduler).
//!
//! Exactness: stats fired on a shared prefix are kept only by the
//! prefix's canonical owner (see [`crate::dpor::explore_plan`]), so the
//! merged [`DporStats`] equal the sequential engine's counters exactly
//! on any run that completes without an early stop — the determinism
//! gate in `tests/dpor_props.rs` asserts this per worker count.
//!
//! Divergences from the sequential engine, both sound and documented:
//!
//! * a visitor may stop the run early ([`std::ops::ControlFlow::Break`],
//!   "first violation wins"); the sequential engine always explores
//!   exhaustively, so on budget-capped violating programs the parallel
//!   engine can answer *violated* where sequential runs out of budget
//!   first and answers *unknown*;
//! * which consistent behaviour is visited first is racy (the verdict
//!   *whether* one exists is not);
//! * when several tasks fail, the error of the lexicographically
//!   smallest plan is reported — plans order like the sequential DFS,
//!   so this is the sequential first-error whenever both fail.

use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpumc_cat::CatModel;
use gpumc_ir::EventGraph;

use crate::dpor::{explore_plan, SharedProgress};
use crate::enumerate::Behavior;
use crate::{DporError, DporOptions, DporStats};

/// Result of one parallel DPOR run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DporParReport {
    /// Merged exploration statistics; identical to the sequential
    /// engine's on runs that complete without an early stop.
    pub stats: DporStats,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Subtree tasks explored (probe-completed plus worker-executed).
    pub tasks: usize,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// A visitor `Break` (or a stop during probing) cancelled the rest.
    pub stopped_early: bool,
}

/// How many frontier tasks the splitter aims for per worker. More
/// over-decomposition smooths out skewed subtree sizes; each extra task
/// only costs one prefix replay.
const TASKS_PER_WORKER: usize = 4;

/// Explores all consistent behaviours with DPOR across `workers`
/// threads, invoking `visit` for each (concurrently; it must be `Sync`).
/// Returning [`ControlFlow::Break`] cancels the remaining tasks — first
/// violation wins, as in the SAT portfolio.
///
/// # Errors
///
/// Fails when a structural cap is exceeded, the shared step budget runs
/// out, `poll` fires, or a worker panics without a prior stop — the
/// panic is contained and surfaces as [`DporError::Interrupted`], so an
/// injected worker fault can never flip a verdict.
pub fn dpor_explore_parallel<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &DporOptions,
    workers: usize,
    poll: Option<&(dyn Fn() -> Option<String> + Sync)>,
    visit: &(dyn Fn(&Behavior<'g>) -> ControlFlow<()> + Sync),
) -> Result<DporParReport, DporError> {
    let workers = workers.max(1);
    let shared = SharedProgress::new();
    let target = workers * TASKS_PER_WORKER;

    // --- Phase 1: breadth-first splitting by probes.
    let mut pending: VecDeque<Vec<u32>> = VecDeque::from([Vec::new()]);
    let mut stats = DporStats::default();
    let mut tasks_run = 0usize;
    let mut stopped = false;
    while !stopped && !pending.is_empty() && pending.len() < target {
        let plan = pending.pop_front().expect("non-empty");
        let seq_poll = poll.map(|p| p as &dyn Fn() -> Option<String>);
        let mut probe_visit = |b: &Behavior<'g>| {
            if visit(b).is_break() {
                shared.stop.store(true, Ordering::Relaxed);
            }
        };
        let out = match catch_unwind(AssertUnwindSafe(|| {
            explore_plan(
                graph,
                model,
                opts,
                &plan,
                true,
                Some(&shared),
                seq_poll,
                &mut probe_visit,
            )
        })) {
            Ok(r) => r?,
            Err(payload) => return Err(DporError::Interrupted(panic_message(payload.as_ref()))),
        };
        if out.stopped {
            stats.absorb(&out.stats);
            tasks_run += 1;
            stopped = true;
        } else if let Some(arity) = out.split {
            // The probe's stats are discarded: the path to the first
            // frontier decision node is linear, so nothing was visited,
            // and each child task re-books its share of the prefix.
            for c in 0..arity {
                let mut child = plan.clone();
                child.push(c);
                pending.push_back(child);
            }
        } else {
            // Decision-free subtree, fully explored by the probe.
            stats.absorb(&out.stats);
            tasks_run += 1;
        }
    }

    // --- Phase 2: execute the remaining frontier on a stealing pool.
    let mut stopped_early = stopped || shared.stop.load(Ordering::Relaxed);
    let mut steals_total = 0u64;
    if !stopped_early && !pending.is_empty() {
        let tasks: Vec<Vec<u32>> = pending.into_iter().collect();
        let mut lanes: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for i in 0..tasks.len() {
            lanes[i % workers].push_back(i);
        }
        let queues = Mutex::new(lanes);
        let steals = AtomicU64::new(0);
        let results: Mutex<Vec<(usize, Result<DporStats, DporError>)>> =
            Mutex::new(Vec::with_capacity(tasks.len()));
        let fault_plan = gpumc_fault::current_plan();
        std::thread::scope(|scope| {
            for w in 0..workers.min(tasks.len()) {
                let tasks = &tasks;
                let shared = &shared;
                let queues = &queues;
                let steals = &steals;
                let results = &results;
                let fault_plan = fault_plan.clone();
                scope.spawn(move || {
                    // Re-arm the caller's fault plan: injection points
                    // must keep firing inside workers so the fault
                    // matrix exercises the parallel engine too.
                    let _guard = fault_plan.map(gpumc_fault::scoped);
                    let worker_poll = poll.map(|p| p as &dyn Fn() -> Option<String>);
                    let mut worker_visit = |b: &Behavior<'g>| {
                        if visit(b).is_break() {
                            shared.stop.store(true, Ordering::Relaxed);
                        }
                    };
                    while !shared.stop.load(Ordering::Relaxed) {
                        let Some(ti) = next_job(queues, w, steals) else {
                            break;
                        };
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            explore_plan(
                                graph,
                                model,
                                opts,
                                &tasks[ti],
                                false,
                                Some(shared),
                                worker_poll,
                                &mut worker_visit,
                            )
                        }));
                        let entry = match outcome {
                            Ok(Ok(out)) => {
                                debug_assert!(out.split.is_none(), "non-probe task split");
                                Ok(out.stats)
                            }
                            Ok(Err(e)) => Err(e),
                            Err(payload) => {
                                Err(DporError::Interrupted(panic_message(payload.as_ref())))
                            }
                        };
                        results.lock().expect("results poisoned").push((ti, entry));
                    }
                });
            }
        });
        let results = results.into_inner().expect("results poisoned");
        tasks_run += results.len();
        steals_total = steals.load(Ordering::Relaxed);
        stopped_early = shared.stop.load(Ordering::Relaxed);
        if !stopped_early {
            // No early stop: any task failure fails the run, like the
            // sequential engine. Report the error of the
            // lexicographically smallest plan for determinism.
            let first_err = results
                .iter()
                .filter(|(_, r)| r.is_err())
                .min_by(|(a, _), (b, _)| tasks[*a].cmp(&tasks[*b]));
            if let Some((_, Err(e))) = first_err {
                return Err(e.clone());
            }
        }
        for (_, r) in results {
            if let Ok(st) = r {
                stats.absorb(&st);
            }
        }
    }
    Ok(DporParReport {
        stats,
        workers,
        tasks: tasks_run,
        steals: steals_total,
        stopped_early,
    })
}

/// Pops the next task for worker `w`: own deque first (FIFO — earlier
/// plans sit higher in the tree), else steal from the back of the
/// most-loaded deque.
fn next_job(queues: &Mutex<Vec<VecDeque<usize>>>, w: usize, steals: &AtomicU64) -> Option<usize> {
    let mut q = queues.lock().expect("queues poisoned");
    if let Some(t) = q[w].pop_front() {
        return Some(t);
    }
    let victim = (0..q.len())
        .filter(|&v| v != w)
        .max_by_key(|&v| q[v].len())?;
    let t = q[victim].pop_back()?;
    steals.fetch_add(1, Ordering::Relaxed);
    Some(t)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into());
    format!("worker panicked: {msg}")
}
