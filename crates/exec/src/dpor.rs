//! The stateless DPOR engine (third engine).
//!
//! Explores behaviours `(X, rf, co)` incrementally instead of
//! enumerating them wholesale: threads are decided one at a time by
//! walking their guarded block tree, reads-from choices are extended
//! event by event, and coherence / SC-fence orders are refined only for
//! candidates that survive the partial checks. Each surviving complete
//! candidate is validated with exactly the same machinery as the
//! enumeration engine (shared [`ValCtx`], [`location_orders`], and the
//! cat [`Interpreter`]), so the two engines accept *identical* behaviour
//! sets — the three-way differential gates in `tests/` rely on that.
//!
//! Unlike the Alloy-style enumeration baseline, this engine prunes:
//!
//! * **rf-aware pruning** — a reads-from source whose block already
//!   diverged from a committed path can never execute, and an rf choice
//!   closing a definite value cycle (thin air) is rejected by the value
//!   semantics in every extension; both are cut immediately.
//! * **guard-driven path pruning** — when a branch guard is already
//!   determined by the assigned rf prefix, only the consistent successor
//!   block is explored (the full guard chain is still re-checked on
//!   every complete candidate).
//! * **co-aware pruning** — axioms that are monotone in the
//!   still-growing inputs (`co`, `sync_fence`) and already fail on a
//!   partial coherence order fail on every refinement; the subtree is
//!   cut ([`Interpreter::check_axioms`]).
//! * **sleep sets over SC fences** — PTX `sync_fence` only relates
//!   `sr`-scoped fences, so fence linearizations that differ by swapping
//!   non-`sr` (independent) fences induce the same execution; sleep sets
//!   visit one representative per Mazurkiewicz trace.
//!
//! Every prune is *exactness-preserving*: with all pruning disabled the
//! engine degenerates to a plain incremental enumerator, and the
//! property tests in `crates/exec/tests/dpor_props.rs` check that the
//! consistent behaviour footprints are identical either way.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gpumc_cat::{CatModel, DefBody, RelExpr, SetExpr};
use gpumc_ir::{Arch, BlockId, EventGraph, EventId, EventKind, Guard, LocId, Tag, UTerm, Val};

use crate::base::{outcome_of, scoped_sr};
use crate::enumerate::{location_orders, permute, Behavior, ValCtx};
use crate::execution::Execution;
use crate::interp::Interpreter;
use crate::Relation;

/// Options controlling DPOR exploration.
#[derive(Debug, Clone)]
pub struct DporOptions {
    /// Budget on exploration steps (decision nodes + complete candidates);
    /// exceeding it aborts with [`DporError::Interrupted`].
    pub max_steps: u64,
    /// Maximal number of non-initial writes per location for which
    /// coherence orders are enumerated (as in the enumeration engine).
    pub max_writes_per_loc: usize,
    /// Prune impossible / thin-air reads-from sources.
    pub prune_rf: bool,
    /// Descend only guard-consistent successors of resolved branches.
    pub prune_guards: bool,
    /// Cut partial coherence orders violating monotone axioms.
    pub prune_co: bool,
    /// Explore one SC-fence linearization per Mazurkiewicz trace.
    pub sleep_fences: bool,
}

impl Default for DporOptions {
    fn default() -> DporOptions {
        DporOptions {
            max_steps: 50_000_000,
            max_writes_per_loc: 5,
            prune_rf: true,
            prune_guards: true,
            prune_co: true,
            sleep_fences: true,
        }
    }
}

/// Aggregate statistics of one DPOR run: executions explored vs pruned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DporStats {
    /// Complete candidate executions checked against the model.
    pub explored: u64,
    /// Candidates that satisfied all consistency axioms.
    pub consistent: u64,
    /// Reads-from choices cut (impossible source or definite value cycle).
    pub pruned_rf: u64,
    /// Branch successors cut by resolved guards.
    pub pruned_paths: u64,
    /// Partial coherence subtrees cut by monotone axioms.
    pub pruned_co: u64,
    /// SC-fence linearizations cut by sleep sets.
    pub pruned_fence: u64,
}

impl DporStats {
    /// Total pruned choice points across all pruning dimensions.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_rf + self.pruned_paths + self.pruned_co + self.pruned_fence
    }

    /// Accumulates another run's counters (merging per-worker stats of
    /// a parallel exploration).
    pub fn absorb(&mut self, o: &DporStats) {
        self.explored += o.explored;
        self.consistent += o.consistent;
        self.pruned_rf += o.pruned_rf;
        self.pruned_paths += o.pruned_paths;
        self.pruned_co += o.pruned_co;
        self.pruned_fence += o.pruned_fence;
    }
}

/// DPOR exploration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DporError {
    /// The program uses a feature this engine rejects.
    Unsupported(String),
    /// A structural cap was exceeded (e.g. writes per location).
    TooComplex(String),
    /// The step budget ran out or cancellation was requested; the
    /// verifier reports this as an inconclusive (`Unknown`) verdict.
    Interrupted(String),
}

impl std::fmt::Display for DporError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DporError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DporError::TooComplex(m) => write!(f, "too complex: {m}"),
            DporError::Interrupted(m) => write!(f, "interrupted: {m}"),
        }
    }
}

impl std::error::Error for DporError {}

/// Explores all consistent behaviours with DPOR, invoking `visit` for
/// each.
///
/// # Errors
///
/// Fails when a structural cap is exceeded or the step budget runs out.
pub fn dpor_explore<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &DporOptions,
    visit: impl FnMut(&Behavior<'g>),
) -> Result<DporStats, DporError> {
    dpor_explore_interruptible(graph, model, opts, None, visit)
}

/// [`dpor_explore`] with a cooperative cancellation hook: `poll` is
/// called on every exploration step and aborts the run with
/// [`DporError::Interrupted`] when it returns a reason.
///
/// # Errors
///
/// See [`dpor_explore`]; additionally fails when `poll` fires.
pub fn dpor_explore_interruptible<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &DporOptions,
    poll: Option<&dyn Fn() -> Option<String>>,
    mut visit: impl FnMut(&Behavior<'g>),
) -> Result<DporStats, DporError> {
    let out = explore_plan(graph, model, opts, &[], false, None, poll, &mut visit)?;
    debug_assert!(out.split.is_none() && !out.stopped);
    Ok(out.stats)
}

/// Internal flow control of one exploration.
///
/// `Split` and `Stop` are parallel-exploration aborts, not failures:
/// a probe hitting its first frontier decision node reports the node's
/// arity so the driver can fork one task per child, and a raised stop
/// flag unwinds the task without an error.
pub(crate) enum Ctl {
    Split(u32),
    Stop,
    Err(DporError),
}

impl From<DporError> for Ctl {
    fn from(e: DporError) -> Ctl {
        Ctl::Err(e)
    }
}

/// Progress shared by every task of one parallel run.
pub(crate) struct SharedProgress {
    /// Exploration steps across all workers (relaxed: the budget is a
    /// global cap, not a per-task one, and slight interleaving slack is
    /// fine).
    pub(crate) steps: AtomicU64,
    /// Raised when a visitor requests an early stop; every task exits
    /// at its next tick.
    pub(crate) stop: AtomicBool,
}

impl SharedProgress {
    pub(crate) fn new() -> SharedProgress {
        SharedProgress {
            steps: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }
}

/// Result of exploring one plan (see [`explore_plan`]).
pub(crate) struct PlanOutcome {
    pub(crate) stats: DporStats,
    /// `Some(arity)` iff this was a probe that hit a frontier decision
    /// node with that many eligible children.
    pub(crate) split: Option<u32>,
    /// The shared stop flag ended the task early.
    pub(crate) stopped: bool,
}

/// Explores the decision subtree selected by `plan`: the i-th entry
/// forces the i-th *decision node* (an rf choice, unresolved branch, or
/// coherence refinement with ≥ 2 eligible children) on the path to take
/// its plan[i]-th eligible child. Beyond the plan the subtree is
/// explored exhaustively — unless `probe` is set, in which case the
/// first frontier decision node aborts with its arity so a driver can
/// split the subtree into one task per child.
///
/// The sequential engine is exactly `explore_plan` with an empty plan.
/// Stats fired while replaying a shared prefix are kept only by the
/// prefix's canonical owner (the task whose remaining plan is all
/// zeros), so summing [`PlanOutcome::stats`] over a disjoint task cover
/// reproduces the sequential counters exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_plan<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &DporOptions,
    plan: &[u32],
    probe: bool,
    shared: Option<&SharedProgress>,
    poll: Option<&dyn Fn() -> Option<String>>,
    visit: &mut dyn FnMut(&Behavior<'g>),
) -> Result<PlanOutcome, DporError> {
    let n_threads = graph.threads().len();
    let mut roots: Vec<Option<BlockId>> = vec![None; n_threads];
    for (i, b) in graph.blocks().iter().enumerate() {
        if let (Some(t), None) = (b.thread, b.parent) {
            roots[t] = Some(i as BlockId);
        }
    }
    let roots: Vec<BlockId> = roots
        .into_iter()
        .map(|r| r.expect("every thread has a root block"))
        .collect();
    let write_cands: Vec<EventId> = (0..graph.n_events())
        .map(|i| EventId(i as u32))
        .filter(|&e| graph.event(e).tags.contains(Tag::W))
        .collect();
    let mut suffix_all_zero = vec![true; plan.len() + 1];
    for j in (0..plan.len()).rev() {
        suffix_all_zero[j] = suffix_all_zero[j + 1] && plan[j] == 0;
    }
    let mut explorer = Explorer {
        graph,
        interp: Interpreter::new(model),
        needs_fence_order: graph.arch == Arch::Ptx
            && model
                .referenced_base_rels()
                .iter()
                .any(|r| r == "sync_fence"),
        prunable_axioms: if opts.prune_co {
            monotone_axioms(model)
        } else {
            Vec::new()
        },
        opts,
        poll,
        stats: DporStats::default(),
        steps: 0,
        plan,
        suffix_all_zero,
        depth: 0,
        probe,
        shared,
        roots,
        write_cands,
        leaf: vec![None; n_threads],
        rf: vec![None; graph.n_events()],
        scratch: Some(Scratch::new(graph)),
        visit,
    };
    match explorer.explore_thread(0) {
        Ok(()) => Ok(PlanOutcome {
            stats: explorer.stats,
            split: None,
            stopped: false,
        }),
        Err(Ctl::Split(arity)) => Ok(PlanOutcome {
            stats: explorer.stats,
            split: Some(arity),
            stopped: false,
        }),
        Err(Ctl::Stop) => Ok(PlanOutcome {
            stats: explorer.stats,
            split: None,
            stopped: true,
        }),
        Err(Ctl::Err(e)) => Err(e),
    }
}

/// Immutable parts of one complete candidate, shared across the
/// coherence and fence-order refinement stages.
struct Candidate<'c> {
    leaves: &'c [BlockId],
    final_events: &'c [EventId],
    rf: &'c [Option<EventId>],
    values: &'c [Option<u64>],
    addrs: &'c [Option<(LocId, u64)>],
    vaddrs: &'c [Option<(LocId, u64)>],
}

/// Per-task scratch buffers reused across candidate validations, so the
/// hot path of [`Explorer::complete`] allocates nothing per candidate.
struct Scratch<'g> {
    ctx: ValCtx<'g>,
    leaves: Vec<BlockId>,
    exec_blocks: Vec<u32>,
    events: Vec<EventId>,
    final_events: Vec<EventId>,
    addrs: Vec<Option<(LocId, u64)>>,
    vaddrs: Vec<Option<(LocId, u64)>>,
    base_co: Relation,
    co_partial: Relation,
    chosen: Vec<usize>,
}

impl<'g> Scratch<'g> {
    fn new(g: &'g EventGraph) -> Scratch<'g> {
        let n = g.n_events();
        Scratch {
            ctx: ValCtx::new(g, vec![None; n]),
            leaves: Vec::new(),
            exec_blocks: Vec::new(),
            events: Vec::new(),
            final_events: Vec::new(),
            addrs: Vec::new(),
            vaddrs: Vec::new(),
            base_co: Relation::empty(n),
            co_partial: Relation::empty(n),
            chosen: Vec::new(),
        }
    }
}

/// Stats bucket a decision-node scan prune belongs to.
enum Bucket {
    Rf,
    Co,
}

struct Explorer<'g, 'a> {
    graph: &'g EventGraph,
    interp: Interpreter<'a>,
    needs_fence_order: bool,
    prunable_axioms: Vec<usize>,
    opts: &'a DporOptions,
    poll: Option<&'a dyn Fn() -> Option<String>>,
    stats: DporStats,
    steps: u64,
    /// Forced eligible-choice indices at successive decision nodes;
    /// empty for the sequential engine.
    plan: &'a [u32],
    /// `suffix_all_zero[j]`: `plan[j..]` is all zeros, making this task
    /// the canonical owner of stats fired on the shared prefix at
    /// decision depth `j`.
    suffix_all_zero: Vec<bool>,
    /// Decision nodes taken so far on the current path (≤ `plan.len()`).
    depth: usize,
    /// Abort with [`Ctl::Split`] at the first frontier decision node.
    probe: bool,
    shared: Option<&'a SharedProgress>,
    roots: Vec<BlockId>,
    write_cands: Vec<EventId>,
    /// Chosen leaf per already-decided thread.
    leaf: Vec<Option<BlockId>>,
    /// Partial reads-from assignment (only for reads on committed paths).
    rf: Vec<Option<EventId>>,
    /// `Some` except while [`Explorer::complete`] is on the stack.
    scratch: Option<Scratch<'g>>,
    visit: &'a mut dyn FnMut(&Behavior<'g>),
}

impl<'g> Explorer<'g, '_> {
    /// One exploration step: budget and cancellation check. Replayed
    /// prefixes are not re-billed against the step budget — the
    /// canonical owner of a shared prefix already paid for it.
    fn tick(&mut self) -> Result<(), Ctl> {
        if self.depth == self.plan.len() {
            let over = match self.shared {
                Some(s) => s.steps.fetch_add(1, Ordering::Relaxed) + 1 > self.opts.max_steps,
                None => {
                    self.steps += 1;
                    self.steps > self.opts.max_steps
                }
            };
            if over {
                return Err(Ctl::Err(DporError::Interrupted(format!(
                    "more than {} exploration steps",
                    self.opts.max_steps
                ))));
            }
        }
        if let Some(s) = self.shared {
            if s.stop.load(Ordering::Relaxed) {
                return Err(Ctl::Stop);
            }
        }
        if let Some(poll) = self.poll {
            if let Some(reason) = poll() {
                return Err(Ctl::Err(DporError::Interrupted(reason)));
            }
        }
        Ok(())
    }

    /// Still forcing plan entries.
    fn replaying(&self) -> bool {
        self.depth < self.plan.len()
    }

    /// Probing and past the plan: the next decision node splits.
    fn probing_frontier(&self) -> bool {
        self.probe && self.depth == self.plan.len()
    }

    /// Whether stats fired between decision nodes at the current depth
    /// belong to this task (always true in the free region).
    fn keep_segment(&self) -> bool {
        self.suffix_all_zero[self.depth]
    }

    /// Books the prunes observed while pre-scanning a decision node.
    /// Sequentially each fires exactly once; every task forced through
    /// the node re-observes all of them, so only the canonical owner
    /// keeps its share: prunes scanned past while eligible child `g`
    /// was next belong to the task forced into `g` (the last child
    /// also owns the trailing prunes), provided its remaining plan is
    /// all zeros.
    fn credit_decision_prunes(&mut self, tags: &[u32], forced: usize, arity: usize, b: Bucket) {
        if !self.suffix_all_zero[self.depth + 1] {
            return;
        }
        let kept = tags
            .iter()
            .filter(|&&g| g as usize == forced || (forced == arity - 1 && g as usize == arity))
            .count() as u64;
        match b {
            Bucket::Rf => self.stats.pruned_rf += kept,
            Bucket::Co => self.stats.pruned_co += kept,
        }
    }

    fn explore_thread(&mut self, t: usize) -> Result<(), Ctl> {
        if t == self.roots.len() {
            return self.complete();
        }
        self.descend(t, self.roots[t])
    }

    fn descend(&mut self, t: usize, blk: BlockId) -> Result<(), Ctl> {
        self.tick()?;
        let reads: Vec<EventId> = self
            .graph
            .block(blk)
            .events
            .iter()
            .copied()
            .filter(|&e| self.graph.event(e).tags.contains(Tag::R))
            .collect();
        self.assign_block_reads(t, blk, &reads, 0)
    }

    fn assign_block_reads(
        &mut self,
        t: usize,
        blk: BlockId,
        reads: &[EventId],
        idx: usize,
    ) -> Result<(), Ctl> {
        if idx == reads.len() {
            return self.block_done(t, blk);
        }
        let r = reads[idx];
        if !self.replaying() && !self.probing_frontier() {
            // Free region: plain interleaved scan-and-descend — exactly
            // the sequential engine.
            let mut i = 0;
            while i < self.write_cands.len() {
                let w = self.write_cands[i];
                i += 1;
                if !self.graph.may_alias(r, w) {
                    continue;
                }
                if self.opts.prune_rf && self.source_cannot_execute(t, blk, w) {
                    self.stats.pruned_rf += 1;
                    continue;
                }
                self.rf[r.index()] = Some(w);
                if self.opts.prune_rf && self.definite_value_cycle(r) {
                    self.stats.pruned_rf += 1;
                    self.rf[r.index()] = None;
                    continue;
                }
                self.assign_block_reads(t, blk, reads, idx + 1)?;
                self.rf[r.index()] = None;
            }
            return Ok(());
        }
        // Replay / probe frontier: pre-scan the candidates without
        // descending. The prefix state at each check matches the
        // interleaved scan's exactly (the sequential loop restores `rf`
        // between candidates), so eligibility — and thus the node's
        // arity — is reproduced deterministically.
        let mut eligible: Vec<EventId> = Vec::new();
        let mut prune_tags: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < self.write_cands.len() {
            let w = self.write_cands[i];
            i += 1;
            if !self.graph.may_alias(r, w) {
                continue;
            }
            if self.opts.prune_rf && self.source_cannot_execute(t, blk, w) {
                prune_tags.push(eligible.len() as u32);
                continue;
            }
            self.rf[r.index()] = Some(w);
            let cyclic = self.opts.prune_rf && self.definite_value_cycle(r);
            self.rf[r.index()] = None;
            if cyclic {
                prune_tags.push(eligible.len() as u32);
            } else {
                eligible.push(w);
            }
        }
        if eligible.len() >= 2 {
            if self.probing_frontier() {
                return Err(Ctl::Split(eligible.len() as u32));
            }
            let forced = self.plan[self.depth] as usize;
            debug_assert!(forced < eligible.len(), "plan desync at rf node");
            self.credit_decision_prunes(&prune_tags, forced, eligible.len(), Bucket::Rf);
            let w = eligible[forced];
            self.depth += 1;
            self.rf[r.index()] = Some(w);
            let res = self.assign_block_reads(t, blk, reads, idx + 1);
            self.rf[r.index()] = None;
            self.depth -= 1;
            res
        } else {
            // Not a decision node: its prunes are segment stats.
            if self.keep_segment() {
                self.stats.pruned_rf += prune_tags.len() as u64;
            }
            match eligible.first().copied() {
                Some(w) => {
                    self.rf[r.index()] = Some(w);
                    let res = self.assign_block_reads(t, blk, reads, idx + 1);
                    self.rf[r.index()] = None;
                    res
                }
                None => Ok(()),
            }
        }
    }

    fn block_done(&mut self, t: usize, blk: BlockId) -> Result<(), Ctl> {
        // `g` is a plain `&'g EventGraph` copied out of `self`, so the
        // terminator borrow does not pin `self` and needs no clone.
        let g = self.graph;
        match &g.block(blk).term {
            UTerm::End { .. } | UTerm::Bound { .. } => {
                self.leaf[t] = Some(blk);
                let result = self.explore_thread(t + 1);
                self.leaf[t] = None;
                result
            }
            UTerm::Branch {
                guard,
                then_blk,
                else_blk,
            } => {
                let (then_blk, else_blk) = (*then_blk, *else_blk);
                let resolved = if self.opts.prune_guards {
                    self.eval_guard_partial(guard)
                } else {
                    None
                };
                match resolved {
                    Some(v) => {
                        if self.keep_segment() {
                            self.stats.pruned_paths += 1;
                        }
                        self.descend(t, if v { then_blk } else { else_blk })
                    }
                    None if self.replaying() => {
                        let forced = self.plan[self.depth];
                        debug_assert!(forced < 2, "plan desync at branch node");
                        self.depth += 1;
                        let res = self.descend(t, if forced == 0 { then_blk } else { else_blk });
                        self.depth -= 1;
                        res
                    }
                    None if self.probing_frontier() => Err(Ctl::Split(2)),
                    None => {
                        self.descend(t, then_blk)?;
                        self.descend(t, else_blk)
                    }
                }
            }
        }
    }

    /// Whether write `w` is already known not to execute in any extension
    /// of the current prefix: its block diverges from a committed path.
    fn source_cannot_execute(&self, t: usize, cur: BlockId, w: EventId) -> bool {
        let g = self.graph;
        let wb = g.event(w).block;
        let Some(wt) = g.block(wb).thread else {
            return false; // init block: always executed
        };
        if wt > t {
            return false; // thread not yet decided: anything is possible
        }
        if wt == t {
            // Same thread: possible iff on the committed prefix or still
            // reachable below the current block.
            return !(g.is_ancestor(wb, cur) || g.is_ancestor(cur, wb));
        }
        match self.leaf[wt] {
            Some(leaf) => !g.is_ancestor(wb, leaf),
            None => false,
        }
    }

    /// Whether read `r` now sits on a value cycle through *assigned* rf
    /// edges. Such a cycle persists in every extension (assignments are
    /// never retracted within the subtree), and the shared value
    /// semantics resolves every event on it to `None` (thin air), so all
    /// completions are rejected — cutting here is exact.
    fn definite_value_cycle(&self, r: EventId) -> bool {
        let mut state = vec![0u8; self.graph.n_events()];
        self.dvc_event(r, &mut state)
    }

    fn dvc_event(&self, e: EventId, state: &mut [u8]) -> bool {
        match state[e.index()] {
            1 => return true, // grey: cycle closed
            2 => return false,
            _ => {}
        }
        state[e.index()] = 1;
        let cyclic = match &self.graph.event(e).kind {
            EventKind::Init { .. } | EventKind::Fence(_) => false,
            EventKind::Load { .. } | EventKind::RmwLoad { .. } => {
                self.rf[e.index()].is_some_and(|w| self.dvc_event(w, state))
            }
            EventKind::Store { value, .. } | EventKind::RmwStore { value, .. } => {
                self.dvc_val(value, state)
            }
            EventKind::Barrier { id, .. } => self.dvc_val(id, state),
        };
        state[e.index()] = 2;
        cyclic
    }

    fn dvc_val(&self, v: &Val, state: &mut [u8]) -> bool {
        match v {
            Val::Const(_) => false,
            Val::Read(e) => self.dvc_event(*e, state),
            Val::Bin(_, a, b) => self.dvc_val(a, state) || self.dvc_val(b, state),
        }
    }

    /// Tri-state guard evaluation over the assigned rf prefix: `Some(v)`
    /// only when every read the guard depends on has an assigned source
    /// (so every completion computes the same value); `None` otherwise.
    fn eval_guard_partial(&self, guard: &Guard) -> Option<bool> {
        let mut grey = vec![false; self.graph.n_events()];
        let a = self.partial_val(&guard.a, &mut grey)?;
        let b = self.partial_val(&guard.b, &mut grey)?;
        Some(guard.eval(a, b))
    }

    fn partial_val(&self, v: &Val, grey: &mut [bool]) -> Option<u64> {
        match v {
            Val::Const(c) => Some(*c),
            Val::Read(e) => self.partial_value_of(*e, grey),
            Val::Bin(op, a, b) => {
                let (x, y) = (self.partial_val(a, grey)?, self.partial_val(b, grey)?);
                Some(Val::apply(*op, x, y))
            }
        }
    }

    fn partial_value_of(&self, e: EventId, grey: &mut [bool]) -> Option<u64> {
        if grey[e.index()] {
            return None; // cycle: undetermined here, rejected at completion
        }
        grey[e.index()] = true;
        let v = match &self.graph.event(e).kind {
            EventKind::Init { value, .. } => Some(*value),
            EventKind::Load { .. } | EventKind::RmwLoad { .. } => {
                self.rf[e.index()].and_then(|w| self.partial_value_of(w, grey))
            }
            EventKind::Store { value, .. } | EventKind::RmwStore { value, .. } => {
                self.partial_val(value, grey)
            }
            EventKind::Barrier { id, .. } => self.partial_val(id, grey),
            EventKind::Fence(_) => Some(0),
        };
        grey[e.index()] = false;
        v
    }

    /// All threads decided: validate the candidate exactly like the
    /// enumeration engine, then refine coherence and fence orders.
    fn complete(&mut self) -> Result<(), Ctl> {
        self.tick()?;
        match gpumc_fault::hit(gpumc_fault::points::DPOR_EXPLORE) {
            Some(gpumc_fault::FaultSignal::SpuriousUnknown) => {
                return Err(Ctl::Err(DporError::Interrupted(
                    "injected fault: dpor.explore spurious unknown".into(),
                )));
            }
            Some(gpumc_fault::FaultSignal::AllocSpike(b)) => {
                gpumc_fault::materialize_spike(b);
            }
            None => {}
        }
        let mut s = self.scratch.take().expect("complete() is not reentrant");
        let result = self.complete_with(&mut s);
        self.scratch = Some(s);
        result
    }

    fn complete_with(&mut self, s: &mut Scratch<'g>) -> Result<(), Ctl> {
        let g = self.graph;
        let n = g.n_events();
        let Scratch {
            ctx,
            leaves,
            exec_blocks,
            events,
            final_events,
            addrs,
            vaddrs,
            base_co,
            co_partial,
            chosen,
        } = s;
        leaves.clear();
        leaves.extend(self.leaf.iter().map(|l| l.expect("all threads decided")));
        // Executed blocks: init block plus all ancestors of each leaf.
        exec_blocks.clear();
        exec_blocks.push(0u32);
        for &leaf in leaves.iter() {
            let mut cur = leaf;
            loop {
                exec_blocks.push(cur);
                match g.block(cur).parent {
                    Some((p, _)) => cur = p,
                    None => break,
                }
            }
        }
        events.clear();
        events.extend(
            exec_blocks
                .iter()
                .flat_map(|&b| g.block(b).events.iter().copied()),
        );
        events.sort_unstable();
        // --- Values (shared thin-air-rejecting semantics). The
        // task-owned context is reset onto this candidate's rf prefix
        // instead of being rebuilt, so validation reuses its buffers;
        // later stages borrow the snapshot back via `ctx.rf()`.
        ctx.reset(&self.rf);
        for &e in events.iter() {
            if ctx.value_of(e).is_none() && !matches!(g.event(e).kind, EventKind::Fence(_)) {
                return Ok(()); // unconstructible values: reject candidate
            }
        }
        // --- Addresses.
        addrs.clear();
        addrs.resize(n, None);
        vaddrs.clear();
        vaddrs.resize(n, None);
        for &e in events.iter() {
            let (vloc, idxv) = match &g.event(e).kind {
                EventKind::Init { loc, index, .. } => (*loc, Some(u64::from(*index))),
                k => match k.addr() {
                    Some(a) => (a.loc, ctx.eval(&a.index)),
                    None => continue,
                },
            };
            let Some(i) = idxv else { return Ok(()) };
            if i >= u64::from(g.memory[g.physical_root(vloc).index()].size) {
                return Ok(()); // out-of-bounds access: reject candidate
            }
            vaddrs[e.index()] = Some((vloc, i));
            addrs[e.index()] = Some((g.physical_root(vloc), i));
        }
        // --- CAS success: drop failed RMW writes from the executed set.
        final_events.clear();
        for &e in events.iter() {
            if let EventKind::RmwStore {
                read,
                cas_expected: Some(exp),
                ..
            } = &g.event(e).kind
            {
                let got = ctx.value_of(*read);
                let want = ctx.eval(exp);
                if got.is_none() || want.is_none() || got != want {
                    continue; // failed CAS: no write event
                }
            }
            final_events.push(e);
        }
        // --- rf validity: source executed, same physical address.
        for &e in final_events.iter() {
            if g.event(e).tags.contains(Tag::R) {
                let w = ctx.rf()[e.index()].expect("assigned");
                if !final_events.contains(&w) {
                    return Ok(());
                }
                if addrs[e.index()].is_none() || addrs[e.index()] != addrs[w.index()] {
                    return Ok(());
                }
            }
        }
        // --- Guard consistency: always re-checked, even with guard
        // pruning on (the pruning only skips provably-inconsistent
        // successors; this is the authoritative check).
        for &leaf in leaves.iter() {
            let mut cur = leaf;
            while let Some((p, polarity)) = g.block(cur).parent {
                if let UTerm::Branch { guard, .. } = &g.block(p).term {
                    let (Some(a), Some(b)) = (ctx.eval(&guard.a), ctx.eval(&guard.b)) else {
                        return Ok(());
                    };
                    if guard.eval(a, b) != polarity {
                        return Ok(());
                    }
                }
                cur = p;
            }
        }
        // --- Coherence refinement per location.
        let exec_writes: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|&e| g.event(e).tags.contains(Tag::W) && final_events.contains(&e))
            .collect();
        let mut groups: Vec<(EventId, Vec<EventId>)> = Vec::new(); // (init, others)
        for &w in &exec_writes {
            if g.event(w).tags.contains(Tag::IW) {
                groups.push((w, Vec::new()));
            }
        }
        for &w in &exec_writes {
            if g.event(w).tags.contains(Tag::IW) {
                continue;
            }
            let a = addrs[w.index()].expect("write has address");
            let slot = groups
                .iter_mut()
                .find(|(iw, _)| addrs[iw.index()] == Some(a));
            match slot {
                Some((_, v)) => v.push(w),
                None => return Ok(()), // no init event: reject
            }
        }
        for (_, others) in &groups {
            if others.len() > self.opts.max_writes_per_loc {
                return Err(Ctl::Err(DporError::TooComplex(format!(
                    "{} writes to one location (cap {})",
                    others.len(),
                    self.opts.max_writes_per_loc
                ))));
            }
        }
        let per_loc: Vec<Vec<Relation>> = groups
            .iter()
            .map(|(iw, others)| location_orders(g, n, *iw, others))
            .collect();
        // Base edges (init before every write) of *all* locations: a
        // subset of every refinement, used for monotone-axiom pruning.
        base_co.clear_resize(n);
        for (iw, others) in &groups {
            for &w in others {
                base_co.insert(*iw, w);
            }
        }
        let cand = Candidate {
            leaves: leaves.as_slice(),
            final_events: final_events.as_slice(),
            rf: ctx.rf(),
            values: ctx.values(),
            addrs: addrs.as_slice(),
            vaddrs: vaddrs.as_slice(),
        };
        chosen.clear();
        self.co_dfs(&cand, &per_loc, base_co, chosen, co_partial)
    }

    fn co_dfs(
        &mut self,
        cand: &Candidate<'_>,
        per_loc: &[Vec<Relation>],
        base_co: &Relation,
        chosen: &mut Vec<usize>,
        partial: &mut Relation,
    ) -> Result<(), Ctl> {
        let k = chosen.len();
        if k == per_loc.len() {
            partial.clone_from(base_co);
            for (j, &c) in chosen.iter().enumerate() {
                partial.union_with(&per_loc[j][c]);
            }
            return self.with_fence_orders(cand, partial);
        }
        let do_check =
            self.opts.prune_co && !self.prunable_axioms.is_empty() && per_loc[k].len() > 1;
        if !self.replaying() && !self.probing_frontier() {
            // Free region: the sequential loop.
            for c in 0..per_loc[k].len() {
                self.tick()?;
                chosen.push(c);
                if do_check {
                    // Partial co: refinements chosen so far plus the base
                    // edges of the still-undecided locations — a subset of
                    // every completion, so a failing monotone axiom rules
                    // out the whole subtree.
                    partial.clone_from(base_co);
                    for (j, &cj) in chosen.iter().enumerate() {
                        partial.union_with(&per_loc[j][cj]);
                    }
                    let exec = self.build_execution(cand, partial, &[]);
                    if !self.interp.check_axioms(&exec, &self.prunable_axioms) {
                        self.stats.pruned_co += 1;
                        chosen.pop();
                        continue;
                    }
                }
                self.co_dfs(cand, per_loc, base_co, chosen, partial)?;
                chosen.pop();
            }
            return Ok(());
        }
        // Replay / probe frontier: pre-scan the eligible refinements.
        let mut eligible: Vec<usize> = Vec::new();
        let mut prune_tags: Vec<u32> = Vec::new();
        for c in 0..per_loc[k].len() {
            self.tick()?;
            if do_check {
                partial.clone_from(base_co);
                for (j, &cj) in chosen.iter().enumerate() {
                    partial.union_with(&per_loc[j][cj]);
                }
                partial.union_with(&per_loc[k][c]);
                let exec = self.build_execution(cand, partial, &[]);
                if !self.interp.check_axioms(&exec, &self.prunable_axioms) {
                    prune_tags.push(eligible.len() as u32);
                    continue;
                }
            }
            eligible.push(c);
        }
        if eligible.len() >= 2 {
            if self.probing_frontier() {
                return Err(Ctl::Split(eligible.len() as u32));
            }
            let forced = self.plan[self.depth] as usize;
            debug_assert!(forced < eligible.len(), "plan desync at co node");
            self.credit_decision_prunes(&prune_tags, forced, eligible.len(), Bucket::Co);
            let c = eligible[forced];
            self.depth += 1;
            chosen.push(c);
            let res = self.co_dfs(cand, per_loc, base_co, chosen, partial);
            chosen.pop();
            self.depth -= 1;
            res
        } else {
            if self.keep_segment() {
                self.stats.pruned_co += prune_tags.len() as u64;
            }
            match eligible.first().copied() {
                Some(c) => {
                    chosen.push(c);
                    let res = self.co_dfs(cand, per_loc, base_co, chosen, partial);
                    chosen.pop();
                    res
                }
                None => Ok(()),
            }
        }
    }

    fn with_fence_orders(&mut self, cand: &Candidate<'_>, co: &Relation) -> Result<(), Ctl> {
        let g = self.graph;
        let sc_fences: Vec<EventId> = if self.needs_fence_order {
            cand.final_events
                .iter()
                .copied()
                .filter(|&e| g.event(e).tags.contains(Tag::F) && g.event(e).tags.contains(Tag::SC))
                .collect()
        } else {
            Vec::new()
        };
        if sc_fences.len() > 8 {
            return Err(Ctl::Err(DporError::TooComplex(format!(
                "{} SC fences to order",
                sc_fences.len()
            ))));
        }
        if !self.opts.sleep_fences || sc_fences.len() < 2 {
            let mut perm = sc_fences.clone();
            return permute(&mut perm, 0, &mut |order| {
                self.check_candidate(cand, co, order)
            });
        }
        // Two fences are dependent iff `sr` relates them (either way):
        // only then does their relative order show up in `sync_fence`.
        // Independent fences commute, so sleep sets keep exactly one
        // linearization per trace — every distinct `sync_fence` is still
        // produced once.
        let exec = self.build_execution(cand, co, &[]);
        let sr = scoped_sr(&exec);
        let m = sc_fences.len();
        let mut dep = vec![0u16; m];
        for i in 0..m {
            for j in 0..m {
                if i != j
                    && (sr.contains(sc_fences[i], sc_fences[j])
                        || sr.contains(sc_fences[j], sc_fences[i]))
                {
                    dep[i] |= 1 << j;
                }
            }
        }
        let mut order = Vec::with_capacity(m);
        self.fence_rec(cand, co, &sc_fences, &dep, 0, 0, &mut order)
    }

    #[allow(clippy::too_many_arguments)]
    fn fence_rec(
        &mut self,
        cand: &Candidate<'_>,
        co: &Relation,
        fences: &[EventId],
        dep: &[u16],
        used: u16,
        mut sleep: u16,
        order: &mut Vec<EventId>,
    ) -> Result<(), Ctl> {
        if order.len() == fences.len() {
            let full = order.clone();
            return self.check_candidate(cand, co, &full);
        }
        for i in 0..fences.len() {
            let bit = 1u16 << i;
            if used & bit != 0 {
                continue;
            }
            if sleep & bit != 0 {
                self.stats.pruned_fence += 1;
                continue;
            }
            order.push(fences[i]);
            // A sleeping fence stays asleep only while the chosen fence
            // is independent of it.
            self.fence_rec(cand, co, fences, dep, used | bit, sleep & !dep[i], order)?;
            order.pop();
            sleep |= bit;
        }
        Ok(())
    }

    fn check_candidate(
        &mut self,
        cand: &Candidate<'_>,
        co: &Relation,
        fence_order: &[EventId],
    ) -> Result<(), Ctl> {
        debug_assert!(
            self.depth == self.plan.len(),
            "candidates are checked in the free region only"
        );
        self.tick()?;
        self.stats.explored += 1;
        let execution = self.build_execution(cand, co, fence_order);
        // The program-level filter restricts considered behaviours.
        if let Some(filter) = &self.graph.filter {
            if execution.eval_condition(filter) != Some(true) {
                return Ok(());
            }
        }
        let verdict = self.interp.check(&execution);
        if verdict.consistent {
            self.stats.consistent += 1;
            (self.visit)(&Behavior { execution, verdict });
        }
        Ok(())
    }

    fn build_execution(
        &self,
        cand: &Candidate<'_>,
        co: &Relation,
        fence_order: &[EventId],
    ) -> Execution<'g> {
        let g = self.graph;
        let mut execution = Execution::new(g);
        execution.leaf = cand.leaves.to_vec();
        for &e in cand.final_events {
            execution.executed.insert(e);
        }
        execution.rf = cand.rf.to_vec();
        execution.co = co.clone();
        execution.fence_order = fence_order.to_vec();
        execution.values = cand.values.to_vec();
        execution.addrs = cand.addrs.to_vec();
        execution.vaddrs = cand.vaddrs.to_vec();
        execution.outcomes = cand
            .leaves
            .iter()
            .map(|&l| outcome_of(&g.block(l).term))
            .collect();
        execution
    }
}

/// Indices of axioms usable for partial-coherence pruning: non-flagged,
/// non-negated, and *monotone* in the still-growing inputs `co` and
/// `sync_fence` (no negative occurrence through `\`). Every other base
/// relation is fixed once the candidate's events and rf are, so a
/// monotone `empty`/`irreflexive`/`acyclic` axiom failing on a partial
/// order fails on all of its refinements.
fn monotone_axioms(model: &CatModel) -> Vec<usize> {
    let defs = model.defs();
    // Per definition: does its value mention an unknown (`co` or
    // `sync_fence`) in positive / negative position?
    let mut pol: Vec<(bool, bool)> = Vec::with_capacity(defs.len());
    let mut i = 0;
    while i < defs.len() {
        match defs[i].rec_group {
            None => {
                let p = match &defs[i].body {
                    DefBody::Set(s) => set_pol(s, &pol),
                    DefBody::Rel(r) => rel_pol(r, &pol),
                };
                pol.push(p);
                i += 1;
            }
            Some(group) => {
                let start = i;
                let mut end = i;
                while end < defs.len() && defs[end].rec_group == Some(group) {
                    end += 1;
                }
                // Non-monotone recursion (a group member referenced in
                // negative position) poisons the whole group: its
                // fixpoint need not be monotone in the unknowns.
                let poisoned = (start..end).any(|j| match &defs[j].body {
                    DefBody::Rel(body) => rel_refs_neg(body, start, end, false),
                    DefBody::Set(_) => false,
                });
                for _ in start..end {
                    pol.push(if poisoned {
                        (true, true)
                    } else {
                        (false, false)
                    });
                }
                if !poisoned {
                    loop {
                        let mut changed = false;
                        for j in start..end {
                            let DefBody::Rel(body) = &defs[j].body else {
                                continue;
                            };
                            let p = rel_pol(body, &pol);
                            let merged = (pol[j].0 || p.0, pol[j].1 || p.1);
                            if merged != pol[j] {
                                pol[j] = merged;
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                }
                i = end;
            }
        }
    }
    model
        .axioms()
        .iter()
        .enumerate()
        .filter(|(_, ax)| !ax.flagged && !ax.negated && !rel_pol(&ax.expr, &pol).1)
        .map(|(i, _)| i)
        .collect()
}

fn join(a: (bool, bool), b: (bool, bool)) -> (bool, bool) {
    (a.0 || b.0, a.1 || b.1)
}

fn flip(p: (bool, bool)) -> (bool, bool) {
    (p.1, p.0)
}

fn rel_pol(e: &RelExpr, pol: &[(bool, bool)]) -> (bool, bool) {
    match e {
        RelExpr::Base(name) => (name == "co" || name == "sync_fence", false),
        RelExpr::Ref(id) => pol[*id],
        RelExpr::Id => (false, false),
        RelExpr::IdSet(s) => set_pol(s, pol),
        RelExpr::Cross(a, b) => join(set_pol(a, pol), set_pol(b, pol)),
        RelExpr::Union(a, b) | RelExpr::Inter(a, b) | RelExpr::Seq(a, b) => {
            join(rel_pol(a, pol), rel_pol(b, pol))
        }
        RelExpr::Diff(a, b) => join(rel_pol(a, pol), flip(rel_pol(b, pol))),
        RelExpr::Inverse(a) | RelExpr::Plus(a) | RelExpr::Star(a) | RelExpr::Opt(a) => {
            rel_pol(a, pol)
        }
    }
}

fn set_pol(e: &SetExpr, pol: &[(bool, bool)]) -> (bool, bool) {
    match e {
        SetExpr::Base(_) | SetExpr::Universe => (false, false),
        SetExpr::Ref(id) => pol[*id],
        SetExpr::Union(a, b) | SetExpr::Inter(a, b) => join(set_pol(a, pol), set_pol(b, pol)),
        SetExpr::Diff(a, b) => join(set_pol(a, pol), flip(set_pol(b, pol))),
        SetExpr::Domain(r) | SetExpr::Range(r) => rel_pol(r, pol),
    }
}

fn rel_refs_neg(e: &RelExpr, lo: usize, hi: usize, negated: bool) -> bool {
    match e {
        RelExpr::Base(_) | RelExpr::Id => false,
        RelExpr::Ref(id) => negated && *id >= lo && *id < hi,
        RelExpr::IdSet(s) => set_refs_neg(s, lo, hi, negated),
        RelExpr::Cross(a, b) => {
            set_refs_neg(a, lo, hi, negated) || set_refs_neg(b, lo, hi, negated)
        }
        RelExpr::Union(a, b) | RelExpr::Inter(a, b) | RelExpr::Seq(a, b) => {
            rel_refs_neg(a, lo, hi, negated) || rel_refs_neg(b, lo, hi, negated)
        }
        RelExpr::Diff(a, b) => {
            rel_refs_neg(a, lo, hi, negated) || rel_refs_neg(b, lo, hi, !negated)
        }
        RelExpr::Inverse(a) | RelExpr::Plus(a) | RelExpr::Star(a) | RelExpr::Opt(a) => {
            rel_refs_neg(a, lo, hi, negated)
        }
    }
}

fn set_refs_neg(e: &SetExpr, lo: usize, hi: usize, negated: bool) -> bool {
    match e {
        SetExpr::Base(_) | SetExpr::Universe => false,
        SetExpr::Ref(id) => negated && *id >= lo && *id < hi,
        SetExpr::Union(a, b) | SetExpr::Inter(a, b) => {
            set_refs_neg(a, lo, hi, negated) || set_refs_neg(b, lo, hi, negated)
        }
        SetExpr::Diff(a, b) => {
            set_refs_neg(a, lo, hi, negated) || set_refs_neg(b, lo, hi, !negated)
        }
        SetExpr::Domain(r) | SetExpr::Range(r) => rel_refs_neg(r, lo, hi, negated),
    }
}
