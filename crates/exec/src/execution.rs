//! Concrete candidate executions (behaviours).

use gpumc_ir::{CondAtom, Condition, EventGraph, EventId, LocId, Reg, UTerm, Val};

use crate::bitrel::{EventSet, Relation};

/// How a thread's chosen path ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOutcome {
    /// The thread ran to completion.
    Completed,
    /// The thread is stuck in a spinloop; the recorded read is the final
    /// iteration's load (liveness checks its co-maximality).
    Stuck {
        /// The spin read.
        spin_read: EventId,
    },
    /// The path hit the unrolling bound in a non-spin loop; the
    /// behaviour is incomplete and only usable as a bound-coverage
    /// indicator.
    Incomplete,
}

/// A concrete behaviour `(X, rf, co)` of a program (§2.2), together with
/// the resolved values/addresses and the runtime-chosen `sync_fence`
/// order.
#[derive(Debug, Clone)]
pub struct Execution<'g> {
    /// The underlying event graph.
    pub graph: &'g EventGraph,
    /// Chosen leaf block per thread.
    pub leaf: Vec<gpumc_ir::BlockId>,
    /// Executed events.
    pub executed: EventSet,
    /// Read-from: for each read event, its source write.
    pub rf: Vec<Option<EventId>>,
    /// Coherence: a strict, transitive order over executed same-location
    /// writes (total per location for Vulkan, possibly partial for PTX).
    pub co: Relation,
    /// A total order over the executed SC fences, inducing `sync_fence`.
    pub fence_order: Vec<EventId>,
    /// Concrete value per event (loaded value for reads, stored value
    /// for writes, barrier id for barriers).
    pub values: Vec<Option<u64>>,
    /// Resolved physical address per memory event: (root location, index).
    pub addrs: Vec<Option<(LocId, u64)>>,
    /// Resolved virtual address per memory event: (declared name, index).
    pub vaddrs: Vec<Option<(LocId, u64)>>,
    /// Per-thread outcome.
    pub outcomes: Vec<ThreadOutcome>,
}

impl<'g> Execution<'g> {
    /// Creates an empty execution skeleton over a graph.
    pub fn new(graph: &'g EventGraph) -> Execution<'g> {
        let n = graph.n_events();
        Execution {
            graph,
            leaf: Vec::new(),
            executed: EventSet::empty(n),
            rf: vec![None; n],
            co: Relation::empty(n),
            fence_order: Vec::new(),
            values: vec![None; n],
            addrs: vec![None; n],
            vaddrs: vec![None; n],
            outcomes: Vec::new(),
        }
    }

    /// Evaluates a symbolic value under this execution.
    ///
    /// Returns `None` when the value depends on an unexecuted or
    /// unresolved read.
    pub fn eval(&self, v: &Val) -> Option<u64> {
        match v {
            Val::Const(c) => Some(*c),
            Val::Read(e) => self.values[e.index()],
            Val::Bin(op, a, b) => Some(Val::apply(*op, self.eval(a)?, self.eval(b)?)),
        }
    }

    /// The concrete value of an event (see [`Execution::values`]).
    pub fn value_of(&self, e: EventId) -> Option<u64> {
        self.values[e.index()]
    }

    /// Whether all threads completed (no stuck or incomplete paths).
    pub fn all_completed(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, ThreadOutcome::Completed))
    }

    /// Whether the execution is relevant for liveness: at least one
    /// thread is stuck and every other thread is stuck or completed.
    pub fn is_stuck_state(&self) -> bool {
        let mut any_stuck = false;
        for o in &self.outcomes {
            match o {
                ThreadOutcome::Stuck { .. } => any_stuck = true,
                ThreadOutcome::Completed => {}
                ThreadOutcome::Incomplete => return false,
            }
        }
        any_stuck
    }

    /// Whether this execution witnesses a liveness violation (§6.4): at
    /// least one thread is stuck in a spinloop whose final read observes a
    /// co-maximal write, and every other thread is either similarly stuck
    /// or has terminated — so no future write can break any spin.
    pub fn is_liveness_violation(&self) -> bool {
        let mut any_stuck = false;
        for o in &self.outcomes {
            match o {
                ThreadOutcome::Completed => {}
                ThreadOutcome::Stuck { spin_read } => {
                    let Some(w) = self.rf[spin_read.index()] else {
                        return false;
                    };
                    if !self.co_maximal(w) {
                        return false;
                    }
                    any_stuck = true;
                }
                ThreadOutcome::Incomplete => return false,
            }
        }
        any_stuck
    }

    /// Whether `w` is a co-maximal executed write for its location.
    pub fn co_maximal(&self, w: EventId) -> bool {
        self.executed
            .iter()
            .all(|other| !self.co.contains(w, other))
    }

    /// The final value of a register of a thread (from the chosen leaf's
    /// register snapshot). `None` if the thread did not complete or never
    /// wrote the register (unwritten registers read as 0 at the IR level,
    /// so front-ends materialize them).
    pub fn final_reg(&self, thread: usize, reg: Reg) -> Option<u64> {
        let leaf = *self.leaf.get(thread)?;
        match &self.graph.block(leaf).term {
            UTerm::End { final_regs } => final_regs
                .iter()
                .find(|(r, _)| *r == reg)
                .map_or(Some(0), |(_, v)| self.eval(v)),
            _ => None,
        }
    }

    /// The final value of a memory element: the value of a co-maximal
    /// executed write to it. For PTX's partial `co` there may be several
    /// maximal writes; this returns `None` in that (racy) situation
    /// unless they agree.
    pub fn final_mem(&self, loc: LocId, index: u64) -> Option<u64> {
        let root = self.graph.physical_root(loc);
        let mut result: Option<u64> = None;
        for e in self.executed.iter() {
            if self.graph.event(e).tags.contains(gpumc_ir::Tag::W)
                && self.addrs[e.index()] == Some((root, index))
                && self.co_maximal(e)
            {
                let v = self.values[e.index()]?;
                match result {
                    None => result = Some(v),
                    Some(prev) if prev == v => {}
                    Some(_) => return None,
                }
            }
        }
        result
    }

    /// Evaluates a final-state condition. Returns `None` when some atom
    /// is undefined (e.g. a stuck thread's register).
    pub fn eval_condition(&self, c: &Condition) -> Option<bool> {
        match c {
            Condition::True => Some(true),
            Condition::Eq(a, b) => Some(self.eval_atom(a)? == self.eval_atom(b)?),
            Condition::Ne(a, b) => Some(self.eval_atom(a)? != self.eval_atom(b)?),
            Condition::And(a, b) => Some(self.eval_condition(a)? && self.eval_condition(b)?),
            Condition::Or(a, b) => Some(self.eval_condition(a)? || self.eval_condition(b)?),
            Condition::Not(a) => Some(!self.eval_condition(a)?),
        }
    }

    fn eval_atom(&self, a: &CondAtom) -> Option<u64> {
        match a {
            CondAtom::Const(v) => Some(*v),
            CondAtom::Register { thread, reg } => self.final_reg(*thread, *reg),
            CondAtom::Memory { loc, index } => self.final_mem(*loc, u64::from(*index)),
        }
    }

    /// Renders the execution graph in a compact textual form, listing
    /// executed events and the `rf`/`co` edges — the tool's witness
    /// output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "execution of `{}`:", self.graph.name);
        for e in self.executed.iter() {
            let ev = self.graph.event(e);
            let val = self.values[e.index()].map_or(String::from("?"), |v| v.to_string());
            let addr = self.vaddrs[e.index()].map_or(String::new(), |(l, i)| {
                let name = &self.graph.memory[l.index()].name;
                if i == 0 {
                    format!(" {name}")
                } else {
                    format!(" {name}[{i}]")
                }
            });
            let _ = writeln!(out, "  e{}: {}{addr} = {val} {}", e.0, ev.label, ev.tags);
        }
        for (i, slot) in self.rf.iter().enumerate() {
            if let Some(w) = slot {
                if self.executed.contains(EventId(i as u32)) {
                    let _ = writeln!(out, "  rf: e{} -> e{}", w.0, i);
                }
            }
        }
        for (a, b) in self.co.iter() {
            let _ = writeln!(out, "  co: e{} -> e{}", a.0, b.0);
        }
        out
    }
}
