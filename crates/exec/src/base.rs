//! Concrete interpretation of base sets and relations over an execution.

use std::collections::HashMap;

use gpumc_ir::{Arch, EventId, EventKind, Scope, Tag, UTerm};

use crate::bitrel::{EventSet, Relation};
use crate::execution::Execution;

/// The concrete values of every base set and base relation of the `.cat`
/// environment, computed from one [`Execution`].
#[derive(Debug, Clone)]
pub struct BaseInterpretation {
    sets: HashMap<String, EventSet>,
    rels: HashMap<String, Relation>,
    n: usize,
}

impl BaseInterpretation {
    /// Computes all base sets and relations for an execution.
    pub fn compute(exec: &Execution<'_>) -> BaseInterpretation {
        let g = exec.graph;
        let n = g.n_events();
        let mut sets = HashMap::new();
        let mut rels = HashMap::new();

        // --- Sets: one per tag, restricted to executed events.
        for tag in Tag::ALL {
            let mut s = EventSet::empty(n);
            for e in exec.executed.iter() {
                if g.event(e).tags.contains(tag) {
                    s.insert(e);
                }
            }
            sets.insert(tag.name().to_string(), s);
        }
        // Aliases and derived basics.
        let m = sets["R"].union(&sets["W"]);
        sets.insert("M".into(), m);
        sets.insert("CBAR".into(), sets["B"].clone());
        sets.insert("I".into(), sets["IW"].clone());
        // The universe `_` is the set of *executed* events.
        sets.insert("_".into(), exec.executed.clone());

        // --- po: same real thread, increasing po index.
        let mut po = Relation::empty(n);
        let mut int = Relation::empty(n);
        let mut ext = Relation::empty(n);
        for a in exec.executed.iter() {
            for b in exec.executed.iter() {
                if a == b {
                    continue;
                }
                let (ea, eb) = (g.event(a), g.event(b));
                match (ea.thread, eb.thread) {
                    (Some(ta), Some(tb)) if ta == tb => {
                        int.insert(a, b);
                        if ea.po_index < eb.po_index {
                            po.insert(a, b);
                        }
                    }
                    (None, None) => {
                        int.insert(a, b);
                    }
                    _ => {
                        ext.insert(a, b);
                    }
                }
            }
        }
        rels.insert("po".into(), po);
        rels.insert("int".into(), int);
        rels.insert("ext".into(), ext);

        // --- rf / co.
        let mut rf = Relation::empty(n);
        for (ri, slot) in exec.rf.iter().enumerate() {
            if let Some(w) = slot {
                let r = EventId(ri as u32);
                if exec.executed.contains(r) && exec.executed.contains(*w) {
                    rf.insert(*w, r);
                }
            }
        }
        rels.insert("rf".into(), rf);
        rels.insert("co".into(), exec.co.clone());

        // --- loc / vloc over resolved addresses.
        let mut loc = Relation::empty(n);
        let mut vloc = Relation::empty(n);
        for a in exec.executed.iter() {
            for b in exec.executed.iter() {
                if a == b {
                    continue;
                }
                if let (Some(pa), Some(pb)) = (exec.addrs[a.index()], exec.addrs[b.index()]) {
                    if pa == pb {
                        loc.insert(a, b);
                        let iw =
                            g.event(a).tags.contains(Tag::IW) || g.event(b).tags.contains(Tag::IW);
                        let va = exec.vaddrs[a.index()];
                        let vb = exec.vaddrs[b.index()];
                        if iw || va == vb {
                            vloc.insert(a, b);
                        }
                    }
                }
            }
        }
        rels.insert("loc".into(), loc);
        rels.insert("vloc".into(), vloc);

        // --- rmw pairs.
        let mut rmw = Relation::empty(n);
        for e in exec.executed.iter() {
            if let EventKind::RmwStore { read, .. } = &g.event(e).kind {
                if exec.executed.contains(*read) {
                    rmw.insert(*read, e);
                }
            }
        }
        rels.insert("rmw".into(), rmw);

        // --- Dependencies.
        let (addr, data, ctrl) = dependencies(exec);
        rels.insert("addr".into(), addr);
        rels.insert("data".into(), data);
        rels.insert("ctrl".into(), ctrl);

        // --- Scope relations.
        rels.insert("sr".into(), scoped_sr(exec));
        rels.insert("scta".into(), structural_scope(exec, Scope::Cta));
        rels.insert("ssg".into(), structural_scope(exec, Scope::Sg));
        rels.insert("swg".into(), structural_scope(exec, Scope::Wg));
        rels.insert("sqf".into(), structural_scope(exec, Scope::Qf));
        rels.insert("ssw".into(), ssw(exec));

        // --- Barrier synchronization.
        let syncbar = syncbar(exec);
        let sync_barrier = syncbar.inter(&rels["scta"].refl_closure());
        rels.insert("syncbar".into(), syncbar);
        rels.insert("sync_barrier".into(), sync_barrier);
        rels.insert("sync_fence".into(), sync_fence(exec));

        BaseInterpretation { sets, rels, n }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// A base set by `.cat` name.
    pub fn set(&self, name: &str) -> Option<&EventSet> {
        self.sets.get(name)
    }

    /// A base relation by `.cat` name.
    pub fn rel(&self, name: &str) -> Option<&Relation> {
        self.rels.get(name)
    }
}

/// addr/data/ctrl dependencies: reads feeding addresses, stored values,
/// and branch guards.
fn dependencies(exec: &Execution<'_>) -> (Relation, Relation, Relation) {
    let g = exec.graph;
    let n = g.n_events();
    let mut addr = Relation::empty(n);
    let mut data = Relation::empty(n);
    let mut ctrl = Relation::empty(n);
    for e in exec.executed.iter() {
        let ev = g.event(e);
        if let Some(a) = ev.kind.addr() {
            let mut rs = Vec::new();
            a.index.reads(&mut rs);
            for r in rs {
                if exec.executed.contains(r) {
                    addr.insert(r, e);
                }
            }
        }
        match &ev.kind {
            EventKind::Store { value, .. } | EventKind::RmwStore { value, .. } => {
                let mut rs = Vec::new();
                value.reads(&mut rs);
                if let EventKind::RmwStore {
                    cas_expected: Some(c),
                    ..
                } = &ev.kind
                {
                    c.reads(&mut rs);
                }
                for r in rs {
                    if exec.executed.contains(r) {
                        data.insert(r, e);
                    }
                }
            }
            _ => {}
        }
        // Control dependencies: reads in the guards dominating the block.
        for (guard, _) in g.guard_chain(ev.block) {
            let mut rs = Vec::new();
            guard.a.reads(&mut rs);
            guard.b.reads(&mut rs);
            for r in rs {
                if exec.executed.contains(r) && r != e {
                    ctrl.insert(r, e);
                }
            }
        }
    }
    (addr, data, ctrl)
}

/// The scope tag of an event, if it has one.
fn event_scope(tags: gpumc_ir::TagSet, arch: Arch) -> Option<Scope> {
    match arch {
        Arch::Ptx => [
            (Tag::CTA, Scope::Cta),
            (Tag::GPU, Scope::Gpu),
            (Tag::SYS, Scope::Sys),
        ]
        .into_iter()
        .find(|(t, _)| tags.contains(*t))
        .map(|(_, s)| s),
        Arch::Vulkan => [
            (Tag::SG, Scope::Sg),
            (Tag::WG, Scope::Wg),
            (Tag::QF, Scope::Qf),
            (Tag::DV, Scope::Dv),
        ]
        .into_iter()
        .find(|(t, _)| tags.contains(*t))
        .map(|(_, s)| s),
    }
}

/// PTX `sr`: each event's thread lies inside the other event's scope
/// instance (Table 3). Also used by the DPOR engine to decide which SC
/// fences commute (only `sr`-related fences contribute to `sync_fence`).
pub(crate) fn scoped_sr(exec: &Execution<'_>) -> Relation {
    let g = exec.graph;
    let n = g.n_events();
    let mut sr = Relation::empty(n);
    if g.arch != Arch::Ptx {
        return sr;
    }
    for a in exec.executed.iter() {
        for b in exec.executed.iter() {
            let (ea, eb) = (g.event(a), g.event(b));
            let (Some(ta), Some(tb)) = (ea.thread, eb.thread) else {
                continue;
            };
            let (Some(sa), Some(sb)) = (event_scope(ea.tags, g.arch), event_scope(eb.tags, g.arch))
            else {
                continue;
            };
            let pa = &g.threads()[ta].pos;
            let pb = &g.threads()[tb].pos;
            // thread(b) within scope instance of a, and vice versa.
            if pa.same_scope(pb, sa) && pb.same_scope(pa, sb) {
                sr.insert(a, b);
            }
        }
    }
    sr
}

/// Structural same-scope relation over events of threads sharing a scope
/// instance (used for `scta`, `ssg`, `swg`, `sqf`).
fn structural_scope(exec: &Execution<'_>, scope: Scope) -> Relation {
    let g = exec.graph;
    let n = g.n_events();
    let mut rel = Relation::empty(n);
    if scope.arch() != g.arch {
        return rel;
    }
    for a in exec.executed.iter() {
        for b in exec.executed.iter() {
            if a == b {
                continue;
            }
            let (Some(ta), Some(tb)) = (g.event(a).thread, g.event(b).thread) else {
                continue;
            };
            if g.threads()[ta].pos.same_scope(&g.threads()[tb].pos, scope) {
                rel.insert(a, b);
            }
        }
    }
    rel
}

/// Vulkan `ssw`: events of thread pairs marked system-synchronizes-with.
fn ssw(exec: &Execution<'_>) -> Relation {
    let g = exec.graph;
    let mut rel = Relation::empty(g.n_events());
    for &(t1, t2) in &g.ssw_pairs {
        for a in exec.executed.iter() {
            for b in exec.executed.iter() {
                if g.event(a).thread == Some(t1) && g.event(b).thread == Some(t2) {
                    rel.insert(a, b);
                }
            }
        }
    }
    rel
}

/// Barriers with equal (runtime) ids.
fn syncbar(exec: &Execution<'_>) -> Relation {
    let g = exec.graph;
    let mut rel = Relation::empty(g.n_events());
    let barriers: Vec<EventId> = exec
        .executed
        .iter()
        .filter(|&e| g.event(e).tags.contains(Tag::B))
        .collect();
    for &a in &barriers {
        for &b in &barriers {
            if exec.values[a.index()].is_some() && exec.values[a.index()] == exec.values[b.index()]
            {
                rel.insert(a, b);
            }
        }
    }
    rel
}

/// PTX `sync_fence`: the chosen total order over SC fences, restricted to
/// `sr`-related pairs (Table 4).
fn sync_fence(exec: &Execution<'_>) -> Relation {
    let g = exec.graph;
    let mut rel = Relation::empty(g.n_events());
    let sr = scoped_sr(exec);
    for (i, &a) in exec.fence_order.iter().enumerate() {
        for &b in exec.fence_order.iter().skip(i + 1) {
            if sr.contains(a, b) {
                rel.insert(a, b);
            }
        }
    }
    rel
}

/// Lists the thread leaves an execution committed to (utility shared with
/// the enumerator; re-exported for tests).
pub(crate) fn outcome_of(term: &UTerm) -> crate::execution::ThreadOutcome {
    match term {
        UTerm::End { .. } => crate::execution::ThreadOutcome::Completed,
        UTerm::Bound { spin: Some(s) } => {
            crate::execution::ThreadOutcome::Stuck { spin_read: s.read }
        }
        UTerm::Bound { spin: None } => crate::execution::ThreadOutcome::Incomplete,
        UTerm::Branch { .. } => unreachable!("leaf terminator expected"),
    }
}
