//! The explicit-state enumeration engine.
//!
//! Enumerates every well-defined behaviour `(X, rf, co)` of an event
//! graph (§2.2) and checks each against a `.cat` model. This is the
//! workspace's stand-in for the Alloy-based prototype tools: it is exact
//! on small programs and exponential in the number of events, which is
//! precisely the scaling contrast Figure 15 of the paper demonstrates.

use gpumc_cat::CatModel;
use gpumc_ir::{Arch, BlockId, EventGraph, EventId, EventKind, Tag, UTerm, Val};

use crate::base::outcome_of;
use crate::execution::Execution;
use crate::interp::{ConsistencyVerdict, Interpreter};
use crate::Relation;

/// Options controlling enumeration.
#[derive(Debug, Clone)]
pub struct EnumerateOptions {
    /// Hard cap on candidate behaviours (guards against blow-up).
    pub max_candidates: u64,
    /// Restricts the engine to straight-line programs, like the Alloy
    /// prototypes (no control flow, no loops).
    pub straight_line_only: bool,
    /// Maximal number of non-initial writes per location for which
    /// coherence orders are enumerated.
    pub max_writes_per_loc: usize,
}

impl Default for EnumerateOptions {
    fn default() -> EnumerateOptions {
        EnumerateOptions {
            max_candidates: 50_000_000,
            straight_line_only: false,
            max_writes_per_loc: 5,
        }
    }
}

/// A consistent behaviour together with its verdict (flags).
#[derive(Debug, Clone)]
pub struct Behavior<'g> {
    /// The concrete execution.
    pub execution: Execution<'g>,
    /// Interpreter verdict (always consistent; carries raised flags).
    pub verdict: ConsistencyVerdict,
}

/// Enumeration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumerateError {
    /// The program uses a feature this engine (configuration) rejects.
    Unsupported(String),
    /// An enumeration cap was exceeded.
    TooComplex(String),
}

impl std::fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnumerateError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EnumerateError::TooComplex(m) => write!(f, "too complex: {m}"),
        }
    }
}

impl std::error::Error for EnumerateError {}

/// Aggregate statistics of one enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Candidate behaviours constructed (before consistency checking).
    pub candidates: u64,
    /// Candidates that satisfied all consistency axioms.
    pub consistent: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum VState {
    White,
    Grey,
    Done,
}

/// Value computation over a fully-assigned `rf`, with cycle (thin-air)
/// rejection. Shared by the enumeration and DPOR engines so both reject
/// exactly the same unconstructible candidates.
pub(crate) struct ValCtx<'g> {
    g: &'g EventGraph,
    rf: Vec<Option<EventId>>,
    values: Vec<Option<u64>>,
    state: Vec<VState>,
}

impl<'g> ValCtx<'g> {
    pub(crate) fn new(g: &'g EventGraph, rf: Vec<Option<EventId>>) -> ValCtx<'g> {
        let n = g.n_events();
        ValCtx {
            g,
            rf,
            values: vec![None; n],
            state: vec![VState::White; n],
        }
    }

    /// Rebinds the context to a new rf assignment over the same graph,
    /// reusing all three buffers (no per-candidate allocation).
    pub(crate) fn reset(&mut self, rf: &[Option<EventId>]) {
        self.rf.clear();
        self.rf.extend_from_slice(rf);
        self.values.clear();
        self.values.resize(rf.len(), None);
        self.state.clear();
        self.state.resize(rf.len(), VState::White);
    }

    pub(crate) fn values(&self) -> &[Option<u64>] {
        &self.values
    }

    pub(crate) fn rf(&self) -> &[Option<EventId>] {
        &self.rf
    }

    pub(crate) fn value_of(&mut self, e: EventId) -> Option<u64> {
        match self.state[e.index()] {
            VState::Done => return self.values[e.index()],
            VState::Grey => return None, // value cycle (thin air): reject
            VState::White => {}
        }
        self.state[e.index()] = VState::Grey;
        // `g` is a plain `&'g EventGraph` copied out of `self`, so the
        // event borrow below does not pin `self` and the recursive
        // `eval` calls need no defensive `Val` clones.
        let g = self.g;
        let v = match &g.event(e).kind {
            EventKind::Init { value, .. } => Some(*value),
            EventKind::Load { .. } | EventKind::RmwLoad { .. } => {
                let w = self.rf[e.index()]?;
                self.value_of(w)
            }
            EventKind::Store { value, .. } | EventKind::RmwStore { value, .. } => self.eval(value),
            EventKind::Barrier { id, .. } => self.eval(id),
            EventKind::Fence(_) => Some(0),
        };
        self.state[e.index()] = VState::Done;
        self.values[e.index()] = v;
        v
    }

    pub(crate) fn eval(&mut self, v: &Val) -> Option<u64> {
        match v {
            Val::Const(c) => Some(*c),
            Val::Read(e) => self.value_of(*e),
            Val::Bin(op, a, b) => {
                let (x, y) = (self.eval(a)?, self.eval(b)?);
                Some(Val::apply(*op, x, y))
            }
        }
    }
}

/// Enumerates all consistent behaviours, invoking `visit` for each.
///
/// # Errors
///
/// Fails when the program exceeds the configured caps, or (with
/// `straight_line_only`) uses control flow.
pub fn enumerate<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &EnumerateOptions,
    mut visit: impl FnMut(&Behavior<'g>),
) -> Result<EnumStats, EnumerateError> {
    let mut e = Enumerator {
        graph,
        interp: Interpreter::new(model),
        needs_fence_order: graph.arch == Arch::Ptx
            && model
                .referenced_base_rels()
                .iter()
                .any(|r| r == "sync_fence"),
        opts,
        stats: EnumStats::default(),
        visit: &mut visit,
    };
    e.run()?;
    Ok(e.stats)
}

/// Convenience wrapper collecting all consistent behaviours.
///
/// # Errors
///
/// See [`enumerate`].
pub fn enumerate_consistent<'g>(
    graph: &'g EventGraph,
    model: &CatModel,
    opts: &EnumerateOptions,
) -> Result<Vec<Behavior<'g>>, EnumerateError> {
    let mut out = Vec::new();
    enumerate(graph, model, opts, |b| out.push(b.clone()))?;
    Ok(out)
}

struct Enumerator<'g, 'a, F: FnMut(&Behavior<'g>)> {
    graph: &'g EventGraph,
    interp: Interpreter<'a>,
    needs_fence_order: bool,
    opts: &'a EnumerateOptions,
    stats: EnumStats,
    visit: &'a mut F,
}

impl<'g, 'a, F: FnMut(&Behavior<'g>)> Enumerator<'g, 'a, F> {
    fn run(&mut self) -> Result<(), EnumerateError> {
        let g = self.graph;
        if self.opts.straight_line_only {
            let has_cf = g
                .blocks()
                .iter()
                .any(|b| matches!(b.term, UTerm::Branch { .. } | UTerm::Bound { .. }));
            if has_cf {
                return Err(EnumerateError::Unsupported(
                    "control-flow instructions (straight-line engine)".into(),
                ));
            }
        }
        // Per-thread leaves.
        let leaves: Vec<Vec<BlockId>> = (0..g.threads().len())
            .map(|t| g.thread_leaves(t).into_iter().map(|(b, _)| b).collect())
            .collect();
        let mut combo = vec![0usize; leaves.len()];
        loop {
            let chosen: Vec<BlockId> = combo.iter().zip(&leaves).map(|(&i, l)| l[i]).collect();
            self.explore_leaf_combo(&chosen)?;
            // Odometer.
            let mut k = 0;
            loop {
                if k == combo.len() {
                    return Ok(());
                }
                combo[k] += 1;
                if combo[k] < leaves[k].len() {
                    break;
                }
                combo[k] = 0;
                k += 1;
            }
        }
    }

    fn explore_leaf_combo(&mut self, leaves: &[BlockId]) -> Result<(), EnumerateError> {
        let g = self.graph;
        // Executed blocks: init block plus all ancestors of each leaf.
        let mut exec_blocks = vec![0u32];
        for &leaf in leaves {
            let mut cur = leaf;
            loop {
                exec_blocks.push(cur);
                match g.block(cur).parent {
                    Some((p, _)) => cur = p,
                    None => break,
                }
            }
        }
        let mut events: Vec<EventId> = exec_blocks
            .iter()
            .flat_map(|&b| g.block(b).events.iter().copied())
            .collect();
        events.sort_unstable();
        let reads: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|&e| g.event(e).tags.contains(Tag::R))
            .collect();
        let writes: Vec<EventId> = events
            .iter()
            .copied()
            .filter(|&e| g.event(e).tags.contains(Tag::W))
            .collect();
        let mut rf: Vec<Option<EventId>> = vec![None; g.n_events()];
        self.assign_rf(leaves, &events, &reads, &writes, 0, &mut rf)
    }

    fn assign_rf(
        &mut self,
        leaves: &[BlockId],
        events: &[EventId],
        reads: &[EventId],
        writes: &[EventId],
        idx: usize,
        rf: &mut Vec<Option<EventId>>,
    ) -> Result<(), EnumerateError> {
        if idx == reads.len() {
            return self.finish_rf(leaves, events, writes, rf);
        }
        let r = reads[idx];
        for &w in writes {
            if self.graph.may_alias(r, w) {
                rf[r.index()] = Some(w);
                self.assign_rf(leaves, events, reads, writes, idx + 1, rf)?;
            }
        }
        rf[r.index()] = None;
        Ok(())
    }

    /// Values, addresses, guard checks; then enumerate co / fence orders.
    fn finish_rf(
        &mut self,
        leaves: &[BlockId],
        events: &[EventId],
        writes: &[EventId],
        rf: &[Option<EventId>],
    ) -> Result<(), EnumerateError> {
        let g = self.graph;
        let n = g.n_events();
        // --- Value computation with cycle rejection.
        let mut ctx = ValCtx::new(g, rf.to_vec());
        for &e in events {
            if ctx.value_of(e).is_none() && !matches!(g.event(e).kind, EventKind::Fence(_)) {
                return Ok(()); // unconstructible values: reject candidate
            }
        }
        // --- Addresses.
        let mut addrs = vec![None; n];
        let mut vaddrs = vec![None; n];
        for &e in events {
            let (vloc, idxv) = match &g.event(e).kind {
                EventKind::Init { loc, index, .. } => (*loc, Some(u64::from(*index))),
                k => match k.addr() {
                    Some(a) => (a.loc, ctx.eval(&a.index)),
                    None => continue,
                },
            };
            let Some(i) = idxv else { return Ok(()) };
            if i >= u64::from(g.memory[g.physical_root(vloc).index()].size) {
                return Ok(()); // out-of-bounds access: reject candidate
            }
            vaddrs[e.index()] = Some((vloc, i));
            addrs[e.index()] = Some((g.physical_root(vloc), i));
        }
        // --- CAS success: drop failed RMW writes from the executed set.
        let mut final_events: Vec<EventId> = Vec::with_capacity(events.len());
        for &e in events {
            if let EventKind::RmwStore {
                read,
                cas_expected: Some(exp),
                ..
            } = &g.event(e).kind
            {
                let got = ctx.value_of(*read);
                let want = ctx.eval(exp);
                if got.is_none() || want.is_none() || got != want {
                    continue; // failed CAS: no write event
                }
            }
            final_events.push(e);
        }
        // --- rf validity: source executed, same physical address.
        for &e in &final_events {
            if g.event(e).tags.contains(Tag::R) {
                let w = rf[e.index()].expect("assigned");
                if !final_events.contains(&w) {
                    return Ok(());
                }
                if addrs[e.index()].is_none() || addrs[e.index()] != addrs[w.index()] {
                    return Ok(());
                }
            }
        }
        // --- Guard consistency along each chosen path.
        for &leaf in leaves {
            let mut cur = leaf;
            while let Some((p, polarity)) = g.block(cur).parent {
                if let UTerm::Branch { guard, .. } = &g.block(p).term {
                    let (Some(a), Some(b)) = (ctx.eval(&guard.a), ctx.eval(&guard.b)) else {
                        return Ok(());
                    };
                    if guard.eval(a, b) != polarity {
                        return Ok(());
                    }
                }
                cur = p;
            }
        }
        // --- Coherence enumeration per location.
        let exec_writes: Vec<EventId> = writes
            .iter()
            .copied()
            .filter(|w| final_events.contains(w))
            .collect();
        let mut groups: Vec<(EventId, Vec<EventId>)> = Vec::new(); // (init, others)
        for &w in &exec_writes {
            if g.event(w).tags.contains(Tag::IW) {
                groups.push((w, Vec::new()));
            }
        }
        for &w in &exec_writes {
            if g.event(w).tags.contains(Tag::IW) {
                continue;
            }
            let a = addrs[w.index()].expect("write has address");
            let slot = groups
                .iter_mut()
                .find(|(iw, _)| addrs[iw.index()] == Some(a));
            match slot {
                Some((_, v)) => v.push(w),
                None => {
                    // No init event for a dynamic location cannot happen:
                    // every physical element has an init write.
                    return Ok(());
                }
            }
        }
        for (_, others) in &groups {
            if others.len() > self.opts.max_writes_per_loc {
                return Err(EnumerateError::TooComplex(format!(
                    "{} writes to one location (cap {})",
                    others.len(),
                    self.opts.max_writes_per_loc
                )));
            }
        }
        // Enumerate per-location orders, then take the cartesian product.
        let per_loc: Vec<Vec<Relation>> = groups
            .iter()
            .map(|(iw, others)| location_orders(g, n, *iw, others))
            .collect();
        let mut co_choice = vec![0usize; per_loc.len()];
        loop {
            let mut co = Relation::empty(n);
            for (k, &c) in co_choice.iter().enumerate() {
                co.union_with(&per_loc[k][c]);
            }
            self.with_fence_orders(
                leaves,
                &final_events,
                rf,
                ctx.values(),
                &addrs,
                &vaddrs,
                &co,
            )?;
            let mut k = 0;
            loop {
                if k == co_choice.len() {
                    return Ok(());
                }
                co_choice[k] += 1;
                if co_choice[k] < per_loc[k].len() {
                    break;
                }
                co_choice[k] = 0;
                k += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn with_fence_orders(
        &mut self,
        leaves: &[BlockId],
        final_events: &[EventId],
        rf: &[Option<EventId>],
        values: &[Option<u64>],
        addrs: &[Option<(gpumc_ir::LocId, u64)>],
        vaddrs: &[Option<(gpumc_ir::LocId, u64)>],
        co: &Relation,
    ) -> Result<(), EnumerateError> {
        let g = self.graph;
        let sc_fences: Vec<EventId> = if self.needs_fence_order {
            final_events
                .iter()
                .copied()
                .filter(|&e| g.event(e).tags.contains(Tag::F) && g.event(e).tags.contains(Tag::SC))
                .collect()
        } else {
            Vec::new()
        };
        if sc_fences.len() > 6 {
            return Err(EnumerateError::TooComplex(format!(
                "{} SC fences to order",
                sc_fences.len()
            )));
        }
        let mut perm = sc_fences.clone();
        permute(&mut perm, 0, &mut |order| {
            self.check_candidate(leaves, final_events, rf, values, addrs, vaddrs, co, order)
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn check_candidate(
        &mut self,
        leaves: &[BlockId],
        final_events: &[EventId],
        rf: &[Option<EventId>],
        values: &[Option<u64>],
        addrs: &[Option<(gpumc_ir::LocId, u64)>],
        vaddrs: &[Option<(gpumc_ir::LocId, u64)>],
        co: &Relation,
        fence_order: &[EventId],
    ) -> Result<(), EnumerateError> {
        let g = self.graph;
        self.stats.candidates += 1;
        if self.stats.candidates > self.opts.max_candidates {
            return Err(EnumerateError::TooComplex(format!(
                "more than {} candidate behaviours",
                self.opts.max_candidates
            )));
        }
        let mut execution = Execution::new(g);
        execution.leaf = leaves.to_vec();
        for &e in final_events {
            execution.executed.insert(e);
        }
        execution.rf = rf.to_vec();
        execution.co = co.clone();
        execution.fence_order = fence_order.to_vec();
        execution.values = values.to_vec();
        execution.addrs = addrs.to_vec();
        execution.vaddrs = vaddrs.to_vec();
        execution.outcomes = leaves
            .iter()
            .map(|&l| outcome_of(&g.block(l).term))
            .collect();
        // The program-level filter restricts considered behaviours.
        if let Some(filter) = &g.filter {
            if execution.eval_condition(filter) != Some(true) {
                return Ok(());
            }
        }
        let verdict = self.interp.check(&execution);
        if verdict.consistent {
            self.stats.consistent += 1;
            (self.visit)(&Behavior { execution, verdict });
        }
        Ok(())
    }
}

/// All coherence orders for one location: `iw` first, then every strict
/// partial order (PTX) or total order (Vulkan) over the other writes,
/// transitively closed. Shared with the DPOR engine.
pub(crate) fn location_orders(
    g: &EventGraph,
    n: usize,
    iw: EventId,
    others: &[EventId],
) -> Vec<Relation> {
    let mut base = Relation::empty(n);
    for &w in others {
        base.insert(iw, w);
    }
    let k = others.len();
    let mut out = Vec::new();
    match g.arch {
        Arch::Vulkan => {
            // Total orders: permutations.
            let mut perm = others.to_vec();
            let _ = permute(&mut perm, 0, &mut |order| {
                let mut r = base.clone();
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        r.insert(order[i], order[j]);
                    }
                }
                out.push(r);
                Ok::<(), std::convert::Infallible>(())
            });
        }
        Arch::Ptx => {
            // Strict partial orders: for each unordered pair pick
            // <, >, or unrelated; keep the transitive ones.
            let pairs: Vec<(usize, usize)> = (0..k)
                .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
                .collect();
            let total = 3usize.pow(pairs.len() as u32);
            'combo: for mut code in 0..total {
                let mut r = base.clone();
                for &(i, j) in &pairs {
                    match code % 3 {
                        0 => {}
                        1 => r.insert(others[i], others[j]),
                        _ => r.insert(others[j], others[i]),
                    }
                    code /= 3;
                }
                // Transitivity check (antisymmetry holds by construction).
                let tc = r.transitive_closure();
                if tc != r {
                    continue 'combo;
                }
                out.push(r);
            }
        }
    }
    if out.is_empty() {
        out.push(base);
    }
    out
}

/// Heap-style permutation enumeration with a fallible callback.
pub(crate) fn permute<E>(
    items: &mut [EventId],
    k: usize,
    f: &mut impl FnMut(&[EventId]) -> Result<(), E>,
) -> Result<(), E> {
    if k == items.len() {
        return f(items);
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f)?;
        items.swap(k, i);
    }
    Ok(())
}
