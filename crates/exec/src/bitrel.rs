//! Dense bit-set sets of events and binary relations over them.

use gpumc_ir::EventId;

const WORD: usize = 64;

fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD)
}

/// A set of events over a fixed universe of `n` events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSet {
    n: usize,
    words: Vec<u64>,
}

impl EventSet {
    /// The empty set over a universe of `n` events.
    pub fn empty(n: usize) -> EventSet {
        EventSet {
            n,
            words: vec![0; words_for(n)],
        }
    }

    /// The full set over a universe of `n` events.
    pub fn full(n: usize) -> EventSet {
        let mut s = EventSet::empty(n);
        for i in 0..n {
            s.insert(EventId(i as u32));
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts an event.
    ///
    /// # Panics
    ///
    /// Panics if the event id is outside the universe.
    pub fn insert(&mut self, e: EventId) {
        assert!(e.index() < self.n, "event outside universe");
        self.words[e.index() / WORD] |= 1 << (e.index() % WORD);
    }

    /// Removes an event.
    pub fn remove(&mut self, e: EventId) {
        if e.index() < self.n {
            self.words[e.index() / WORD] &= !(1 << (e.index() % WORD));
        }
    }

    /// Tests membership.
    pub fn contains(&self, e: EventId) -> bool {
        e.index() < self.n && self.words[e.index() / WORD] >> (e.index() % WORD) & 1 == 1
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.n)
            .map(|i| EventId(i as u32))
            .filter(move |&e| self.contains(e))
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &EventSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set union.
    pub fn union(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place intersection.
    pub fn inter_with(&mut self, other: &EventSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Set intersection.
    pub fn inter(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.inter_with(other);
        out
    }

    /// In-place difference.
    pub fn diff_with(&mut self, other: &EventSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Set difference.
    pub fn diff(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.diff_with(other);
        out
    }
}

/// A binary relation over a fixed universe of `n` events, stored as a
/// dense `n × n` bit matrix.
#[derive(Debug, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    row_words: usize,
    words: Vec<u64>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        Relation {
            n: self.n,
            row_words: self.row_words,
            words: self.words.clone(),
        }
    }

    fn clone_from(&mut self, source: &Relation) {
        self.n = source.n;
        self.row_words = source.row_words;
        self.words.clone_from(&source.words);
    }
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Relation {
        let row_words = words_for(n);
        Relation {
            n,
            row_words,
            words: vec![0; row_words * n],
        }
    }

    /// The identity relation over `n` events.
    pub fn identity(n: usize) -> Relation {
        let mut r = Relation::empty(n);
        for i in 0..n {
            r.insert(EventId(i as u32), EventId(i as u32));
        }
        r
    }

    /// The identity restricted to a set.
    pub fn identity_on(s: &EventSet) -> Relation {
        let mut r = Relation::empty(s.universe());
        for e in s.iter() {
            r.insert(e, e);
        }
        r
    }

    /// The cartesian product of two sets.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes.
    pub fn cross(a: &EventSet, b: &EventSet) -> Relation {
        assert_eq!(a.universe(), b.universe(), "universe mismatch");
        let mut r = Relation::empty(a.universe());
        for i in a.iter() {
            let row = &mut r.words[i.index() * r.row_words..(i.index() + 1) * r.row_words];
            for (w, bw) in row.iter_mut().zip(&b.words) {
                *w |= bw;
            }
        }
        r
    }

    /// Builds a relation from explicit pairs.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (EventId, EventId)>) -> Relation {
        let mut r = Relation::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Clears to the empty relation over `n` events, reusing the word
    /// buffer when it is already large enough.
    pub fn clear_resize(&mut self, n: usize) {
        self.n = n;
        self.row_words = words_for(n);
        self.words.clear();
        self.words.resize(self.row_words * n, 0);
    }

    /// Adds a pair.
    ///
    /// # Panics
    ///
    /// Panics if either id is outside the universe.
    pub fn insert(&mut self, a: EventId, b: EventId) {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "event outside universe"
        );
        self.words[a.index() * self.row_words + b.index() / WORD] |= 1 << (b.index() % WORD);
    }

    /// Tests membership.
    pub fn contains(&self, a: EventId, b: EventId) -> bool {
        a.index() < self.n
            && b.index() < self.n
            && self.words[a.index() * self.row_words + b.index() / WORD] >> (b.index() % WORD) & 1
                == 1
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over all pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n)
                .filter(move |&j| self.contains(EventId(i as u32), EventId(j as u32)))
                .map(move |j| (EventId(i as u32), EventId(j as u32)))
        })
    }

    fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.row_words..(i + 1) * self.row_words]
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Relation) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Relation union.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place intersection.
    pub fn inter_with(&mut self, other: &Relation) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Relation intersection.
    pub fn inter(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.inter_with(other);
        out
    }

    /// In-place difference.
    pub fn diff_with(&mut self, other: &Relation) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Relation difference.
    pub fn diff(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.diff_with(other);
        out
    }

    /// Relation composition `self ; other`.
    pub fn compose(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "universe mismatch");
        let mut out = Relation::empty(self.n);
        for i in 0..self.n {
            let row_i = self.row(i);
            let out_row = &mut out.words[i * out.row_words..(i + 1) * out.row_words];
            for (wi, &w) in row_i.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let j = wi * WORD + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let row_j = other.row(j);
                    for (o, &b) in out_row.iter_mut().zip(row_j) {
                        *o |= b;
                    }
                }
            }
        }
        out
    }

    /// Relation inverse.
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, b) in self.iter() {
            out.insert(b, a);
        }
        out
    }

    /// Transitive closure (`r+`).
    pub fn transitive_closure(&self) -> Relation {
        let mut tc = self.clone();
        tc.transitive_close();
        tc
    }

    /// Closes the relation transitively in place.
    ///
    /// Word-level Warshall: for each intermediate `k`, rows reaching
    /// `k` absorb row `k` with one bulk OR. Unlike the former
    /// repeated-squaring implementation this allocates only a single
    /// scratch row, regardless of density.
    pub fn transitive_close(&mut self) {
        let mut via = vec![0u64; self.row_words];
        for k in 0..self.n {
            via.copy_from_slice(self.row(k));
            let (kw, kb) = (k / WORD, k % WORD);
            for i in 0..self.n {
                let row = &mut self.words[i * self.row_words..(i + 1) * self.row_words];
                if row[kw] >> kb & 1 == 1 {
                    for (o, &b) in row.iter_mut().zip(&via) {
                        *o |= b;
                    }
                }
            }
        }
    }

    /// Reflexive-transitive closure (`r*`) over the full universe.
    pub fn refl_transitive_closure(&self) -> Relation {
        self.transitive_closure().union(&Relation::identity(self.n))
    }

    /// Reflexive closure (`r?`).
    pub fn refl_closure(&self) -> Relation {
        self.union(&Relation::identity(self.n))
    }

    /// Whether the relation contains a pair `(e, e)`.
    pub fn has_reflexive_pair(&self) -> bool {
        (0..self.n).any(|i| self.contains(EventId(i as u32), EventId(i as u32)))
    }

    /// Whether the relation contains a cycle.
    ///
    /// Three-colour DFS over the adjacency rows — `O(n + edges)` and
    /// allocation-light, versus the `O(n³/64)` closure this used to
    /// build. Acyclicity axioms sit on the exploration hot path, so
    /// the difference is measurable on large executions.
    pub fn is_cyclic(&self) -> bool {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let mut colour = vec![WHITE; self.n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..self.n {
            if colour[start] != WHITE {
                continue;
            }
            colour[start] = GREY;
            stack.push((start, 0));
            while let Some(top) = stack.last_mut() {
                let (u, from) = *top;
                match self.next_successor(u, from) {
                    Some(v) => {
                        top.1 = v + 1;
                        match colour[v] {
                            GREY => return true,
                            WHITE => {
                                colour[v] = GREY;
                                stack.push((v, 0));
                            }
                            _ => {}
                        }
                    }
                    None => {
                        colour[u] = BLACK;
                        stack.pop();
                    }
                }
            }
        }
        false
    }

    /// First successor of `u` with id `>= from`, scanning whole words.
    fn next_successor(&self, u: usize, from: usize) -> Option<usize> {
        if from >= self.n {
            return None;
        }
        let row = self.row(u);
        let mut wi = from / WORD;
        let mut w = row[wi] & (!0u64 << (from % WORD));
        loop {
            if w != 0 {
                return Some(wi * WORD + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= self.row_words {
                return None;
            }
            w = row[wi];
        }
    }

    /// The domain of the relation.
    pub fn domain(&self) -> EventSet {
        let mut s = EventSet::empty(self.n);
        for i in 0..self.n {
            if self.row(i).iter().any(|&w| w != 0) {
                s.insert(EventId(i as u32));
            }
        }
        s
    }

    /// The range of the relation: the OR of every row.
    pub fn range(&self) -> EventSet {
        let mut s = EventSet::empty(self.n);
        for i in 0..self.n {
            for (o, &w) in s.words.iter_mut().zip(self.row(i)) {
                *o |= w;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EventId {
        EventId(i)
    }

    #[test]
    fn set_basics() {
        let mut s = EventSet::empty(100);
        assert!(s.is_empty());
        s.insert(e(3));
        s.insert(e(77));
        assert!(s.contains(e(3)) && s.contains(e(77)));
        assert!(!s.contains(e(4)));
        assert_eq!(s.len(), 2);
        s.remove(e(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![e(77)]);
    }

    #[test]
    fn set_algebra() {
        let mut a = EventSet::empty(10);
        let mut b = EventSet::empty(10);
        a.insert(e(1));
        a.insert(e(2));
        b.insert(e(2));
        b.insert(e(3));
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.inter(&b).iter().collect::<Vec<_>>(), vec![e(2)]);
        assert_eq!(a.diff(&b).iter().collect::<Vec<_>>(), vec![e(1)]);
        assert_eq!(EventSet::full(10).len(), 10);
    }

    #[test]
    fn relation_insert_iter() {
        let r = Relation::from_pairs(5, [(e(0), e(1)), (e(1), e(2))]);
        assert!(r.contains(e(0), e(1)));
        assert!(!r.contains(e(1), e(0)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn composition() {
        let r = Relation::from_pairs(5, [(e(0), e(1)), (e(3), e(4))]);
        let s = Relation::from_pairs(5, [(e(1), e(2)), (e(4), e(0))]);
        let c = r.compose(&s);
        assert!(c.contains(e(0), e(2)));
        assert!(c.contains(e(3), e(0)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn composition_spanning_word_boundaries() {
        let n = 130;
        let r = Relation::from_pairs(n, [(e(0), e(65)), (e(0), e(129))]);
        let s = Relation::from_pairs(n, [(e(65), e(128)), (e(129), e(1))]);
        let c = r.compose(&s);
        assert!(c.contains(e(0), e(128)));
        assert!(c.contains(e(0), e(1)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn inverse_roundtrip() {
        let r = Relation::from_pairs(6, [(e(0), e(5)), (e(2), e(3))]);
        let inv = r.inverse();
        assert!(inv.contains(e(5), e(0)));
        assert!(inv.contains(e(3), e(2)));
        assert_eq!(inv.inverse(), r);
    }

    #[test]
    fn transitive_closure_chain() {
        let r = Relation::from_pairs(5, [(e(0), e(1)), (e(1), e(2)), (e(2), e(3))]);
        let tc = r.transitive_closure();
        assert!(tc.contains(e(0), e(3)));
        assert!(tc.contains(e(1), e(3)));
        assert!(!tc.contains(e(3), e(0)));
        assert_eq!(tc.len(), 6);
        assert!(!tc.has_reflexive_pair());
        assert!(!r.is_cyclic());
    }

    #[test]
    fn cycle_detection() {
        let r = Relation::from_pairs(4, [(e(0), e(1)), (e(1), e(2)), (e(2), e(0))]);
        assert!(r.is_cyclic());
        assert!(r.transitive_closure().contains(e(0), e(0)));
    }

    #[test]
    fn closures() {
        let r = Relation::from_pairs(3, [(e(0), e(1))]);
        assert!(r.refl_closure().contains(e(2), e(2)));
        assert!(r.refl_transitive_closure().contains(e(0), e(0)));
        assert!(r.refl_transitive_closure().contains(e(0), e(1)));
    }

    #[test]
    fn cross_and_identity_on() {
        let mut a = EventSet::empty(4);
        a.insert(e(0));
        a.insert(e(1));
        let mut b = EventSet::empty(4);
        b.insert(e(2));
        let cr = Relation::cross(&a, &b);
        assert_eq!(cr.len(), 2);
        assert!(cr.contains(e(0), e(2)) && cr.contains(e(1), e(2)));
        let idr = Relation::identity_on(&a);
        assert!(idr.contains(e(0), e(0)));
        assert!(!idr.contains(e(2), e(2)));
        assert_eq!(idr.len(), 2);
    }

    #[test]
    fn domain_range() {
        let r = Relation::from_pairs(6, [(e(0), e(5)), (e(2), e(3))]);
        assert_eq!(r.domain().iter().collect::<Vec<_>>(), vec![e(0), e(2)]);
        assert_eq!(r.range().iter().collect::<Vec<_>>(), vec![e(3), e(5)]);
    }

    #[test]
    fn closure_and_cycle_match_reference_on_samples() {
        // Warshall closure and the DFS cycle check agree with the
        // naive repeated-squaring reference on pseudo-random digraphs,
        // including universes spanning multiple words.
        let squaring = |r: &Relation| {
            let mut tc = r.clone();
            loop {
                let next = tc.union(&tc.compose(&tc));
                if next == tc {
                    return tc;
                }
                tc = next;
            }
        };
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u32
        };
        for n in [1usize, 7, 20, 70, 130] {
            for density in [1usize, 3] {
                let mut r = Relation::empty(n);
                for _ in 0..(n * density / 2 + 1) {
                    r.insert(e(next() % n as u32), e(next() % n as u32));
                }
                let tc = squaring(&r);
                assert_eq!(r.transitive_closure(), tc, "n={n} density={density}");
                assert_eq!(
                    r.is_cyclic(),
                    tc.has_reflexive_pair(),
                    "n={n} density={density}"
                );
            }
        }
        assert!(!Relation::empty(0).is_cyclic());
        assert_eq!(Relation::empty(0).transitive_closure(), Relation::empty(0));
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let r = Relation::from_pairs(70, [(e(0), e(65)), (e(3), e(4)), (e(65), e(3))]);
        let s = Relation::from_pairs(70, [(e(0), e(65)), (e(65), e(3)), (e(5), e(6))]);
        let mut ri = r.clone();
        ri.inter_with(&s);
        assert_eq!(ri, r.inter(&s));
        let mut rd = r.clone();
        rd.diff_with(&s);
        assert_eq!(rd, r.diff(&s));
        let mut scratch = Relation::empty(3);
        scratch.clone_from(&r);
        assert_eq!(scratch, r);

        let a = EventSet::full(70).diff(&{
            let mut d = EventSet::empty(70);
            d.insert(e(65));
            d
        });
        let mut b = EventSet::empty(70);
        b.insert(e(1));
        b.insert(e(65));
        let mut ai = a.clone();
        ai.inter_with(&b);
        assert_eq!(ai, a.inter(&b));
        let mut ad = a.clone();
        ad.diff_with(&b);
        assert_eq!(ad, a.diff(&b));
    }

    #[test]
    fn range_is_row_or() {
        // Word-level range agrees with a per-pair reference.
        let r = Relation::from_pairs(
            130,
            [(e(0), e(129)), (e(1), e(64)), (e(2), e(64)), (e(99), e(0))],
        );
        let mut expect = EventSet::empty(130);
        for (_, b) in r.iter() {
            expect.insert(b);
        }
        assert_eq!(r.range(), expect);
    }

    #[test]
    fn algebra_laws_on_samples() {
        // (r ; s)^-1 == s^-1 ; r^-1 on a pseudo-random sample.
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u32
        };
        for _ in 0..10 {
            let n = 20;
            let mut r = Relation::empty(n);
            let mut s = Relation::empty(n);
            for _ in 0..30 {
                r.insert(e(next() % n as u32), e(next() % n as u32));
                s.insert(e(next() % n as u32), e(next() % n as u32));
            }
            assert_eq!(r.compose(&s).inverse(), s.inverse().compose(&r.inverse()));
            // De Morgan-ish: (r | s) & t == (r & t) | (s & t)
            let mut t = Relation::empty(n);
            for _ in 0..40 {
                t.insert(e(next() % n as u32), e(next() % n as u32));
            }
            assert_eq!(r.union(&s).inter(&t), r.inter(&t).union(&s.inter(&t)));
        }
    }
}
