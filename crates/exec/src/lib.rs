//! Execution graphs, relation algebra, and the explicit-state engine.
//!
//! This crate gives concrete semantics to programs and `.cat` models:
//!
//! * [`EventSet`] / [`Relation`] — dense bit-set sets of events and
//!   binary relations over them, with the full `.cat` operator algebra
//!   (union, intersection, difference, composition, inverse, closures);
//! * [`Execution`] — a candidate behaviour `(X, rf, co)` of §2.2: the
//!   executed events, the read-from relation, the coherence order, plus
//!   the runtime-chosen `sync_fence` order of PTX;
//! * [`Interpreter`] — evaluates a resolved [`gpumc_cat::CatModel`] over
//!   an execution, checking consistency axioms and flagged detectors
//!   (data races);
//! * [`enumerate`] — the explicit-state engine: enumerates all
//!   well-defined executions of an event graph and filters them through
//!   the interpreter. This is our stand-in for the Alloy-based tools the
//!   paper compares against (and deliberately shares their exponential
//!   scaling, reproduced in Figure 15);
//! * [`dpor_explore`] — the stateless DPOR engine: explores behaviours
//!   incrementally and prunes redundant interleavings with rf/co-aware
//!   partial-order reduction plus sleep sets over SC fences, accepting
//!   the same behaviour set as [`enumerate`] while scaling past its toy
//!   bounds and handling branching programs.
//!
//! The SAT engine in `gpumc-encode` must agree with these engines on
//! every behaviour — that cross-validation mirrors the paper's Table 5.

mod base;
mod bitrel;
mod dpor;
mod dpor_par;
mod enumerate;
mod execution;
mod interp;

pub use base::BaseInterpretation;
pub use bitrel::{EventSet, Relation};
pub use dpor::{dpor_explore, dpor_explore_interruptible, DporError, DporOptions, DporStats};
pub use dpor_par::{dpor_explore_parallel, DporParReport};
pub use enumerate::{enumerate, enumerate_consistent, Behavior, EnumerateError, EnumerateOptions};
pub use execution::{Execution, ThreadOutcome};
pub use interp::{ConsistencyVerdict, FlagHit, Interpreter};
