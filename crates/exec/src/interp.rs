//! Evaluating `.cat` models over concrete executions.

use gpumc_cat::{Axiom, AxiomKind, CatModel, DefBody, RelExpr, SetExpr};
use gpumc_ir::EventId;

use crate::base::BaseInterpretation;
use crate::bitrel::{EventSet, Relation};
use crate::execution::Execution;

/// The result of checking an execution against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyVerdict {
    /// Whether all (non-flagged) axioms hold.
    pub consistent: bool,
    /// The label of the first failing axiom, when inconsistent.
    pub failed_axiom: Option<String>,
    /// Raised flags (e.g. data races), only meaningful when consistent.
    pub flags: Vec<FlagHit>,
}

impl ConsistencyVerdict {
    /// Whether a flag with the given label was raised.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f.name == name)
    }
}

/// A raised flag and its witnessing pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagHit {
    /// Flag label (e.g. `dr`).
    pub name: String,
    /// Pairs of the flagged relation (capped).
    pub pairs: Vec<(EventId, EventId)>,
}

/// A `.cat` model evaluator over concrete executions.
///
/// # Example
///
/// ```no_run
/// # fn graph() -> gpumc_ir::EventGraph { unimplemented!() }
/// let model = gpumc_cat::parse("let fr = rf^-1; co\nacyclic po | rf | fr | co").unwrap();
/// let graph = graph();
/// let exec = gpumc_exec::Execution::new(&graph);
/// let verdict = gpumc_exec::Interpreter::new(&model).check(&exec);
/// println!("consistent: {}", verdict.consistent);
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    model: &'m CatModel,
}

#[derive(Debug, Clone)]
enum Value {
    Set(EventSet),
    Rel(Relation),
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter for a model.
    pub fn new(model: &'m CatModel) -> Interpreter<'m> {
        Interpreter { model }
    }

    /// Checks an execution: evaluates all definitions and axioms.
    pub fn check(&self, exec: &Execution<'_>) -> ConsistencyVerdict {
        let base = BaseInterpretation::compute(exec);
        self.check_with_base(&base)
    }

    /// Checks using a precomputed base interpretation.
    pub fn check_with_base(&self, base: &BaseInterpretation) -> ConsistencyVerdict {
        let defs = self.eval_defs(base);
        let mut verdict = ConsistencyVerdict {
            consistent: true,
            failed_axiom: None,
            flags: Vec::new(),
        };
        for (i, axiom) in self.model.axioms().iter().enumerate() {
            let rel = eval_rel(&axiom.expr, base, &defs);
            let holds = axiom_holds(axiom, &rel);
            if axiom.flagged {
                if holds {
                    let pairs: Vec<(EventId, EventId)> = rel.iter().take(16).collect();
                    verdict.flags.push(FlagHit {
                        name: axiom.label(i),
                        pairs,
                    });
                }
            } else if !holds && verdict.consistent {
                verdict.consistent = false;
                verdict.failed_axiom = Some(axiom.label(i));
            }
        }
        if !verdict.consistent {
            verdict.flags.clear();
        }
        verdict
    }

    /// Checks only the axioms at the given indices, returning whether all
    /// of them hold. The DPOR engine uses this to prune partially-built
    /// candidates: an axiom that is monotone in the still-growing inputs
    /// (`co`, `sync_fence`) and already fails on a partial execution fails
    /// on every completion of it.
    pub fn check_axioms(&self, exec: &Execution<'_>, indices: &[usize]) -> bool {
        let base = BaseInterpretation::compute(exec);
        let defs = self.eval_defs(&base);
        let axioms = self.model.axioms();
        indices.iter().all(|&i| {
            let axiom = &axioms[i];
            axiom_holds(axiom, &eval_rel(&axiom.expr, &base, &defs))
        })
    }

    /// Evaluates a named definition (useful for tests and diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the name is not defined or is set-kinded.
    pub fn eval_named_rel(&self, name: &str, exec: &Execution<'_>) -> Relation {
        let base = BaseInterpretation::compute(exec);
        let defs = self.eval_defs(&base);
        let id = self.model.def_id(name).expect("unknown definition");
        match &defs[id] {
            Value::Rel(r) => r.clone(),
            Value::Set(_) => panic!("`{name}` is a set"),
        }
    }

    fn eval_defs(&self, base: &BaseInterpretation) -> Vec<Value> {
        let n = base.universe();
        let model_defs = self.model.defs();
        let mut values: Vec<Value> = Vec::with_capacity(model_defs.len());
        let mut i = 0;
        while i < model_defs.len() {
            match model_defs[i].rec_group {
                None => {
                    let v = match &model_defs[i].body {
                        DefBody::Set(s) => Value::Set(eval_set(s, base, &values)),
                        DefBody::Rel(r) => Value::Rel(eval_rel(r, base, &values)),
                    };
                    values.push(v);
                    i += 1;
                }
                Some(group) => {
                    // Collect the whole group and iterate to a fixpoint.
                    let start = i;
                    let mut end = i;
                    while end < model_defs.len() && model_defs[end].rec_group == Some(group) {
                        end += 1;
                    }
                    for _ in start..end {
                        values.push(Value::Rel(Relation::empty(n)));
                    }
                    loop {
                        let mut changed = false;
                        for j in start..end {
                            let DefBody::Rel(body) = &model_defs[j].body else {
                                unreachable!("recursive defs are relations");
                            };
                            let next = eval_rel(body, base, &values);
                            let Value::Rel(cur) = &values[j] else {
                                unreachable!()
                            };
                            if &next != cur {
                                values[j] = Value::Rel(next);
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                    i = end;
                }
            }
        }
        values
    }
}

fn axiom_holds(axiom: &Axiom, rel: &Relation) -> bool {
    let raw = match axiom.kind {
        AxiomKind::Empty => rel.is_empty(),
        AxiomKind::Irreflexive => !rel.has_reflexive_pair(),
        AxiomKind::Acyclic => !rel.is_cyclic(),
    };
    raw != axiom.negated
}

fn eval_set(e: &SetExpr, base: &BaseInterpretation, defs: &[Value]) -> EventSet {
    let n = base.universe();
    match e {
        SetExpr::Base(name) => base
            .set(name)
            .cloned()
            .unwrap_or_else(|| EventSet::empty(n)),
        SetExpr::Ref(id) => match &defs[*id] {
            Value::Set(s) => s.clone(),
            Value::Rel(_) => unreachable!("kind-checked"),
        },
        // The universe restricted to executed events (consistent with the
        // SAT encoding, where every relation is execution-gated).
        SetExpr::Universe => base.set("_").cloned().unwrap_or_else(|| EventSet::full(n)),
        SetExpr::Union(a, b) => eval_set(a, base, defs).union(&eval_set(b, base, defs)),
        SetExpr::Inter(a, b) => eval_set(a, base, defs).inter(&eval_set(b, base, defs)),
        SetExpr::Diff(a, b) => eval_set(a, base, defs).diff(&eval_set(b, base, defs)),
        SetExpr::Domain(r) => eval_rel(r, base, defs).domain(),
        SetExpr::Range(r) => eval_rel(r, base, defs).range(),
    }
}

fn eval_rel(e: &RelExpr, base: &BaseInterpretation, defs: &[Value]) -> Relation {
    let n = base.universe();
    match e {
        RelExpr::Base(name) => base
            .rel(name)
            .cloned()
            .unwrap_or_else(|| Relation::empty(n)),
        RelExpr::Ref(id) => match &defs[*id] {
            Value::Rel(r) => r.clone(),
            Value::Set(_) => unreachable!("kind-checked"),
        },
        RelExpr::Id => Relation::identity(n),
        RelExpr::IdSet(s) => Relation::identity_on(&eval_set(s, base, defs)),
        RelExpr::Cross(a, b) => Relation::cross(&eval_set(a, base, defs), &eval_set(b, base, defs)),
        RelExpr::Union(a, b) => eval_rel(a, base, defs).union(&eval_rel(b, base, defs)),
        RelExpr::Inter(a, b) => eval_rel(a, base, defs).inter(&eval_rel(b, base, defs)),
        RelExpr::Diff(a, b) => eval_rel(a, base, defs).diff(&eval_rel(b, base, defs)),
        RelExpr::Seq(a, b) => eval_rel(a, base, defs).compose(&eval_rel(b, base, defs)),
        RelExpr::Inverse(a) => eval_rel(a, base, defs).inverse(),
        RelExpr::Plus(a) => eval_rel(a, base, defs).transitive_closure(),
        RelExpr::Star(a) => eval_rel(a, base, defs).refl_transitive_closure(),
        RelExpr::Opt(a) => eval_rel(a, base, defs).refl_closure(),
    }
}
