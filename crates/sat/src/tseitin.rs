//! Circuit-building (Tseitin transformation) helpers on top of [`Solver`].

use crate::{Lit, SimplifyStats, SolveResult, Solver};

/// A formula builder that owns a [`Solver`] and offers gate-level helpers.
///
/// Every helper returns a literal that is *equivalent* to the described
/// gate (full Tseitin encoding in both directions), so the returned
/// literals can be used in both positive and negative positions — which the
/// gpumc relation encoding relies on (derived relations appear under
/// negation in axioms like `empty (r1 \ r2)`).
///
/// # Example
///
/// ```
/// use gpumc_sat::Formula;
///
/// let mut f = Formula::new();
/// let a = f.new_lit();
/// let b = f.new_lit();
/// let both = f.and2(a, b);
/// f.assert_lit(both);
/// assert!(f.solve().is_sat());
/// assert_eq!(f.value(a), Some(true));
/// assert_eq!(f.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Formula {
    solver: Solver,
    true_lit: Option<Lit>,
    /// Hash-consing caches: structurally identical binary gates share
    /// one output literal, which substantially shrinks the relational
    /// encodings built by gpumc-encode.
    and_cache: std::collections::HashMap<(Lit, Lit), Lit>,
    or_cache: std::collections::HashMap<(Lit, Lit), Lit>,
    iff_cache: std::collections::HashMap<(Lit, Lit), Lit>,
}

impl Formula {
    /// Creates an empty formula.
    pub fn new() -> Formula {
        Formula::default()
    }

    /// Access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Consumes the formula, returning the underlying solver.
    pub fn into_solver(self) -> Solver {
        self.solver
    }

    /// A literal constrained to be true (created lazily, shared).
    pub fn lit_true(&mut self) -> Lit {
        if let Some(t) = self.true_lit {
            return t;
        }
        let t = self.solver.new_lit();
        self.solver.add_clause([t]);
        self.true_lit = Some(t);
        t
    }

    /// A literal constrained to be false.
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }

    /// A literal for a boolean constant.
    pub fn constant(&mut self, value: bool) -> Lit {
        if value {
            self.lit_true()
        } else {
            self.lit_false()
        }
    }

    /// Creates a fresh unconstrained literal.
    pub fn new_lit(&mut self) -> Lit {
        self.solver.new_lit()
    }

    /// Asserts a literal at the top level.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Adds a raw clause.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits);
    }

    /// The constant value of a literal, when it is the shared
    /// true/false literal.
    fn const_of(&self, l: Lit) -> Option<bool> {
        let t = self.true_lit?;
        if l == t {
            Some(true)
        } else if l == !t {
            Some(false)
        } else {
            None
        }
    }

    /// Returns a literal equivalent to the conjunction of `lits`.
    ///
    /// Constant inputs are folded away, so building circuits over
    /// already-decided literals costs nothing.
    pub fn and(&mut self, lits: &[Lit]) -> Lit {
        let mut inputs: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.const_of(l) {
                Some(true) => {}
                Some(false) => return self.lit_false(),
                None => {
                    if inputs.contains(&!l) {
                        return self.lit_false();
                    }
                    if !inputs.contains(&l) {
                        inputs.push(l);
                    }
                }
            }
        }
        match inputs.as_slice() {
            [] => self.lit_true(),
            [l] => *l,
            _ => {
                let out = self.solver.new_lit();
                for &l in &inputs {
                    self.solver.add_clause([!out, l]);
                }
                let mut clause: Vec<Lit> = inputs.iter().map(|&l| !l).collect();
                clause.push(out);
                self.solver.add_clause(clause);
                out
            }
        }
    }

    /// Binary conjunction (hash-consed).
    pub fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.and_cache.get(&key) {
            return l;
        }
        let out = self.and(&[a, b]);
        self.and_cache.insert(key, out);
        out
    }

    /// Returns a literal equivalent to the disjunction of `lits`
    /// (constant-folding, like [`Formula::and`]).
    pub fn or(&mut self, lits: &[Lit]) -> Lit {
        let mut inputs: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.const_of(l) {
                Some(false) => {}
                Some(true) => return self.lit_true(),
                None => {
                    if inputs.contains(&!l) {
                        return self.lit_true();
                    }
                    if !inputs.contains(&l) {
                        inputs.push(l);
                    }
                }
            }
        }
        match inputs.as_slice() {
            [] => self.lit_false(),
            [l] => *l,
            _ => {
                let out = self.solver.new_lit();
                for &l in &inputs {
                    self.solver.add_clause([out, !l]);
                }
                let mut clause: Vec<Lit> = inputs.clone();
                clause.push(!out);
                self.solver.add_clause(clause);
                out
            }
        }
    }

    /// Binary disjunction (hash-consed).
    pub fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.or_cache.get(&key) {
            return l;
        }
        let out = self.or(&[a, b]);
        self.or_cache.insert(key, out);
        out
    }

    /// Returns a literal equivalent to `a ∧ ¬b`.
    pub fn and_not(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(&[a, !b])
    }

    /// Returns a literal equivalent to `a ↔ b` (hash-consed).
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.iff_cache.get(&key) {
            return l;
        }
        let out = self.iff_uncached(a, b);
        self.iff_cache.insert(key, out);
        out
    }

    fn iff_uncached(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) => return b,
            (Some(false), _) => return !b,
            (_, Some(true)) => return a,
            (_, Some(false)) => return !a,
            _ if a == b => return self.lit_true(),
            _ if a == !b => return self.lit_false(),
            _ => {}
        }
        let out = self.solver.new_lit();
        self.solver.add_clause([!out, !a, b]);
        self.solver.add_clause([!out, a, !b]);
        self.solver.add_clause([out, a, b]);
        self.solver.add_clause([out, !a, !b]);
        out
    }

    /// Returns a literal equivalent to `a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        self.iff(a, !b)
    }

    /// Returns a literal equivalent to `if c then t else e`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        match self.const_of(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        match (self.const_of(t), self.const_of(e)) {
            (Some(true), _) => return self.or2(c, e),
            (Some(false), _) => return self.and2(!c, e),
            (_, Some(true)) => return self.or2(!c, t),
            (_, Some(false)) => return self.and2(c, t),
            _ => {}
        }
        let out = self.solver.new_lit();
        self.solver.add_clause([!out, !c, t]);
        self.solver.add_clause([!out, c, e]);
        self.solver.add_clause([out, !c, !t]);
        self.solver.add_clause([out, c, !e]);
        out
    }

    /// Asserts `a → b`.
    pub fn assert_implies(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause([!a, b]);
    }

    /// Asserts `a ↔ b`.
    pub fn assert_iff(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause([!a, b]);
        self.solver.add_clause([a, !b]);
    }

    /// Asserts that at most one of `lits` is true (pairwise encoding).
    pub fn assert_at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.solver.add_clause([!lits[i], !lits[j]]);
            }
        }
    }

    /// Asserts that exactly one of `lits` is true.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (there is no way to make zero literals
    /// contain a true one).
    pub fn assert_exactly_one(&mut self, lits: &[Lit]) {
        assert!(!lits.is_empty(), "exactly-one over empty set");
        self.solver.add_clause(lits.to_vec());
        self.assert_at_most_one(lits);
    }

    /// Marks the literal's variable as frozen (exempt from simplification).
    ///
    /// See [`Solver::freeze`]. Every literal whose model value will be read
    /// back, or that will appear in a later incremental query, must be
    /// frozen before [`Formula::simplify`] is called.
    pub fn freeze_lit(&mut self, l: Lit) {
        self.solver.freeze(l.var());
    }

    /// Runs SatELite-style CNF simplification on the accumulated clauses.
    ///
    /// Gate output literals handed out by the hash-consing caches may be
    /// eliminated or substituted away, so the caches are cleared: gates
    /// built *after* this call get fresh output variables rather than
    /// stale (possibly eliminated) ones.
    pub fn simplify(&mut self) -> SimplifyStats {
        if let Some(t) = self.true_lit {
            // The shared constant is handed out freely; keep it meaningful.
            self.solver.freeze(t.var());
        }
        self.and_cache.clear();
        self.or_cache.clear();
        self.iff_cache.clear();
        self.solver.simplify()
    }

    /// Solves the accumulated formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solver.clear_model();
        self.solver.solve()
    }

    /// Solves under assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.clear_model();
        self.solver.solve_with_assumptions(assumptions)
    }

    /// Solves under assumptions with a diversified portfolio (see
    /// [`crate::portfolio::solve_portfolio`]); on a definitive answer the
    /// winner's state is adopted, so `value` and later incremental
    /// queries behave exactly as after a sequential solve.
    pub fn solve_parallel(
        &mut self,
        assumptions: &[Lit],
        config: &crate::portfolio::PortfolioConfig,
    ) -> (SolveResult, crate::portfolio::PortfolioStats) {
        self.solver.clear_model();
        crate::portfolio::solve_portfolio(&mut self.solver, assumptions, config)
    }

    /// Model value of a literal after a `Sat` result.
    pub fn value(&self, l: Lit) -> Option<bool> {
        self.solver.value(l)
    }

    /// Model value, defaulting unconstrained variables to `false`.
    pub fn value_or_false(&self, l: Lit) -> bool {
        self.solver.value_or_false(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_gate_truth_table() {
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut f = Formula::new();
            let a = f.new_lit();
            let b = f.new_lit();
            let g = f.and2(a, b);
            f.assert_lit(if va { a } else { !a });
            f.assert_lit(if vb { b } else { !b });
            assert!(f.solve().is_sat());
            assert_eq!(f.value(g), Some(va && vb));
        }
    }

    #[test]
    fn or_gate_truth_table() {
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut f = Formula::new();
            let a = f.new_lit();
            let b = f.new_lit();
            let g = f.or2(a, b);
            f.assert_lit(if va { a } else { !a });
            f.assert_lit(if vb { b } else { !b });
            assert!(f.solve().is_sat());
            assert_eq!(f.value(g), Some(va || vb));
        }
    }

    #[test]
    fn ite_gate_truth_table() {
        for c in [false, true] {
            for t in [false, true] {
                for e in [false, true] {
                    let mut f = Formula::new();
                    let lc = f.new_lit();
                    let lt = f.new_lit();
                    let le = f.new_lit();
                    let g = f.ite(lc, lt, le);
                    f.assert_lit(if c { lc } else { !lc });
                    f.assert_lit(if t { lt } else { !lt });
                    f.assert_lit(if e { le } else { !le });
                    assert!(f.solve().is_sat());
                    assert_eq!(f.value(g), Some(if c { t } else { e }));
                }
            }
        }
    }

    #[test]
    fn gates_usable_under_negation() {
        // Assert NOT(and(a,b)) and a: forces b false.
        let mut f = Formula::new();
        let a = f.new_lit();
        let b = f.new_lit();
        let g = f.and2(a, b);
        f.assert_lit(!g);
        f.assert_lit(a);
        assert!(f.solve().is_sat());
        assert_eq!(f.value(b), Some(false));
    }

    #[test]
    fn exactly_one() {
        let mut f = Formula::new();
        let ls: Vec<Lit> = (0..5).map(|_| f.new_lit()).collect();
        f.assert_exactly_one(&ls);
        assert!(f.solve().is_sat());
        let count = ls.iter().filter(|&&l| f.value_or_false(l)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let mut f = Formula::new();
        let t = f.and(&[]);
        let e = f.or(&[]);
        assert!(f.solve().is_sat());
        assert_eq!(f.value(t), Some(true));
        assert_eq!(f.value(e), Some(false));
    }

    #[test]
    fn xor_and_iff() {
        let mut f = Formula::new();
        let a = f.new_lit();
        let b = f.new_lit();
        let x = f.xor(a, b);
        let i = f.iff(a, b);
        f.assert_lit(a);
        f.assert_lit(!b);
        assert!(f.solve().is_sat());
        assert_eq!(f.value(x), Some(true));
        assert_eq!(f.value(i), Some(false));
    }
}
