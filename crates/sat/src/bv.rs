//! Fixed-width bit-vector terms bit-blasted onto the SAT solver.
//!
//! Litmus tests manipulate small integer values (stored data, addresses,
//! ticket counters). An SMT solver would handle these with the bit-vector
//! theory; we bit-blast instead. A [`BitVec`] is a little-endian vector of
//! literals; all operations allocate Tseitin gates in a [`Formula`].

use crate::tseitin::Formula;
use crate::Lit;

/// A fixed-width bit-vector of SAT literals (bit 0 = least significant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    bits: Vec<Lit>,
}

impl BitVec {
    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The literal for bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> Lit {
        self.bits[i]
    }

    /// All bits, least significant first.
    pub fn bits(&self) -> &[Lit] {
        &self.bits
    }

    /// Creates a fresh unconstrained bit-vector of the given width.
    pub fn fresh(f: &mut Formula, width: usize) -> BitVec {
        BitVec {
            bits: (0..width).map(|_| f.new_lit()).collect(),
        }
    }

    /// Creates a constant bit-vector (value truncated to `width` bits).
    pub fn constant(f: &mut Formula, width: usize, value: u64) -> BitVec {
        BitVec {
            bits: (0..width)
                .map(|i| f.constant(value >> i & 1 == 1))
                .collect(),
        }
    }

    /// Reads the concrete value from the solver model after a SAT answer.
    ///
    /// Unconstrained bits read as zero.
    pub fn value_in(&self, f: &Formula) -> u64 {
        self.bits.iter().enumerate().fold(0u64, |acc, (i, &l)| {
            acc | (u64::from(f.value_or_false(l)) << i)
        })
    }

    /// Returns a literal equivalent to `self == other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn eq(&self, f: &mut Formula, other: &BitVec) -> Lit {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        let per_bit: Vec<Lit> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| f.iff(a, b))
            .collect();
        f.and(&per_bit)
    }

    /// Returns a literal equivalent to `self == value` (constant compare).
    pub fn eq_const(&self, f: &mut Formula, value: u64) -> Lit {
        let per_bit: Vec<Lit> = self
            .bits
            .iter()
            .enumerate()
            .map(|(i, &b)| if value >> i & 1 == 1 { b } else { !b })
            .collect();
        f.and(&per_bit)
    }

    /// Returns a literal equivalent to `self != other`.
    pub fn ne(&self, f: &mut Formula, other: &BitVec) -> Lit {
        !self.eq(f, other)
    }

    /// Unsigned less-than comparison `self < other`.
    pub fn ult(&self, f: &mut Formula, other: &BitVec) -> Lit {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        // Ripple from LSB: lt_i = (~a_i & b_i) | (a_i<=>b_i) & lt_{i-1}
        let mut lt = f.lit_false();
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let strictly = f.and2(!a, b);
            let equal = f.iff(a, b);
            let carry = f.and2(equal, lt);
            lt = f.or2(strictly, carry);
        }
        lt
    }

    /// Unsigned less-or-equal `self <= other`.
    pub fn ule(&self, f: &mut Formula, other: &BitVec) -> Lit {
        !other.ult(f, self)
    }

    /// Wrapping addition.
    pub fn add(&self, f: &mut Formula, other: &BitVec) -> BitVec {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        let mut carry = f.lit_false();
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let axb = f.xor(a, b);
            let sum = f.xor(axb, carry);
            let c1 = f.and2(a, b);
            let c2 = f.and2(axb, carry);
            carry = f.or2(c1, c2);
            bits.push(sum);
        }
        BitVec { bits }
    }

    /// Wrapping subtraction (`self - other`, two's complement).
    pub fn sub(&self, f: &mut Formula, other: &BitVec) -> BitVec {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        // a - b = a + ~b + 1
        let mut carry = f.lit_true();
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let nb = !b;
            let axb = f.xor(a, nb);
            let sum = f.xor(axb, carry);
            let c1 = f.and2(a, nb);
            let c2 = f.and2(axb, carry);
            carry = f.or2(c1, c2);
            bits.push(sum);
        }
        BitVec { bits }
    }

    /// Bitwise AND.
    pub fn bitand(&self, f: &mut Formula, other: &BitVec) -> BitVec {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        BitVec {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f.and2(a, b))
                .collect(),
        }
    }

    /// Bitwise OR.
    pub fn bitor(&self, f: &mut Formula, other: &BitVec) -> BitVec {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        BitVec {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f.or2(a, b))
                .collect(),
        }
    }

    /// Bitwise XOR.
    pub fn bitxor(&self, f: &mut Formula, other: &BitVec) -> BitVec {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        BitVec {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f.xor(a, b))
                .collect(),
        }
    }

    /// Bit-wise multiplexer: `if cond then self else other`.
    pub fn select(&self, f: &mut Formula, cond: Lit, other: &BitVec) -> BitVec {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        BitVec {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&t, &e)| f.ite(cond, t, e))
                .collect(),
        }
    }

    /// Asserts `self == other` at the top level.
    pub fn assert_eq(&self, f: &mut Formula, other: &BitVec) {
        assert_eq!(self.width(), other.width(), "bit-vector width mismatch");
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            f.assert_iff(a, b);
        }
    }

    /// Asserts `self == value` at the top level.
    pub fn assert_const(&self, f: &mut Formula, value: u64) {
        for (i, &b) in self.bits.iter().enumerate() {
            f.assert_lit(if value >> i & 1 == 1 { b } else { !b });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 8;

    fn check_binop(
        op: impl Fn(&BitVec, &mut Formula, &BitVec) -> BitVec,
        model: impl Fn(u64, u64) -> u64,
        samples: &[(u64, u64)],
    ) {
        for &(x, y) in samples {
            let mut f = Formula::new();
            let a = BitVec::constant(&mut f, W, x);
            let b = BitVec::constant(&mut f, W, y);
            let r = op(&a, &mut f, &b);
            assert!(f.solve().is_sat());
            assert_eq!(r.value_in(&f), model(x, y) & 0xff, "op({x},{y})");
        }
    }

    const SAMPLES: &[(u64, u64)] = &[
        (0, 0),
        (1, 1),
        (3, 5),
        (255, 1),
        (128, 128),
        (17, 42),
        (200, 100),
    ];

    #[test]
    fn addition_matches_wrapping_add() {
        check_binop(BitVec::add, |x, y| x.wrapping_add(y), SAMPLES);
    }

    #[test]
    fn subtraction_matches_wrapping_sub() {
        check_binop(BitVec::sub, |x, y| x.wrapping_sub(y), SAMPLES);
    }

    #[test]
    fn bitwise_ops() {
        check_binop(BitVec::bitand, |x, y| x & y, SAMPLES);
        check_binop(BitVec::bitor, |x, y| x | y, SAMPLES);
        check_binop(BitVec::bitxor, |x, y| x ^ y, SAMPLES);
    }

    #[test]
    fn equality_and_comparison() {
        for &(x, y) in SAMPLES {
            let mut f = Formula::new();
            let a = BitVec::constant(&mut f, W, x);
            let b = BitVec::constant(&mut f, W, y);
            let eq = a.eq(&mut f, &b);
            let lt = a.ult(&mut f, &b);
            let le = a.ule(&mut f, &b);
            assert!(f.solve().is_sat());
            assert_eq!(f.value_or_false(eq), x == y);
            assert_eq!(f.value_or_false(lt), x < y);
            assert_eq!(f.value_or_false(le), x <= y);
        }
    }

    #[test]
    fn fresh_vector_constrained_by_equation() {
        // Solve x + 3 = 10 over 8 bits.
        let mut f = Formula::new();
        let x = BitVec::fresh(&mut f, W);
        let three = BitVec::constant(&mut f, W, 3);
        let sum = x.add(&mut f, &three);
        sum.assert_const(&mut f, 10);
        assert!(f.solve().is_sat());
        assert_eq!(x.value_in(&f), 7);
    }

    #[test]
    fn select_multiplexer() {
        for c in [false, true] {
            let mut f = Formula::new();
            let cond = f.new_lit();
            f.assert_lit(if c { cond } else { !cond });
            let t = BitVec::constant(&mut f, W, 11);
            let e = BitVec::constant(&mut f, W, 22);
            let r = t.select(&mut f, cond, &e);
            assert!(f.solve().is_sat());
            assert_eq!(r.value_in(&f), if c { 11 } else { 22 });
        }
    }

    #[test]
    fn eq_const_gate() {
        let mut f = Formula::new();
        let x = BitVec::fresh(&mut f, W);
        let is42 = x.eq_const(&mut f, 42);
        f.assert_lit(is42);
        assert!(f.solve().is_sat());
        assert_eq!(x.value_in(&f), 42);
    }

    #[test]
    fn unsat_equation() {
        // x != x has no solution.
        let mut f = Formula::new();
        let x = BitVec::fresh(&mut f, W);
        let ne = x.ne(&mut f, &x.clone());
        f.assert_lit(ne);
        assert!(f.solve().is_unsat());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut f = Formula::new();
        let a = BitVec::fresh(&mut f, 4);
        let b = BitVec::fresh(&mut f, 8);
        let _ = a.add(&mut f, &b);
    }
}
