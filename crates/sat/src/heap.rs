//! Indexed max-heap over variables ordered by VSIDS activity.

use crate::Var;

/// A binary max-heap of variables keyed by an external activity array.
///
/// Supports `decrease`/`increase` updates in `O(log n)` because it keeps a
/// position index per variable, exactly like MiniSat's `VarOrder`.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// `pos[v] == usize::MAX` when `v` is not in the heap.
    pos: Vec<usize>,
}

impl VarHeap {
    pub(crate) fn new() -> VarHeap {
        VarHeap::default()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != usize::MAX)
    }

    /// Makes room for a variable index (call when creating variables).
    pub(crate) fn grow_to(&mut self, n_vars: usize) {
        if self.pos.len() < n_vars {
            self.pos.resize(n_vars, usize::MAX);
        }
    }

    pub(crate) fn push(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow_to(v.index() + 1);
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Re-heapifies in place after a bulk activity rewrite (bottom-up
    /// Floyd construction, `O(n)`); membership is unchanged.
    pub(crate) fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != usize::MAX {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        h.grow_to(4);
        for i in 0..4 {
            h.push(Var(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&activity))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn update_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        h.grow_to(3);
        for i in 0..3 {
            h.push(Var(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var(0), &activity);
        assert_eq!(h.pop(&activity), Some(Var(0)));
    }

    #[test]
    fn duplicate_push_is_noop() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.push(Var(0), &activity);
        h.push(Var(0), &activity);
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop(&activity), Some(Var(0)));
        assert!(h.is_empty());
    }
}
