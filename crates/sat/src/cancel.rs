//! Cooperative cancellation for long-running solver calls.
//!
//! Bounded model-checking queries have order-of-magnitude runtime
//! variance, so a long-lived service cannot rely on process boundaries to
//! bound a solve. A [`CancelToken`] is a cheap, cloneable handle shared
//! between the party that owns a deadline (a server worker, a signal
//! handler, a test harness) and the [`Solver`](crate::Solver), which
//! polls it between conflicts. Interruption is *cooperative*: the solver
//! unwinds to the root decision level and reports
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown), leaving the
//! clause database (including everything learnt so far) intact, so the
//! same solver instance can serve the next query.
//!
//! Cancellation is sound by construction: an interrupted solve never
//! reports `Sat` or `Unsat`, so a cancelled query can only *lose* an
//! answer, never flip one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve call stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The per-call conflict budget was exhausted.
    ConflictBudget,
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExpired,
    /// The solver's memory budget was exceeded (see
    /// [`Solver::set_mem_budget_bytes`](crate::Solver::set_mem_budget_bytes)):
    /// an allocation blow-up becomes a clean per-query `unknown` instead
    /// of an OOM kill.
    MemBudget,
    /// A fault-injection plan (`gpumc-fault`) forced an inconclusive
    /// answer; only reachable with a plan armed, never in production.
    Injected,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Interrupt::ConflictBudget => "conflict budget exhausted",
            Interrupt::Cancelled => "cancelled",
            Interrupt::DeadlineExpired => "deadline expired",
            Interrupt::MemBudget => "memory budget exceeded",
            Interrupt::Injected => "injected fault",
        })
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle with an optional deadline.
///
/// All clones share one flag: cancelling any clone cancels them all.
/// The flag check is a relaxed atomic load — cheap enough to poll every
/// conflict — while the deadline comparison reads the clock and is
/// polled more coarsely (see [`CancelToken::should_stop`]).
///
/// # Example
///
/// ```
/// use gpumc_sat::CancelToken;
///
/// let token = CancelToken::new();
/// let worker = token.clone();
/// assert!(worker.check().is_none());
/// token.cancel();
/// assert_eq!(worker.check(), Some(gpumc_sat::Interrupt::Cancelled));
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; stops only on [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that also expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Requests cancellation (idempotent, visible to all clones).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] was called (does not consult the
    /// deadline — use [`CancelToken::check`] for the full verdict).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Full stop verdict: the flag, then the deadline (reads the clock).
    pub fn check(&self) -> Option<Interrupt> {
        if self.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(Interrupt::DeadlineExpired),
            _ => None,
        }
    }

    /// The solver's poll: always checks the (cheap) flag; consults the
    /// (clock-reading) deadline only when `poll_clock` is set, so callers
    /// can amortize `Instant::now` over many conflicts.
    #[inline]
    pub(crate) fn should_stop(&self, poll_clock: bool) -> Option<Interrupt> {
        if self.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if poll_clock {
            if let Some(d) = self.inner.deadline {
                if Instant::now() >= d {
                    return Some(Interrupt::DeadlineExpired);
                }
            }
        }
        None
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert_eq!(b.check(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Some(Interrupt::DeadlineExpired));
        // The flag outranks the deadline in the report.
        t.cancel();
        assert_eq!(t.check(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn far_deadline_does_not_stop() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(t.check(), None);
        assert_eq!(t.should_stop(true), None);
    }

    #[test]
    fn token_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
