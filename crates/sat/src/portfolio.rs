//! Portfolio parallel solving with lock-free clause sharing and a
//! cube-and-conquer fallback.
//!
//! [`solve_portfolio`] races N diversified clones of one [`Solver`] on the
//! same clause database. Each racer gets its own [`SearchParams`] (restart
//! interval, VSIDS decay, default phase, decision seed); the first racer to
//! reach a definitive answer cancels the rest through a shared race
//! [`CancelToken`] and its entire solver state is adopted back into the
//! caller, so follow-up queries keep the winner's learnt clauses.
//!
//! Racers exchange learnt clauses through a [`ClauseRing`]: a fixed-capacity
//! array of write-once slots. A producer claims a slot index with one
//! `fetch_add` and publishes through `OnceLock::set`; consumers keep private
//! cursors and read with `OnceLock::get`. No locks, no retries, and a full
//! ring degrades to "stop sharing", never to blocking. Clauses with glue ≤ 2
//! are shared first; a racer that learns nothing shareable for a while
//! widens its own export threshold adaptively.
//!
//! When every racer exhausts the conflict budget, the caller can fall back
//! to cube-and-conquer: split on the top-VSIDS variables of the most
//! informed racer, solve the 2^k cubes on a bounded worker pool (each cube
//! under the same per-call budgets and the caller's cancel token), and merge
//! deterministically — any SAT cube wins, all-UNSAT proves UNSAT, anything
//! else stays Unknown.
//!
//! Verdict soundness: every learnt clause is derived by resolution from the
//! shared database, so imports can never change satisfiability, and
//! Sat/Unsat is a property of the formula — whichever racer answers first
//! agrees with a sequential solve.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cancel::{CancelToken, Interrupt};
use crate::solver::{splitmix64, SearchParams, SolveResult, Solver};
use crate::{Lit, Var};

/// How (and whether) a query is solved in parallel. Plumbed from the CLI /
/// serve request down to [`solve_portfolio`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelPolicy {
    /// Plain sequential solving (the default).
    #[default]
    Off,
    /// Race this many diversified solvers on every query.
    Portfolio(u32),
    /// Decide per query from the predicted cost of the encoding (the
    /// bounds-pruned clause count): portfolio for large formulas,
    /// sequential for the long tail of tiny ones where thread setup
    /// dominates.
    Auto,
}

impl ParallelPolicy {
    /// Parses a CLI/request value: `off`, `auto`, or a worker count.
    pub fn parse(s: &str) -> Result<ParallelPolicy, String> {
        match s {
            "off" | "0" | "1" => Ok(ParallelPolicy::Off),
            "auto" => Ok(ParallelPolicy::Auto),
            _ => s
                .parse::<u32>()
                .map(ParallelPolicy::Portfolio)
                .map_err(|_| format!("invalid portfolio value `{s}` (want off, auto, or N)")),
        }
    }
}

impl std::fmt::Display for ParallelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelPolicy::Off => write!(f, "off"),
            ParallelPolicy::Portfolio(n) => write!(f, "portfolio({n})"),
            ParallelPolicy::Auto => write!(f, "auto"),
        }
    }
}

/// Tuning for one portfolio solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Number of racers. `<= 1` degrades to a plain sequential solve.
    pub workers: u32,
    /// Cube-and-conquer split depth (2^depth cubes) used when the whole
    /// race blows the conflict budget; 0 disables the fallback.
    pub cube_depth: u32,
    /// Initial export glue threshold ("share glue ≤ 2 first").
    pub share_glue_init: u32,
    /// Ceiling for adaptive widening of the export threshold.
    pub share_glue_max: u32,
    /// Capacity of the shared clause ring, in clauses.
    pub ring_capacity: usize,
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            workers: 4,
            cube_depth: 3,
            share_glue_init: 2,
            share_glue_max: 6,
            ring_capacity: 1 << 14,
        }
    }
}

impl PortfolioConfig {
    /// A config with `n` racers and the default exchange tuning.
    pub fn with_workers(n: u32) -> PortfolioConfig {
        PortfolioConfig {
            workers: n,
            ..PortfolioConfig::default()
        }
    }
}

/// What a portfolio solve did, for benches, `table6 --json`, and the serve
/// metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Racers launched (1 means the call degraded to sequential).
    pub workers: u32,
    /// Index of the racer whose definitive answer was adopted.
    pub winner: Option<u32>,
    /// Learnt clauses published to the exchange ring(s).
    pub exported: u64,
    /// Foreign clauses imported by racers across the ring(s).
    pub imported: u64,
    /// Whether the cube-and-conquer fallback ran.
    pub cube_fallback: bool,
    /// Number of cubes solved by the fallback.
    pub cubes: u32,
    /// Index of the SAT cube, when the fallback found a model.
    pub cube_winner: Option<u32>,
}

impl PortfolioStats {
    /// Folds another solve's stats into an aggregate (counters add,
    /// winner fields keep the most recent answer).
    pub fn absorb(&mut self, o: &PortfolioStats) {
        self.workers = self.workers.max(o.workers);
        self.exported += o.exported;
        self.imported += o.imported;
        self.cube_fallback |= o.cube_fallback;
        self.cubes += o.cubes;
        if o.winner.is_some() {
            self.winner = o.winner;
        }
        if o.cube_winner.is_some() {
            self.cube_winner = o.cube_winner;
        }
    }
}

/// The lock-free learnt-clause exchange: a fixed array of write-once
/// slots. `head` hands out unique slot indices; a slot is readable once
/// its `OnceLock` is set. Producers never block (a full ring just stops
/// the exchange) and consumers never observe a torn clause.
pub(crate) struct ClauseRing {
    slots: Vec<OnceLock<(u32, u32, Vec<Lit>)>>,
    head: AtomicUsize,
    exported: AtomicU64,
    imported: AtomicU64,
}

impl ClauseRing {
    fn new(capacity: usize) -> ClauseRing {
        ClauseRing {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            head: AtomicUsize::new(0),
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
        }
    }

    /// Publishes one clause; `false` once the ring is full (the producer
    /// should stop exporting).
    fn publish(&self, worker: u32, glue: u32, lits: Vec<Lit>) -> bool {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            return false;
        }
        // The index is uniquely ours, so the set cannot race.
        let _ = self.slots[i].set((worker, glue, lits));
        self.exported.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Every clause currently published (test/trace hook).
    fn snapshot(&self) -> Vec<Vec<Lit>> {
        let limit = self.head.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..limit]
            .iter()
            .filter_map(|s| s.get().map(|(_, _, lits)| lits.clone()))
            .collect()
    }
}

impl std::fmt::Debug for ClauseRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClauseRing")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

/// Export widening: after this many conflicts without anything shareable,
/// raise the glue threshold by one (up to the config ceiling).
const WIDEN_AFTER: u64 = 512;

/// One racer's endpoint of the exchange, stored inside its [`Solver`].
/// Also carries the caller's cancel token so racers observe external
/// cancellation as well as the race's first-winner cancel.
#[derive(Debug, Clone)]
pub(crate) struct ExchangeLink {
    ring: Arc<ClauseRing>,
    worker: u32,
    cursor: usize,
    glue_limit: u32,
    glue_max: u32,
    stalled: u64,
    full: bool,
    external: Option<CancelToken>,
}

impl ExchangeLink {
    fn new(
        ring: Arc<ClauseRing>,
        worker: u32,
        glue_init: u32,
        glue_max: u32,
        external: Option<CancelToken>,
    ) -> ExchangeLink {
        ExchangeLink {
            ring,
            worker,
            cursor: 0,
            glue_limit: glue_init,
            glue_max,
            stalled: 0,
            full: false,
            external,
        }
    }

    /// Called once per learnt clause: publishes it when the glue is under
    /// the current threshold, and widens the threshold when nothing has
    /// been shareable for a while.
    pub(crate) fn maybe_export(&mut self, lits: &[Lit], glue: u32) {
        if self.full || lits.is_empty() {
            return;
        }
        if glue > self.glue_limit {
            self.stalled += 1;
            if self.stalled >= WIDEN_AFTER && self.glue_limit < self.glue_max {
                self.glue_limit += 1;
                self.stalled = 0;
            }
            return;
        }
        self.stalled = 0;
        if !self.ring.publish(self.worker, glue, lits.to_vec()) {
            self.full = true;
        }
    }

    /// Next foreign clause after this racer's private cursor, if any.
    /// Stops at a claimed-but-unwritten slot to preserve publication
    /// order; that slot is retried on the next import round.
    pub(crate) fn next_import(&mut self) -> Option<(Vec<Lit>, u32)> {
        let limit = self
            .ring
            .head
            .load(Ordering::Acquire)
            .min(self.ring.slots.len());
        while self.cursor < limit {
            let (from, glue, lits) = self.ring.slots[self.cursor].get()?;
            self.cursor += 1;
            if *from == self.worker {
                continue;
            }
            self.ring.imported.fetch_add(1, Ordering::Relaxed);
            return Some((lits.clone(), *glue));
        }
        None
    }

    /// Polls the caller's token (the racer's own `cancel` is the race
    /// token, which does not mirror external cancellation flags).
    pub(crate) fn external_stop(&self, poll_clock: bool) -> Option<Interrupt> {
        self.external
            .as_ref()
            .and_then(|t| t.should_stop(poll_clock))
    }
}

/// Search heuristics for racer `i`: racer 0 keeps the caller's own
/// parameters (so the portfolio is never heuristically worse than a
/// sequential solve), the rest sweep the diversification axes.
fn diversified(base: SearchParams, i: u32) -> SearchParams {
    if i == 0 {
        return base;
    }
    const RESTARTS: [u64; 6] = [64, 128, 16, 256, 32, 512];
    const DECAYS: [f64; 6] = [0.90, 0.99, 0.85, 0.95, 0.93, 0.97];
    let j = (i as usize - 1) % RESTARTS.len();
    SearchParams {
        restart_base: RESTARTS[j],
        var_decay: DECAYS[j],
        default_polarity: i % 2 == 1,
        seed: splitmix64(0xc0ffee ^ u64::from(i)) | 1,
    }
}

enum Outcome {
    Done(SolveResult, Box<Solver>),
    Panicked(Box<dyn std::any::Any + Send>),
}

fn definitive(r: SolveResult) -> bool {
    matches!(r, SolveResult::Sat | SolveResult::Unsat)
}

/// Merges the interrupts of answerless racers: budget exhaustion
/// dominates (it enables the cube fallback), then external causes, and
/// race-cancellation artifacts come last.
fn merge_interrupts(interrupts: &[Interrupt]) -> Interrupt {
    for want in [
        Interrupt::ConflictBudget,
        Interrupt::DeadlineExpired,
        Interrupt::MemBudget,
        Interrupt::Injected,
    ] {
        if interrupts.contains(&want) {
            return want;
        }
    }
    Interrupt::Cancelled
}

/// Solves `solver`'s database under `assumptions` with a diversified
/// portfolio (and cube-and-conquer fallback, if configured). On a
/// definitive answer the winning racer's state replaces `solver`'s, so
/// models and follow-up incremental queries behave exactly as after a
/// sequential solve.
pub fn solve_portfolio(
    solver: &mut Solver,
    assumptions: &[Lit],
    config: &PortfolioConfig,
) -> (SolveResult, PortfolioStats) {
    let (result, stats, _rings) = portfolio_impl(solver, assumptions, config);
    (result, stats)
}

/// Like [`solve_portfolio`], additionally returning every clause that was
/// published to the exchange ring(s) — the hook for the clause-sharing
/// soundness proptest (each returned clause must be implied by the
/// original CNF).
#[doc(hidden)]
pub fn solve_portfolio_traced(
    solver: &mut Solver,
    assumptions: &[Lit],
    config: &PortfolioConfig,
) -> (SolveResult, PortfolioStats, Vec<Vec<Lit>>) {
    let (result, stats, rings) = portfolio_impl(solver, assumptions, config);
    let shared = rings.iter().flat_map(|r| r.snapshot()).collect();
    (result, stats, shared)
}

fn portfolio_impl(
    solver: &mut Solver,
    assumptions: &[Lit],
    config: &PortfolioConfig,
) -> (SolveResult, PortfolioStats, Vec<Arc<ClauseRing>>) {
    let n = config.workers;
    if n <= 1 {
        let r = solver.solve_with_assumptions(assumptions);
        let stats = PortfolioStats {
            workers: 1,
            winner: definitive(r).then_some(0),
            ..PortfolioStats::default()
        };
        return (r, stats, Vec::new());
    }
    let mut stats = PortfolioStats {
        workers: n,
        ..PortfolioStats::default()
    };
    solver.clear_model();

    let external = solver.cancel_token().cloned();
    // The race token is what racers poll as their own `cancel`: the first
    // definitive answer fires it. An external deadline is copied in so
    // racers honour it on the cheap per-conflict path too.
    let race = match external.as_ref().and_then(|t| t.deadline()) {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let ring = Arc::new(ClauseRing::new(config.ring_capacity));
    // Scoped fault plans are thread-local; capture the current one and
    // re-arm it inside every racer so injected faults reach them.
    let plan = gpumc_fault::current_plan();

    let mut racers = Vec::with_capacity(n as usize);
    for i in 0..n {
        let mut w = solver.clone();
        w.set_search_params(diversified(solver.search_params(), i));
        w.set_cancel_token(Some(race.clone()));
        w.set_exchange(Some(ExchangeLink::new(
            Arc::clone(&ring),
            i,
            config.share_glue_init,
            config.share_glue_max,
            external.clone(),
        )));
        racers.push(w);
    }

    let outcomes: Vec<Outcome> = std::thread::scope(|s| {
        let handles: Vec<_> = racers
            .into_iter()
            .map(|mut w| {
                let race = &race;
                let plan = plan.clone();
                s.spawn(move || {
                    let _guard = plan.map(gpumc_fault::scoped);
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        w.solve_with_assumptions(assumptions)
                    }));
                    match caught {
                        Ok(r) => {
                            if definitive(r) {
                                race.cancel();
                            }
                            Outcome::Done(r, Box::new(w))
                        }
                        Err(p) => Outcome::Panicked(p),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("racer catches its own panics"))
            .collect()
    });

    stats.exported = ring.exported.load(Ordering::Relaxed);
    stats.imported = ring.imported.load(Ordering::Relaxed);

    let mut winner: Option<(u32, SolveResult, Box<Solver>)> = None;
    let mut interrupts: Vec<Interrupt> = Vec::new();
    let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
    // The answerless racer whose solver seeds the cube split (warm VSIDS
    // activity and learnt clauses), lowest index first.
    let mut cube_base: Option<Box<Solver>> = None;
    for (i, o) in outcomes.into_iter().enumerate() {
        match o {
            Outcome::Done(r, w) if definitive(r) => match &winner {
                None => winner = Some((i as u32, r, w)),
                Some((_, r0, _)) => {
                    assert_eq!(*r0, r, "portfolio racers disagree on a definitive verdict")
                }
            },
            Outcome::Done(SolveResult::Unknown(int), w) => {
                interrupts.push(int);
                if cube_base.is_none() {
                    cube_base = Some(w);
                }
            }
            Outcome::Done(..) => unreachable!("non-definitive results are Unknown"),
            Outcome::Panicked(p) => panics.push(p),
        }
    }

    if let Some((i, r, w)) = winner {
        stats.winner = Some(i);
        solver.adopt_from_portfolio(*w);
        return (r, stats, vec![ring]);
    }
    if interrupts.is_empty() {
        // Every racer died: nothing proved anything, so the failure must
        // not be swallowed into an Unknown.
        let p = panics
            .pop()
            .expect("no answers and no panics is impossible");
        std::panic::resume_unwind(p);
    }
    let merged = merge_interrupts(&interrupts);
    if merged == Interrupt::ConflictBudget && config.cube_depth > 0 {
        let base = cube_base.expect("ConflictBudget implies an answerless racer");
        let (r, cube_ring) = solve_cubes(solver, &base, assumptions, config, external, &mut stats);
        let mut rings = vec![ring];
        if let Some(cr) = cube_ring {
            stats.exported = stats
                .exported
                .saturating_add(cr.exported.load(Ordering::Relaxed));
            stats.imported = stats
                .imported
                .saturating_add(cr.imported.load(Ordering::Relaxed));
            rings.push(cr);
        }
        return (r, stats, rings);
    }
    (SolveResult::Unknown(merged), stats, vec![ring])
}

enum CubeOutcome {
    Done(SolveResult, Option<Box<Solver>>),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Cube-and-conquer fallback: split on the top-VSIDS variables of `base`
/// (the most informed budget-blown racer), solve each cube on a bounded
/// pool with per-cube budget/cancel guards, and merge deterministically.
fn solve_cubes(
    caller: &mut Solver,
    base: &Solver,
    assumptions: &[Lit],
    config: &PortfolioConfig,
    external: Option<CancelToken>,
    stats: &mut PortfolioStats,
) -> (SolveResult, Option<Arc<ClauseRing>>) {
    let assumed: Vec<Var> = assumptions.iter().map(|l| l.var()).collect();
    let split = base.top_vsids_vars(config.cube_depth as usize, &assumed);
    if split.is_empty() {
        return (SolveResult::Unknown(Interrupt::ConflictBudget), None);
    }
    let n_cubes = 1u32 << split.len();
    stats.cube_fallback = true;
    stats.cubes = n_cubes;

    // Cube i forces split[j] to the value of bit j — a fixed, exhaustive
    // cover, so all-UNSAT is a proof of UNSAT under the assumptions.
    let cubes: Vec<Vec<Lit>> = (0..n_cubes)
        .map(|mask| {
            let mut lits = assumptions.to_vec();
            lits.extend(
                split
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| Lit::new(v, mask >> j & 1 == 1)),
            );
            lits
        })
        .collect();

    let race = match external.as_ref().and_then(|t| t.deadline()) {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let ring = Arc::new(ClauseRing::new(config.ring_capacity));
    let plan = gpumc_fault::current_plan();
    let jobs = (config.workers as usize).min(cubes.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CubeOutcome>>> =
        (0..cubes.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..jobs {
            let race = &race;
            let ring = &ring;
            let cubes = &cubes;
            let slots = &slots;
            let cursor = &cursor;
            let external = &external;
            let plan = plan.clone();
            s.spawn(move || {
                let _guard = plan.map(gpumc_fault::scoped);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= cubes.len() {
                        break;
                    }
                    let mut w = base.clone();
                    w.set_cancel_token(Some(race.clone()));
                    w.set_exchange(Some(ExchangeLink::new(
                        Arc::clone(ring),
                        i as u32,
                        config.share_glue_init,
                        config.share_glue_max,
                        external.clone(),
                    )));
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        w.solve_with_assumptions(&cubes[i])
                    }));
                    let out = match caught {
                        Ok(r) => {
                            if r.is_sat() {
                                // A model ends the whole fallback; UNSAT
                                // cubes must all finish, so only SAT
                                // cancels.
                                race.cancel();
                            }
                            CubeOutcome::Done(r, r.is_sat().then(|| Box::new(w)))
                        }
                        Err(p) => CubeOutcome::Panicked(p),
                    };
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
            });
        }
    });

    // Deterministic merge, in cube order: first SAT wins; a panic voids
    // any UNSAT proof; all-UNSAT is UNSAT; otherwise the merged Unknown.
    let mut interrupts: Vec<Interrupt> = Vec::new();
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut all_unsat = true;
    for (i, slot) in slots.into_iter().enumerate() {
        let out = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every cube slot is filled");
        match out {
            CubeOutcome::Done(SolveResult::Sat, w) => {
                stats.cube_winner = Some(i as u32);
                caller.adopt_from_portfolio(*w.expect("SAT cube keeps its solver"));
                return (SolveResult::Sat, Some(ring));
            }
            CubeOutcome::Done(SolveResult::Unsat, _) => {}
            CubeOutcome::Done(SolveResult::Unknown(int), _) => {
                all_unsat = false;
                interrupts.push(int);
            }
            CubeOutcome::Panicked(p) => {
                all_unsat = false;
                first_panic.get_or_insert(p);
            }
        }
    }
    if all_unsat {
        return (SolveResult::Unsat, Some(ring));
    }
    if interrupts.is_empty() {
        // No model, and the UNSAT cover has a hole torn by a panic: the
        // failure is the only honest outcome.
        std::panic::resume_unwind(first_panic.expect("non-UNSAT without interrupts has a panic"));
    }
    (
        SolveResult::Unknown(merge_interrupts(&interrupts)),
        Some(ring),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    /// 7 pigeons into 6 holes: hard enough to exercise sharing/restarts.
    fn hard_unsat_instance() -> Solver {
        let mut s = Solver::new();
        let n = 7;
        let m = 6;
        let p: Vec<Vec<Lit>> = (0..n).map(|_| lits(&mut s, m)).collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        s
    }

    fn random_cnf(seed: u64, nvars: usize, nclauses: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut s = Solver::new();
        let vs = lits(&mut s, nvars);
        let mut clauses = Vec::new();
        for _ in 0..nclauses {
            let mut c = Vec::new();
            for _ in 0..3 {
                let v = vs[(next() as usize) % nvars];
                c.push(if next() % 2 == 0 { v } else { !v });
            }
            clauses.push(c.clone());
            s.add_clause(c);
        }
        (s, clauses)
    }

    #[test]
    fn parallel_policy_parses() {
        assert_eq!(ParallelPolicy::parse("off"), Ok(ParallelPolicy::Off));
        assert_eq!(ParallelPolicy::parse("1"), Ok(ParallelPolicy::Off));
        assert_eq!(ParallelPolicy::parse("auto"), Ok(ParallelPolicy::Auto));
        assert_eq!(ParallelPolicy::parse("4"), Ok(ParallelPolicy::Portfolio(4)));
        assert!(ParallelPolicy::parse("lots").is_err());
        assert_eq!(ParallelPolicy::Portfolio(2).to_string(), "portfolio(2)");
    }

    #[test]
    fn portfolio_agrees_on_unsat() {
        let mut seq = hard_unsat_instance();
        assert!(seq.solve().is_unsat());
        let mut par = hard_unsat_instance();
        let (r, stats) = solve_portfolio(&mut par, &[], &PortfolioConfig::with_workers(4));
        assert!(r.is_unsat());
        assert_eq!(stats.workers, 4);
        assert!(stats.winner.is_some());
    }

    #[test]
    fn portfolio_model_satisfies_clauses() {
        for seed in [3, 5, 9] {
            let (mut s, clauses) = random_cnf(seed, 40, 120);
            let (r, _) = solve_portfolio(&mut s, &[], &PortfolioConfig::with_workers(3));
            if r.is_sat() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.value_or_false(l)),
                        "portfolio model does not satisfy clause {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn portfolio_respects_assumptions_and_stays_incremental() {
        let mut s = Solver::new();
        let a = s.new_lit();
        let b = s.new_lit();
        s.add_clause([!a, b]);
        let cfg = PortfolioConfig::with_workers(2);
        let (r, _) = solve_portfolio(&mut s, &[a], &cfg);
        assert!(r.is_sat());
        assert_eq!(s.value(b), Some(true));
        // Assumptions do not persist, and the adopted winner is a fully
        // functional incremental solver.
        let (r, _) = solve_portfolio(&mut s, &[!b], &cfg);
        assert!(r.is_sat());
        assert_eq!(s.value(a), Some(false));
        s.add_clause([a]);
        let (r, _) = solve_portfolio(&mut s, &[!a], &cfg);
        assert!(r.is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn cube_fallback_rescues_a_blown_budget() {
        let mut s = hard_unsat_instance();
        // Small enough that the race blows it, large enough that each
        // cube (a strictly easier instance) completes.
        s.set_conflict_budget(Some(80));
        let cfg = PortfolioConfig {
            workers: 2,
            cube_depth: 3,
            ..PortfolioConfig::default()
        };
        let (r, stats) = solve_portfolio(&mut s, &[], &cfg);
        // The race alone must not answer (budget 80 is far below what
        // this instance needs); the fallback may.
        if r.is_unsat() {
            assert!(stats.cube_fallback, "UNSAT must have come from cubes");
            assert_eq!(stats.cubes, 8);
        } else {
            assert!(r.is_unknown());
        }
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat(), "solver survives the fallback");
    }

    #[test]
    fn cube_fallback_disabled_returns_budget_unknown() {
        let mut s = hard_unsat_instance();
        s.set_conflict_budget(Some(5));
        let cfg = PortfolioConfig {
            workers: 2,
            cube_depth: 0,
            ..PortfolioConfig::default()
        };
        let (r, stats) = solve_portfolio(&mut s, &[], &cfg);
        assert_eq!(r, SolveResult::Unknown(Interrupt::ConflictBudget));
        assert!(!stats.cube_fallback);
    }

    #[test]
    fn precancelled_token_stops_the_race() {
        let mut s = hard_unsat_instance();
        let token = CancelToken::new();
        token.cancel();
        s.set_cancel_token(Some(token));
        let (r, _) = solve_portfolio(&mut s, &[], &PortfolioConfig::with_workers(2));
        assert!(r.is_unknown());
        s.set_cancel_token(None);
        let (r, _) = solve_portfolio(&mut s, &[], &PortfolioConfig::with_workers(2));
        assert!(r.is_unsat());
    }

    #[test]
    fn traced_clauses_are_implied_by_the_cnf() {
        let mut s = hard_unsat_instance();
        let (r, stats, shared) =
            solve_portfolio_traced(&mut s, &[], &PortfolioConfig::with_workers(3));
        assert!(r.is_unsat());
        assert_eq!(stats.exported, shared.len() as u64);
        // Spot-check implication for a sample: CNF ∧ ¬C must be UNSAT.
        for clause in shared.iter().step_by(7) {
            let mut probe = hard_unsat_instance();
            let negated: Vec<Lit> = clause.iter().map(|&l| !l).collect();
            assert!(
                probe.solve_with_assumptions(&negated).is_unsat(),
                "shared clause {clause:?} is not implied by the CNF"
            );
        }
    }

    #[test]
    fn ring_full_degrades_to_no_sharing() {
        let mut s = hard_unsat_instance();
        let cfg = PortfolioConfig {
            workers: 3,
            ring_capacity: 4,
            ..PortfolioConfig::default()
        };
        let (r, stats) = solve_portfolio(&mut s, &[], &cfg);
        assert!(r.is_unsat());
        assert!(stats.exported <= 4, "exports stop at ring capacity");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = PortfolioStats {
            workers: 2,
            winner: Some(1),
            exported: 10,
            imported: 4,
            ..PortfolioStats::default()
        };
        let b = PortfolioStats {
            workers: 4,
            winner: Some(0),
            exported: 5,
            imported: 6,
            cube_fallback: true,
            cubes: 8,
            cube_winner: Some(3),
        };
        a.absorb(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.winner, Some(0));
        assert_eq!(a.exported, 15);
        assert_eq!(a.imported, 10);
        assert!(a.cube_fallback);
        assert_eq!(a.cube_winner, Some(3));
    }
}
