//! The CDCL solver core.

use crate::cancel::{CancelToken, Interrupt};
use crate::heap::VarHeap;
use crate::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The search was interrupted — conflict budget, cancellation, or
    /// deadline — before an answer was found. The solver backtracked to
    /// the root level and remains fully usable: learnt clauses are kept
    /// and the next `solve` call starts fresh.
    Unknown(Interrupt),
}

impl SolveResult {
    /// Whether the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }

    /// Whether the result is [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Whether the result is [`SolveResult::Unknown`].
    pub fn is_unknown(self) -> bool {
        matches!(self, SolveResult::Unknown(_))
    }

    /// The interruption cause, for [`SolveResult::Unknown`] results.
    pub fn interrupt(self) -> Option<Interrupt> {
        match self {
            SolveResult::Unknown(i) => Some(i),
            _ => None,
        }
    }
}

/// Aggregate solver statistics, useful for the paper's scalability plots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of decision variables created.
    pub vars: usize,
    /// Number of problem clauses added (after trivial simplification).
    pub clauses: usize,
    /// Number of learnt clauses currently stored.
    pub learnt: usize,
    /// Total conflicts encountered.
    pub conflicts: u64,
    /// Total decisions taken.
    pub decisions: u64,
    /// Total literals propagated.
    pub propagations: u64,
    /// Total restarts performed.
    pub restarts: u64,
    /// Largest LBD (glue) of any clause learnt so far.
    pub max_glue: u32,
    /// Sum of the LBDs of all learnt clauses (for [`Stats::avg_glue`]).
    pub glue_sum: u64,
    /// Number of clauses that contributed to [`Stats::glue_sum`].
    pub glued: u64,
}

impl Stats {
    /// Mean LBD (glue) over every clause learnt so far; zero before the
    /// first conflict.
    pub fn avg_glue(&self) -> f64 {
        if self.glued == 0 {
            0.0
        } else {
            self.glue_sum as f64 / self.glued as f64
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) learnt: bool,
    pub(crate) activity: f32,
    pub(crate) deleted: bool,
    /// Literal-block distance at learn time (0 for problem clauses):
    /// the number of distinct decision levels in the clause. Low-glue
    /// clauses connect few search levels and are empirically the ones
    /// worth keeping forever (Audemard & Simon, IJCAI 2009).
    pub(crate) glue: u32,
}

pub(crate) type ClauseRef = u32;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    /// Cached "other" watched literal: if it is already true the clause is
    /// satisfied and we can skip touching the clause memory.
    pub(crate) blocker: Lit,
}

/// Tunable search heuristics — the diversification axes of the portfolio
/// mode. Every racer solves the same clause database under a different
/// [`SearchParams`]; the defaults reproduce the solver's historical
/// behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Base of the Luby restart schedule (restart after
    /// `restart_base * luby(i)` conflicts).
    pub restart_base: u64,
    /// VSIDS decay factor: `var_inc /= var_decay` after every conflict.
    /// Smaller values forget old conflicts faster.
    pub var_decay: f64,
    /// Initial phase-saving polarity for fresh variables.
    pub default_polarity: bool,
    /// Decision seed. Zero disables randomization; any other value
    /// perturbs saved polarities/activities once (see
    /// [`Solver::set_search_params`]) and occasionally flips a decision
    /// polarity during search.
    pub seed: u64,
}

impl Default for SearchParams {
    fn default() -> SearchParams {
        SearchParams {
            restart_base: 32,
            var_decay: 0.95,
            default_polarity: false,
            seed: 0,
        }
    }
}

/// SplitMix64: a cheap, well-mixed hash for seeding per-variable noise.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A MiniSat-style CDCL SAT solver.
///
/// See the crate-level documentation for an example. The solver is purely
/// incremental in the sense that variables and clauses can be added at any
/// time between `solve` calls, and `solve_with_assumptions` allows querying
/// the same clause database under different temporary hypotheses (gpumc uses
/// this to check safety and liveness over one program encoding).
///
/// The solver is `Clone`: a clone is an independent snapshot of the full
/// search state (database, learnt clauses, activities, saved phases),
/// which is how [`crate::portfolio`] forks diversified racers.
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) clauses: Vec<Clause>,
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    pub(crate) level: Vec<u32>,
    pub(crate) trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    order: VarHeap,
    var_inc: f64,
    /// Set once the clause database is known to be unsatisfiable.
    pub(crate) unsat: bool,
    seen: Vec<bool>,
    stats: Stats,
    /// Conflict budget per solve call; `None` means unlimited.
    conflict_budget: Option<u64>,
    /// Memory budget in bytes; exceeding it stops the solve with
    /// [`Interrupt::MemBudget`]. `None` means unlimited.
    mem_budget: Option<usize>,
    /// Clause-arena byte estimate, maintained incrementally by
    /// [`Solver::attach_clause`] and recomputed by
    /// [`Solver::collect_garbage`].
    lits_bytes: usize,
    /// Extra bytes charged against the budget from outside the arena
    /// (injected allocation spikes, simplifier occurrence lists).
    mem_ballast: usize,
    /// Cooperative cancellation handle, polled between conflicts.
    cancel: Option<CancelToken>,
    /// Clause-activity increment (for learnt-clause deletion).
    cla_inc: f32,
    /// Number of live learnt clauses.
    pub(crate) n_learnt: usize,
    /// Learnt-clause cap before a database reduction.
    max_learnt: usize,
    /// Number of tombstoned (deleted, not yet compacted) arena slots;
    /// the garbage-collection trigger.
    pub(crate) n_deleted: usize,
    /// Variables exempt from elimination/substitution by
    /// [`Solver::simplify`] — the frozen-variable contract. Anything a
    /// caller will read back from a model, assume, or mention in a
    /// later clause must be frozen before simplifying.
    pub(crate) frozen: Vec<bool>,
    /// Variables removed from the search by the simplifier. Their model
    /// values come from [`Solver::value`] via the elimination stack.
    pub(crate) eliminated: Vec<bool>,
    /// Reconstruction records, in elimination order; replayed in reverse
    /// after every `Sat` answer to extend the model over eliminated vars.
    pub(crate) elim_stack: Vec<crate::simplify::ElimRecord>,
    /// Extended model values for eliminated variables.
    pub(crate) ext_model: Vec<LBool>,
    /// Search heuristics; varied per racer by the portfolio mode.
    params: SearchParams,
    /// xorshift64 state for seeded decision randomization (0 = off).
    rand_state: u64,
    /// Learnt-clause exchange endpoint, installed on portfolio racers.
    /// Exports low-glue clauses at learn time, imports foreign clauses at
    /// restarts, and carries the *external* cancellation token so a racer
    /// observes both the race's first-winner cancel (via `cancel`) and
    /// the caller's token.
    exchange: Option<crate::portfolio::ExchangeLink>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: crate::heap::VarHeap::new(),
            var_inc: 1.0,
            unsat: false,
            seen: Vec::new(),
            stats: Stats::default(),
            conflict_budget: None,
            mem_budget: None,
            lits_bytes: 0,
            mem_ballast: 0,
            cancel: None,
            cla_inc: 1.0,
            n_learnt: 0,
            max_learnt: 8_192,
            n_deleted: 0,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            ext_model: Vec::new(),
            params: SearchParams::default(),
            rand_state: 0,
            exchange: None,
        }
    }

    /// The active search heuristics.
    pub fn search_params(&self) -> SearchParams {
        self.params
    }

    /// Replaces the search heuristics.
    ///
    /// With a non-zero seed this also perturbs the saved polarities and
    /// adds tiny deterministic activity jitter for *existing* variables,
    /// so two clones of one solver diverge immediately instead of only
    /// after their restart schedules drift apart.
    pub fn set_search_params(&mut self, params: SearchParams) {
        self.params = params;
        self.rand_state = params.seed;
        if params.seed != 0 {
            for i in 0..self.assigns.len() {
                let h = splitmix64(params.seed ^ (i as u64));
                self.polarity[i] = h & 1 == 1;
                // Jitter far below any bumped activity: only reorders ties.
                self.activity[i] += (h >> 40) as f64 * 1e-14;
            }
            self.order.rebuild(&self.activity);
        }
    }

    /// Returns solver statistics.
    ///
    /// `clauses` and `learnt` count *live* clauses only, matching
    /// [`Solver::num_clauses`]; clauses removed by database reduction are
    /// excluded from both.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.vars = self.assigns.len();
        s.clauses = self.num_clauses();
        s.learnt = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count();
        s
    }

    /// Limits the number of conflicts a single `solve` call may spend.
    ///
    /// Exhausting the budget makes the call return
    /// [`SolveResult::Unknown`] with [`Interrupt::ConflictBudget`]; the
    /// solver stays usable for further calls. The budget applies to each
    /// `solve` call individually. Use `None` (the default) to remove the
    /// limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Caps the solver's estimated memory footprint. When
    /// [`Solver::bytes_in_use`] exceeds the cap, the current `solve`
    /// call stops with [`SolveResult::Unknown`]([`Interrupt::MemBudget`])
    /// instead of growing without bound — an allocation blow-up becomes
    /// a clean per-query `unknown` rather than an OOM kill. The solver
    /// stays usable; deleting learnt clauses (database reduction,
    /// garbage collection) can bring it back under budget.
    pub fn set_mem_budget_bytes(&mut self, bytes: Option<usize>) {
        self.mem_budget = bytes;
    }

    /// Estimated bytes held by the solver: the clause arena (literal
    /// storage plus per-clause bookkeeping, maintained incrementally),
    /// per-variable state (assignments, activities, watch lists, …), and
    /// any ballast charged via [`Solver::add_mem_ballast`]. An estimate,
    /// not an allocator measurement — good enough to bound growth, cheap
    /// enough to poll every conflict.
    pub fn bytes_in_use(&self) -> usize {
        self.lits_bytes + self.assigns.len() * Self::PER_VAR_BYTES + self.mem_ballast
    }

    /// Charges `bytes` of external memory against the budget (injected
    /// allocation spikes; the simplifier's transient occurrence lists).
    pub fn add_mem_ballast(&mut self, bytes: usize) {
        self.mem_ballast = self.mem_ballast.saturating_add(bytes);
    }

    /// Estimated per-clause bookkeeping outside the literal array:
    /// `Clause` header plus the two watcher entries.
    pub(crate) const CLAUSE_OVERHEAD: usize = 56;
    /// Estimated bytes of per-variable state across all solver arrays.
    const PER_VAR_BYTES: usize = 96;

    /// Recomputes the incremental arena estimate from the live clauses.
    pub(crate) fn recompute_lits_bytes(&mut self) {
        self.lits_bytes = self
            .clauses
            .iter()
            .filter(|c| !c.deleted)
            .map(|c| c.lits.len() * std::mem::size_of::<Lit>() + Self::CLAUSE_OVERHEAD)
            .sum();
    }

    #[inline]
    fn over_mem_budget(&self) -> bool {
        self.mem_budget.is_some_and(|b| self.bytes_in_use() > b)
    }

    /// The configured memory budget (the simplifier's between-pass
    /// checks read it to abort early).
    pub(crate) fn mem_budget_bytes(&self) -> Option<usize> {
        self.mem_budget
    }

    /// Installs a [`CancelToken`] polled between conflicts and decisions;
    /// when it fires, the current and all future `solve` calls return
    /// [`SolveResult::Unknown`] until the token is replaced or removed.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(self.params.default_polarity);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.ext_model.push(LBool::Undef);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.push(v, &self.activity);
        v
    }

    /// Exempts a variable from elimination and substitution by
    /// [`Solver::simplify`].
    ///
    /// This is the frozen-variable contract: any variable whose model
    /// value will be read back, that will appear in a future clause or
    /// assumption, or that a later query can otherwise touch, must be
    /// frozen *before* the simplifier runs. Unfrozen variables may be
    /// resolved away; mentioning one afterwards is a caller bug and
    /// panics in [`Solver::add_clause`] / assumption handling.
    pub fn freeze(&mut self, v: Var) {
        self.frozen[v.index()] = true;
    }

    /// Whether [`Solver::freeze`] was called for this variable.
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// Whether the simplifier removed this variable from the search.
    /// Its model value is still available through [`Solver::value`].
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Creates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        self.new_var().pos()
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem (non-learnt, non-deleted) clauses. Always
    /// equals [`Solver::stats`]`().clauses`.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the clause made the database trivially
    /// unsatisfiable (e.g. it was empty after simplification).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        // Clause addition happens at the root level; a model left in
        // place by a previous `Sat` answer is discarded.
        self.backtrack_to(0);
        if self.unsat {
            return false;
        }
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        assert!(
            ls.iter().all(|l| !self.eliminated[l.var().index()]),
            "clause mentions an eliminated variable — freeze() it before simplify()"
        );
        ls.sort_unstable();
        ls.dedup();
        // Remove false literals, drop satisfied/tautological clauses.
        let mut i = 0;
        while i < ls.len() {
            if i + 1 < ls.len() && ls[i] == !ls[i + 1] {
                return true; // tautology: x | ~x
            }
            match self.lit_value(ls[i]) {
                LBool::True => return true,
                LBool::False => {
                    ls.remove(i);
                }
                LBool::Undef => i += 1,
            }
        }
        match ls.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.unchecked_enqueue(ls[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
                !self.unsat
            }
            _ => {
                self.attach_clause(ls, false, 0);
                true
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, glue: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[lits[0].index()].push(w0);
        self.watches[lits[1].index()].push(w1);
        if learnt {
            self.n_learnt += 1;
        }
        self.lits_bytes += lits.len() * std::mem::size_of::<Lit>() + Self::CLAUSE_OVERHEAD;
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: if learnt { self.cla_inc } else { 0.0 },
            deleted: false,
            glue,
        });
        cref
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in self.clauses.iter_mut().filter(|c| c.learnt) {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Deletes the less-active half of the learnt clauses (keeping
    /// binary clauses, glue ≤ 2 clauses, and clauses currently used as
    /// reasons), then compacts the arena once half of it is tombstones.
    fn reduce_db(&mut self) {
        let mut acts: Vec<f32> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted && c.lits.len() > 2 && c.glue > 2)
            .map(|c| c.activity)
            .collect();
        if acts.len() < 2 {
            return;
        }
        acts.sort_by(f32::total_cmp);
        let median = acts[acts.len() / 2];
        let locked: std::collections::HashSet<ClauseRef> =
            self.reason.iter().flatten().copied().collect();
        for (i, c) in self.clauses.iter_mut().enumerate() {
            if c.learnt
                && !c.deleted
                && c.lits.len() > 2
                && c.glue > 2
                && c.activity < median
                && !locked.contains(&(i as ClauseRef))
            {
                c.deleted = true;
                self.n_learnt -= 1;
                self.n_deleted += 1;
            }
        }
        self.max_learnt += self.max_learnt / 10;
        if self.n_deleted * 2 >= self.clauses.len() {
            self.collect_garbage();
        }
    }

    /// Compacts the clause arena: drops tombstoned clauses and remaps
    /// every [`ClauseRef`] held by watcher lists and `reason[]`.
    ///
    /// Sound mid-search because reason clauses are never tombstoned
    /// (`reduce_db` skips locked clauses; the simplifier clears root
    /// reasons before deleting anything).
    pub(crate) fn collect_garbage(&mut self) {
        let mut map: Vec<ClauseRef> = vec![ClauseRef::MAX; self.clauses.len()];
        let mut next: ClauseRef = 0;
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.deleted {
                map[i] = next;
                next += 1;
            }
        }
        self.clauses.retain(|c| !c.deleted);
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                let m = map[w.cref as usize];
                w.cref = m;
                m != ClauseRef::MAX
            });
        }
        for cr in self.reason.iter_mut().flatten() {
            debug_assert_ne!(map[*cr as usize], ClauseRef::MAX, "reason clause deleted");
            *cr = map[*cr as usize];
        }
        self.n_deleted = 0;
        self.recompute_lits_bytes();
    }

    /// Arena occupancy: `(total slots, tombstoned slots)`. Test hook for
    /// the garbage-collection bound; not part of the public API.
    #[doc(hidden)]
    pub fn arena_stats(&self) -> (usize, usize) {
        (
            self.clauses.len(),
            self.clauses.iter().filter(|c| c.deleted).count(),
        )
    }

    /// Overrides the learnt-clause cap that triggers database
    /// reduction. Test hook; not part of the public API.
    #[doc(hidden)]
    pub fn set_max_learnt(&mut self, cap: usize) {
        self.max_learnt = cap;
    }

    #[inline]
    pub(crate) fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].under(l.is_positive())
    }

    /// Model value of a literal, consulting the extended model for
    /// variables the simplifier eliminated.
    #[inline]
    pub(crate) fn model_lit(&self, l: Lit) -> LBool {
        let v = l.var().index();
        if self.eliminated[v] {
            self.ext_model[v].under(l.is_positive())
        } else {
            self.assigns[v].under(l.is_positive())
        }
    }

    /// Value of a literal in the last satisfying model (after a `Sat` result).
    ///
    /// Returns `None` for variables the search never assigned (they are
    /// unconstrained and may take either value). Variables eliminated by
    /// [`Solver::simplify`] answer from the reconstructed model, so
    /// callers cannot tell whether a variable was eliminated.
    pub fn value(&self, l: Lit) -> Option<bool> {
        match self.model_lit(l) {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Value of a literal in the model, defaulting unconstrained variables
    /// to `false`.
    pub fn value_or_false(&self, l: Lit) -> bool {
        self.value(l).unwrap_or(false)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.reason[v] = from;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut keep = 0;
            let mut i = 0;
            'next_watcher: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: the blocker is already true.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    continue; // drop the watcher
                }
                // Ensure false_lit is at position 1.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[keep] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cref].lits.len() {
                    if self.lit_value(self.clauses[cref].lits[k]) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        let new_watch = self.clauses[cref].lits[1];
                        self.watches[new_watch.index()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'next_watcher;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[keep] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                keep += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    // Copy remaining watchers back.
                    while i < ws.len() {
                        ws[keep] = ws[i];
                        keep += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(keep);
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    /// First-UIP conflict analysis.
    ///
    /// Returns the learnt clause (asserting literal first) and the level to
    /// backtrack to.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let cur_level = self.decision_level();

        loop {
            self.bump_clause(conflict);
            let start = usize::from(p.is_some());
            // Iterate over the literals of the conflicting/reason clause.
            for k in start..self.clauses[conflict as usize].lits.len() {
                let q = self.clauses[conflict as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            conflict = self.reason[lit.var().index()].expect("non-decision must have reason");
        }

        // Local clause minimization: drop literals whose reason clause is
        // subsumed by the remaining learnt literals (MiniSat's cheap
        // variant). `seen` still marks the learnt literals here.
        for l in &learnt {
            self.seen[l.var().index()] = true;
        }
        let mut minimized = vec![learnt[0]];
        'lits: for &l in &learnt[1..] {
            let Some(cr) = self.reason[l.var().index()] else {
                minimized.push(l);
                continue;
            };
            for k in 1..self.clauses[cr as usize].lits.len() {
                let q = self.clauses[cr as usize].lits[k];
                if !self.seen[q.var().index()] && self.level[q.var().index()] > 0 {
                    minimized.push(l);
                    continue 'lits;
                }
            }
        }
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let mut learnt = minimized;

        // Find backtrack level: max level among learnt[1..].
        let mut bt_level = 0;
        let mut max_i = 1;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt_level {
                bt_level = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i);
        }
        (learnt, bt_level)
    }

    /// Literal-block distance of a learnt clause: the number of distinct
    /// decision levels among its literals (computed before backtracking).
    fn compute_glue(&self, learnt: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.index()] = l.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            if !self.order.contains(v) {
                self.order.push(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        // With a seed armed, occasionally flip the phase of a decision —
        // the cheap per-decision diversification axis. Completeness is
        // untouched: the variable choice itself stays VSIDS-driven.
        let mut flip = false;
        if self.rand_state != 0 {
            let mut x = self.rand_state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.rand_state = x;
            flip = x.is_multiple_of(61);
        }
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()] {
                return Some(Lit::new(v, self.polarity[v.index()] ^ flip));
            }
        }
        None
    }

    /// Installs (or removes) the portfolio clause-exchange endpoint.
    pub(crate) fn set_exchange(&mut self, link: Option<crate::portfolio::ExchangeLink>) {
        self.exchange = link;
    }

    /// Checks the *caller's* token carried by the exchange link, in
    /// addition to the racer-local `cancel` (the race token).
    #[inline]
    fn external_stop(&self, poll_clock: bool) -> Option<Interrupt> {
        self.exchange
            .as_ref()
            .and_then(|x| x.external_stop(poll_clock))
    }

    /// Drains foreign learnt clauses from the exchange ring into the
    /// database. Must be called at decision level 0 (imported units are
    /// enqueued directly; the next `propagate` absorbs them). Returns
    /// `Some(Unsat)` when an import empties under the root assignment.
    fn import_shared(&mut self) -> Option<SolveResult> {
        debug_assert_eq!(self.decision_level(), 0);
        let mut link = self.exchange.take()?;
        let mut out = None;
        while let Some((lits, glue)) = link.next_import() {
            let mut ls = lits;
            let mut satisfied = false;
            ls.retain(|&l| match self.lit_value(l) {
                LBool::True => {
                    satisfied = true;
                    false
                }
                LBool::False => false,
                LBool::Undef => true,
            });
            if satisfied {
                continue;
            }
            match ls.len() {
                0 => {
                    self.unsat = true;
                    out = Some(SolveResult::Unsat);
                    break;
                }
                1 => self.unchecked_enqueue(ls[0], None),
                _ => {
                    self.attach_clause(ls, true, glue);
                }
            }
        }
        self.exchange = Some(link);
        out
    }

    /// Replaces this solver's state with a portfolio winner's, keeping
    /// the caller-facing configuration (params, budgets, token) so the
    /// adoption is invisible except for the extra learnt clauses and the
    /// winner's model/verdict. Stats are monotone: the winner is a clone
    /// of `self` that only did *more* work.
    pub(crate) fn adopt_from_portfolio(&mut self, mut winner: Solver) {
        winner.params = self.params;
        winner.rand_state = self.rand_state;
        winner.conflict_budget = self.conflict_budget;
        winner.mem_budget = self.mem_budget;
        winner.cancel = self.cancel.take();
        winner.exchange = None;
        *self = winner;
    }

    /// The `k` unassigned, non-eliminated variables with the highest
    /// VSIDS activity (ties broken by index) — the cube split variables.
    /// Call at decision level 0.
    pub(crate) fn top_vsids_vars(&self, k: usize, exclude: &[Var]) -> Vec<Var> {
        let mut vs: Vec<Var> = (0..self.assigns.len() as u32)
            .map(Var)
            .filter(|v| {
                self.assigns[v.index()] == LBool::Undef
                    && !self.eliminated[v.index()]
                    && !exclude.contains(v)
            })
            .collect();
        vs.sort_by(|a, b| {
            self.activity[b.index()]
                .total_cmp(&self.activity[a.index()])
                .then(a.index().cmp(&b.index()))
        });
        vs.truncate(k);
        vs
    }

    /// Solves the current clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under temporary assumptions (literals forced true for this
    /// call only). The clause database is unchanged afterwards.
    ///
    /// Safe to call repeatedly without `clear_model`: a `Sat` answer
    /// leaves its satisfying assignment on the trail so `value` works,
    /// and the next call discards it here before establishing its own
    /// assumptions. (Previously a stale assignment made follow-up
    /// queries silently ignore their assumptions in release builds.)
    ///
    /// Returns [`SolveResult::Unknown`] — never panics — when the
    /// per-call conflict budget runs out or the installed
    /// [`CancelToken`] fires; the solver backtracks to the root level
    /// and the next call behaves as if the interrupted one never ran
    /// (modulo kept learnt clauses, which are implied by the database).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        assert!(
            assumptions
                .iter()
                .all(|l| !self.eliminated[l.var().index()]),
            "assumption mentions an eliminated variable — freeze() it before simplify()"
        );
        if self.unsat {
            return SolveResult::Unsat;
        }
        // A pre-cancelled token stops the call before any search; an
        // encoding already over the memory budget never starts one.
        if let Some(i) = self.cancel.as_ref().and_then(|c| c.should_stop(true)) {
            return SolveResult::Unknown(i);
        }
        if let Some(i) = self.external_stop(true) {
            return SolveResult::Unknown(i);
        }
        if self.over_mem_budget() {
            return SolveResult::Unknown(Interrupt::MemBudget);
        }
        self.backtrack_to(0);
        if let Some(r) = self.import_shared() {
            return r;
        }
        let mut luby_index = 0u64;
        let entry_conflicts = self.stats.conflicts;
        let mut conflicts_at_start = self.stats.conflicts;
        let mut restart_limit = self.params.restart_base * luby(luby_index);
        let mut decisions = 0u64;
        let result = 'outer: loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                let spent = self.stats.conflicts - entry_conflicts;
                if self.conflict_budget.is_some_and(|budget| spent > budget) {
                    break SolveResult::Unknown(Interrupt::ConflictBudget);
                }
                // The flag is polled every conflict (a relaxed load); the
                // deadline clock read is amortized over 128 conflicts.
                if let Some(i) = self
                    .cancel
                    .as_ref()
                    .and_then(|c| c.should_stop(spent.is_multiple_of(128)))
                {
                    break SolveResult::Unknown(i);
                }
                if let Some(i) = self.external_stop(spent.is_multiple_of(128)) {
                    break SolveResult::Unknown(i);
                }
                // The byte estimate is maintained incrementally, so the
                // budget check is O(1) and safe to run every conflict.
                if self.over_mem_budget() {
                    break SolveResult::Unknown(Interrupt::MemBudget);
                }
                match gpumc_fault::hit(gpumc_fault::points::SAT_CONFLICT) {
                    Some(gpumc_fault::FaultSignal::SpuriousUnknown) => {
                        break SolveResult::Unknown(Interrupt::Injected);
                    }
                    Some(gpumc_fault::FaultSignal::AllocSpike(b)) => {
                        let charged = gpumc_fault::materialize_spike(b);
                        self.mem_ballast = self.mem_ballast.saturating_add(charged);
                    }
                    None => {}
                }
                if self.decision_level() == 0 {
                    self.unsat = true;
                    break SolveResult::Unsat;
                }
                // If the conflict is at or below the assumption levels we
                // must check whether it depends only on assumptions.
                let (learnt, bt) = self.analyze(confl);
                let glue = self.compute_glue(&learnt);
                self.stats.max_glue = self.stats.max_glue.max(glue);
                self.stats.glue_sum += u64::from(glue);
                self.stats.glued += 1;
                // Learnt clauses are implied by the shared database, so
                // racers may exchange them freely; low glue first.
                if let Some(link) = self.exchange.as_mut() {
                    link.maybe_export(&learnt, glue);
                }
                // Do not backtrack past the assumptions; if the learnt clause
                // asserts below assumption depth, re-propagation decides.
                self.backtrack_to(bt);
                if learnt.len() == 1 {
                    if self.decision_level() > 0 {
                        // learnt unit conflicts with assumption context:
                        // backtrack fully and enqueue at root.
                        self.backtrack_to(0);
                    }
                    if self.lit_value(learnt[0]) == LBool::False {
                        self.unsat = true;
                        break SolveResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], None);
                    }
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true, glue);
                    if self.lit_value(asserting) == LBool::Undef {
                        self.unchecked_enqueue(asserting, Some(cref));
                    } else if self.lit_value(asserting) == LBool::False {
                        // Clause still conflicting after backtrack (can
                        // happen when clamped by assumptions): give up on
                        // this assumption context.
                        if self.decision_level() == 0 {
                            self.unsat = true;
                        }
                        break SolveResult::Unsat;
                    }
                }
                // Restart handling.
                if self.stats.conflicts - conflicts_at_start >= restart_limit {
                    self.stats.restarts += 1;
                    luby_index += 1;
                    conflicts_at_start = self.stats.conflicts;
                    restart_limit = self.params.restart_base * luby(luby_index);
                    self.backtrack_to(0);
                    // Root level is the one safe point to absorb foreign
                    // learnt clauses (units enqueue cleanly, watches see
                    // no false literals).
                    if let Some(r) = self.import_shared() {
                        break r;
                    }
                }
                if self.n_learnt > self.max_learnt {
                    self.reduce_db();
                }
                self.var_inc /= self.params.var_decay;
                self.cla_inc /= 0.999;
            } else {
                // Re-establish assumptions that are not yet on the trail.
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: open an empty decision level
                            // so indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            break 'outer SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                            continue 'outer;
                        }
                    }
                }
                // Long conflict-free stretches (huge easy instances) must
                // also observe cancellation: poll every 1024 decisions.
                decisions += 1;
                if decisions.is_multiple_of(1024) {
                    if let Some(i) = self.cancel.as_ref().and_then(|c| c.should_stop(true)) {
                        break SolveResult::Unknown(i);
                    }
                    if let Some(i) = self.external_stop(true) {
                        break SolveResult::Unknown(i);
                    }
                }
                match self.pick_branch() {
                    None => break SolveResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        };
        // Unknown unwinds like Unsat: back to the root, partial
        // assignment discarded, learnt clauses kept — the solver is
        // reusable and the interrupted query left no trace beyond
        // database-implied learning.
        if matches!(result, SolveResult::Unsat | SolveResult::Unknown(_)) {
            self.backtrack_to(0);
        }
        // On SAT we leave the assignment in place so `value` works; the next
        // solve call must start from level 0 though. Eliminated variables
        // get their values reconstructed from the elimination stack.
        if result.is_sat() {
            self.extend_model();
        }
        result
    }

    /// Prepares the solver for another `solve` after a `Sat` answer
    /// (clears the model assignment back to the root level).
    pub fn clear_model(&mut self) {
        self.backtrack_to(0);
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), zero-indexed.
fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn clause_counts_exclude_deleted_clauses() {
        // `stats().clauses` and `num_clauses()` must agree and count live
        // clauses only — deletion (database reduction) removes a clause
        // from both, whether problem or learnt.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        s.add_clause([v[1], v[2]]);
        assert_eq!(s.num_clauses(), 3);
        assert_eq!(s.stats().clauses, 3);

        // Simulate what reduce_db does to a clause.
        s.clauses[1].deleted = true;
        assert_eq!(s.num_clauses(), 2, "deleted clauses are not live");
        assert_eq!(
            s.stats().clauses,
            s.num_clauses(),
            "stats() and num_clauses() agree on live clauses"
        );

        // A deleted learnt clause disappears from the learnt count too.
        s.clauses.push(Clause {
            lits: vec![v[0], v[2]],
            learnt: true,
            activity: 0.0,
            deleted: false,
            glue: 0,
        });
        assert_eq!(s.stats().learnt, 1);
        s.clauses.last_mut().unwrap().deleted = true;
        assert_eq!(s.stats().learnt, 0);
        assert_eq!(
            s.num_clauses(),
            2,
            "learnt clauses never count as problem clauses"
        );
    }

    #[test]
    fn unit_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0]]);
        s.add_clause([!v[1]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
    }

    #[test]
    fn direct_contradiction() {
        let mut s = Solver::new();
        let a = s.new_lit();
        s.add_clause([a]);
        assert!(!s.add_clause([!a]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0]]);
        for i in 0..3 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[3]), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i1 < i2 index pairs read better as ranges
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3).map(|_| lits(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i1 < i2 index pairs read better as ranges
    fn pigeonhole_5_into_4_is_unsat() {
        let mut s = Solver::new();
        let n = 5;
        let m = 4;
        let p: Vec<Vec<Lit>> = (0..n).map(|_| lits(&mut s, m)).collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn xor_chain_sat_and_model_correct() {
        // x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1 => x1=0, x2=1
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor_true = |s: &mut Solver, a: Lit, b: Lit| {
            s.add_clause([a, b]);
            s.add_clause([!a, !b]);
        };
        xor_true(&mut s, v[0], v[1]);
        xor_true(&mut s, v[1], v[2]);
        s.add_clause([v[0]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let a = s.new_lit();
        let b = s.new_lit();
        s.add_clause([!a, b]);
        assert!(s.solve_with_assumptions(&[a]).is_sat());
        assert_eq!(s.value(b), Some(true));
        s.clear_model();
        assert!(s.solve_with_assumptions(&[!b]).is_sat());
        assert_eq!(s.value(b), Some(false));
        s.clear_model();
        // Contradicting assumptions => Unsat, but database still SAT after.
        s.add_clause([a]);
        assert!(s.solve_with_assumptions(&[!a]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn repeated_queries_without_clear_model_are_well_defined() {
        // Regression: a Sat answer leaves its satisfying assignment on the
        // trail (so `value` works). A follow-up `solve_with_assumptions`
        // used to assume it started at decision level 0; with the stale
        // trail still deep enough, the assumption-establishment loop never
        // ran and the new assumptions were silently ignored in release
        // builds. Repeated queries must be well-defined without an
        // intervening `clear_model`.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        assert!(s.solve_with_assumptions(&[v[0], v[1], v[2]]).is_sat());
        assert_eq!(s.value(v[0]), Some(true));
        // No clear_model: the next query must still honour its assumptions.
        assert!(s.solve_with_assumptions(&[!v[0], !v[1]]).is_sat());
        assert_eq!(s.value(v[0]), Some(false), "assumption !v0 was ignored");
        assert_eq!(s.value(v[1]), Some(false), "assumption !v1 was ignored");
        assert_eq!(s.value(v[2]), Some(true));
        // Assumption-level Unsat, again without clearing first.
        assert!(s.solve_with_assumptions(&[!v[0], !v[1], !v[2]]).is_unsat());
        // ... and the base formula is still Sat afterwards.
        assert!(s.solve().is_sat());
        // A query straight after the assumption-Unsat (conflict state) is
        // also well-defined.
        assert!(s.solve_with_assumptions(&[!v[0], !v[1], !v[2]]).is_unsat());
        assert!(s.solve_with_assumptions(&[!v[1], v[2]]).is_sat());
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn model_satisfies_all_clauses_randomized() {
        // Deterministic pseudo-random 3-SAT instances near the easy region;
        // verify returned models actually satisfy every clause.
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..20 {
            let nvars = 30 + (round % 5) * 10;
            let nclauses = nvars * 3;
            let mut s = Solver::new();
            let vs = lits(&mut s, nvars);
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vs[(next() as usize) % nvars];
                    let l = if next() % 2 == 0 { v } else { !v };
                    c.push(l);
                }
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if s.solve().is_sat() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.value_or_false(l)),
                        "model does not satisfy clause {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_lit();
        let b = s.new_lit();
        s.add_clause([a, a, b]);
        s.add_clause([a, !a]); // tautology, dropped
        assert!(s.solve().is_sat());
    }

    /// A hard pigeonhole-style instance the solver needs many conflicts
    /// for — the workbench for budget/cancellation tests.
    fn hard_unsat_instance() -> Solver {
        let mut s = Solver::new();
        let n = 7;
        let m = 6;
        let p: Vec<Vec<Lit>> = (0..n).map(|_| lits(&mut s, m)).collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        s
    }

    #[test]
    fn budget_exhaustion_returns_unknown_not_panic() {
        let mut s = hard_unsat_instance();
        s.set_conflict_budget(Some(3));
        let r = s.solve();
        assert_eq!(r, SolveResult::Unknown(Interrupt::ConflictBudget));
        assert!(r.is_unknown());
        assert!(!r.is_sat() && !r.is_unsat());
    }

    #[test]
    fn solver_is_reusable_after_budget_unknown() {
        // Regression for the serve stack: a mid-solve interruption must
        // leave the solver able to answer the next query correctly.
        let mut s = hard_unsat_instance();
        s.set_conflict_budget(Some(2));
        assert!(s.solve().is_unknown());
        // Budget is per-call: a second tiny-budget call is also Unknown,
        // not instantly dead from cumulative accounting.
        assert!(s.solve().is_unknown());
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat(), "the instance is really unsat");
    }

    #[test]
    fn mem_budget_exhaustion_returns_unknown_and_solver_survives() {
        let mut s = hard_unsat_instance();
        assert!(s.bytes_in_use() > 0, "the arena estimate must be live");
        // A budget below what the instance already uses stops the solve
        // before any search; the solver stays usable afterwards.
        s.set_mem_budget_bytes(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::MemBudget));
        s.set_mem_budget_bytes(None);
        assert!(s.solve().is_unsat(), "the instance is really unsat");
    }

    #[test]
    fn mem_budget_triggers_mid_search_from_learnt_growth() {
        // A budget a little above the initial footprint lets the search
        // start, then trips as learnt clauses accumulate.
        let mut s = hard_unsat_instance();
        let base = s.bytes_in_use();
        s.set_mem_budget_bytes(Some(base + 512));
        let r = s.solve();
        assert_eq!(r, SolveResult::Unknown(Interrupt::MemBudget));
        assert!(s.bytes_in_use() > base, "learnt clauses were accounted");
        s.set_mem_budget_bytes(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn ballast_counts_against_the_budget() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let base = s.bytes_in_use();
        s.set_mem_budget_bytes(Some(base + (1 << 20)));
        assert!(s.solve().is_sat());
        s.add_mem_ballast(2 << 20);
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::MemBudget));
    }

    #[test]
    fn bytes_estimate_shrinks_after_garbage_collection() {
        let mut s = hard_unsat_instance();
        s.set_max_learnt(64);
        assert!(s.solve().is_unsat());
        // Recomputing from live clauses must agree with the incremental
        // estimate after a GC pass.
        let before = s.bytes_in_use();
        s.collect_garbage();
        assert!(s.bytes_in_use() <= before);
        let incremental = s.bytes_in_use();
        s.recompute_lits_bytes();
        assert_eq!(s.bytes_in_use(), incremental);
    }

    #[test]
    fn injected_conflict_fault_reports_unknown_without_lying() {
        let plan = std::sync::Arc::new(gpumc_fault::FaultPlan::single(
            gpumc_fault::points::SAT_CONFLICT,
            gpumc_fault::FaultKind::SpuriousUnknown,
        ));
        let mut s = hard_unsat_instance();
        {
            let _g = gpumc_fault::scoped(plan);
            assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::Injected));
        }
        // With the plan disarmed the same solver answers correctly.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn cancellation_preserves_verdicts() {
        // Cancellation can only withhold an answer, never flip one: the
        // same database answers Sat correctly after an interrupted call.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        let token = CancelToken::new();
        token.cancel();
        s.set_cancel_token(Some(token));
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::Cancelled));
        s.set_cancel_token(None);
        assert!(s.solve().is_sat());
        assert!(s.value_or_false(v[0]) || s.value_or_false(v[1]));
    }

    #[test]
    fn expired_deadline_interrupts_before_search() {
        let mut s = hard_unsat_instance();
        s.set_cancel_token(Some(CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        )));
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::DeadlineExpired));
        s.set_cancel_token(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_work_after_interrupt() {
        let mut s = hard_unsat_instance();
        let extra = s.new_lit();
        s.add_clause([extra]);
        s.set_conflict_budget(Some(1));
        assert!(s.solve().is_unknown());
        s.set_conflict_budget(None);
        // Assumption-level queries are still well-defined afterwards.
        assert!(s.solve_with_assumptions(&[!extra]).is_unsat());
        assert!(s.solve_with_assumptions(&[extra]).is_unsat());
    }

    #[test]
    fn long_run_keeps_clause_arena_bounded() {
        // Regression: reduce_db used to only tombstone clauses, so an
        // adversarial run grew `self.clauses` without bound. With arena
        // garbage collection the tombstone share must stay below the 50%
        // trigger, and the arena must stay within a small factor of the
        // live clause count.
        let mut s = hard_unsat_instance();
        // A tiny learnt cap forces many reduce_db cycles within the run.
        s.set_max_learnt(64);
        assert!(s.solve().is_unsat());
        let (len, dead) = s.arena_stats();
        assert!(
            dead * 2 < len.max(1),
            "arena is majority-tombstones after a long run: {dead}/{len}"
        );
        let st = s.stats();
        let live = st.clauses + st.learnt;
        assert!(
            len <= 2 * live + 2,
            "arena length {len} not bounded by live clauses {live}"
        );
        assert!(
            st.conflicts > 200,
            "instance too easy to exercise reduce_db ({} conflicts)",
            st.conflicts
        );
    }

    #[test]
    fn glue_statistics_are_recorded() {
        let mut s = hard_unsat_instance();
        assert!(s.solve().is_unsat());
        let st = s.stats();
        assert!(st.glued > 0, "conflicts must record glue");
        assert!(st.max_glue >= 1);
        assert!(st.avg_glue() >= 1.0);
        assert!(st.avg_glue() <= f64::from(st.max_glue));
    }

    #[test]
    fn stats_track_progress() {
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        for i in 0..5 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        s.add_clause([v[0]]);
        let _ = s.solve();
        let st = s.stats();
        assert_eq!(st.vars, 6);
        assert!(st.propagations > 0);
    }
}
