//! A from-scratch CDCL SAT solver with a small bit-vector layer.
//!
//! This crate is the "SMT substrate" of the gpumc workspace. The paper's
//! tool (Dartagnan) encodes program semantics modulo a `.cat` consistency
//! model as an SMT formula and hands it to an off-the-shelf solver. The
//! sanctioned offline dependency set contains no solver, so we build one:
//!
//! * [`Solver`] — a MiniSat-style conflict-driven clause-learning solver
//!   with two-watched-literal propagation, first-UIP learning, VSIDS
//!   branching, phase saving, and Luby restarts.
//! * [`Formula`] — a Tseitin-transformation layer for building circuits
//!   (AND/OR/ITE/IFF gates, cardinality helpers) on top of raw clauses.
//! * [`bv`] — fixed-width bit-vector terms (constants, variables, adders,
//!   equality, multiplexers) bit-blasted onto the solver, replacing the
//!   integer reasoning an SMT solver would provide.
//!
//! # Example
//!
//! ```
//! use gpumc_sat::Solver;
//!
//! let mut s = Solver::new();
//! let a = s.new_lit();
//! let b = s.new_lit();
//! s.add_clause([a, b]);
//! s.add_clause([!a, b]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

pub mod bv;
mod cancel;
mod heap;
pub mod portfolio;
mod simplify;
mod solver;
mod tseitin;

pub use cancel::{CancelToken, Interrupt};
pub use portfolio::{ParallelPolicy, PortfolioConfig, PortfolioStats};
pub use simplify::SimplifyStats;
pub use solver::{SearchParams, SolveResult, Solver, Stats};
pub use tseitin::Formula;

/// A propositional variable, numbered from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    ///
    /// Not `std::ops::Neg`: this maps a `Var` to a `Lit`, it does not negate
    /// a value of the same type.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var * 2 + sign` where `sign == 0` means positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub(crate) fn from_index(idx: usize) -> Lit {
        Lit(idx as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "~x{}", self.var().0)
        }
    }
}

/// Ternary truth value used for partial assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Truth value of a literal given the truth value of its variable.
    #[inline]
    pub(crate) fn under(self, positive: bool) -> LBool {
        match (self, positive) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
    }

    #[test]
    fn lbool_under_polarity() {
        assert_eq!(LBool::True.under(true), LBool::True);
        assert_eq!(LBool::True.under(false), LBool::False);
        assert_eq!(LBool::False.under(true), LBool::False);
        assert_eq!(LBool::False.under(false), LBool::True);
        assert_eq!(LBool::Undef.under(true), LBool::Undef);
    }

    #[test]
    fn display_literal() {
        assert_eq!(Var(3).pos().to_string(), "x3");
        assert_eq!(Var(3).neg().to_string(), "~x3");
    }
}
