//! SatELite-style CNF simplification (Eén & Biere, SAT 2005).
//!
//! [`Solver::simplify`] runs three classic preprocessing techniques at
//! the root level, in this order:
//!
//! 1. **Equivalent-literal substitution** — strongly connected
//!    components of the binary implication graph collapse to one
//!    representative literal; every other literal in the component is
//!    rewritten away.
//! 2. **Subsumption and self-subsuming resolution** — occurrence lists
//!    plus 64-bit clause signatures find clauses that contain (or
//!    almost contain) another clause; supersets are deleted, near-
//!    supersets are strengthened by dropping the clashing literal.
//! 3. **Bounded variable elimination** — a variable whose resolvent
//!    count does not exceed its occurrence count is resolved away by
//!    clause distribution (this subsumes pure-literal elimination).
//!
//! Because gpumc reads witness values back out of the model and poses
//! later queries over activation literals, elimination is only sound
//! for variables the caller will never touch again. That is the
//! **frozen-variable contract**: [`Solver::freeze`] exempts a variable
//! from elimination and substitution; mentioning an *eliminated*
//! variable in a later clause or assumption panics. Model values of
//! eliminated variables stay observable through [`Solver::value`] — an
//! elimination stack records enough of each variable's clauses to
//! reconstruct a full model after every `Sat` answer
//! ([`Solver::extend_model`]).
//!
//! The pass is a proper *inprocessing* step: it can run again between
//! solve calls (learnt clauses are rewritten, deleted, or promoted as
//! soundness requires), though gpumc currently runs it once per
//! encoding, after the last build-time clause and before the first
//! query.

use std::time::Instant;

use crate::solver::{Clause, ClauseRef, Solver, Watcher};
use crate::{LBool, Lit, Var};

/// Occurrence lists longer than this are not scanned for subsumption.
const SUB_OCC_CAP: usize = 1_000;
/// Variables with more occurrences than this are never eliminated.
const BVE_OCC_CAP: usize = 80;
/// Skip elimination when the positive × negative clause product (the
/// number of resolvent checks) exceeds this.
const BVE_PRODUCT_CAP: usize = 4_096;

/// What one [`Solver::simplify`] call did, for `--stats` style output
/// and the perf-trajectory benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Unassigned, uneliminated variables before the pass.
    pub vars_before: usize,
    /// Unassigned, uneliminated variables after the pass.
    pub vars_after: usize,
    /// Live clauses before the pass.
    pub clauses_before: usize,
    /// Live clauses after the pass.
    pub clauses_after: usize,
    /// Total literals over live clauses before the pass.
    pub literals_before: usize,
    /// Total literals over live clauses after the pass.
    pub literals_after: usize,
    /// Variables removed by bounded variable elimination.
    pub vars_eliminated: usize,
    /// Variables removed by equivalent-literal substitution.
    pub equivs_substituted: usize,
    /// Clauses deleted because another clause subsumes them.
    pub clauses_subsumed: usize,
    /// Literal deletions by self-subsuming resolution.
    pub clauses_strengthened: usize,
    /// Net literal reduction (`literals_before - literals_after`).
    pub literals_removed: usize,
    /// Wall time of the pass, in microseconds.
    pub time_us: u64,
}

impl SimplifyStats {
    /// Combines statistics of two consecutive passes over the same
    /// solver: "before" figures come from the earlier run, "after"
    /// figures from the later one, and the work counters add up.
    pub fn merged(&self, later: &SimplifyStats) -> SimplifyStats {
        SimplifyStats {
            vars_before: self.vars_before,
            vars_after: later.vars_after,
            clauses_before: self.clauses_before,
            clauses_after: later.clauses_after,
            literals_before: self.literals_before,
            literals_after: later.literals_after,
            vars_eliminated: self.vars_eliminated + later.vars_eliminated,
            equivs_substituted: self.equivs_substituted + later.equivs_substituted,
            clauses_subsumed: self.clauses_subsumed + later.clauses_subsumed,
            clauses_strengthened: self.clauses_strengthened + later.clauses_strengthened,
            literals_removed: self.literals_removed + later.literals_removed,
            time_us: self.time_us + later.time_us,
        }
    }
}

/// One model-reconstruction record on the elimination stack.
///
/// Replayed in reverse order by [`Solver::extend_model`], so a record
/// may reference variables that were eliminated *later* — their values
/// are already reconstructed when the record is reached.
#[derive(Debug, Clone)]
pub(crate) enum ElimRecord {
    /// `lit`'s variable was eliminated by clause distribution; `clauses`
    /// are the saved occurrences of `lit`'s polarity (each contains
    /// `lit`). The default value makes `lit` false; it flips when a
    /// saved clause is not otherwise satisfied, which by the resolvent
    /// argument keeps the opposite polarity's clauses satisfied too.
    Eliminated { lit: Lit, clauses: Vec<Vec<Lit>> },
    /// `var` was substituted by an equivalent literal: `var` is true
    /// exactly when `rep` is.
    Substituted { var: Var, rep: Lit },
}

#[inline]
fn sig_of(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, l| s | 1u64 << (l.index() & 63))
}

/// `small ⊆ big`, both sorted.
fn is_subset(small: &[Lit], big: &[Lit]) -> bool {
    let mut i = 0;
    for &l in big {
        if i < small.len() && small[i] == l {
            i += 1;
        }
    }
    i == small.len()
}

/// `small \ {skip} ⊆ big`, both sorted.
fn is_subset_except(small: &[Lit], skip: Lit, big: &[Lit]) -> bool {
    let mut i = 0;
    for &l in big {
        while i < small.len() && small[i] == skip {
            i += 1;
        }
        if i < small.len() && small[i] == l {
            i += 1;
        }
    }
    while i < small.len() && small[i] == skip {
        i += 1;
    }
    i == small.len()
}

/// The resolvent of `c` and `d` on `pivot`, or `None` if tautological.
fn resolvent(c: &[Lit], d: &[Lit], pivot: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = c
        .iter()
        .chain(d.iter())
        .copied()
        .filter(|l| l.var() != pivot)
        .collect();
    out.sort_unstable();
    out.dedup();
    // Complementary literals are adjacent after the sort.
    if out.windows(2).any(|w| w[0] == !w[1]) {
        return None;
    }
    Some(out)
}

/// Strongly connected components of `adj` (iterative Tarjan). Nodes are
/// literal indices; components come out in reverse topological order.
fn sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut out: Vec<Vec<u32>> = Vec::new();
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSEEN || adj[start as usize].is_empty() {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, pi)) = frames.last_mut() {
            let vi = v as usize;
            if pi == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if pi < adj[vi].len() {
                frames.last_mut().expect("frame exists").1 += 1;
                let w = adj[vi][pi];
                let wi = w as usize;
                if index[wi] == UNSEEN {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p as usize] = low[p as usize].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

impl Solver {
    /// Runs SatELite-style simplification at the root level and returns
    /// what it did. See the module docs for the technique inventory and
    /// the frozen-variable contract.
    ///
    /// Idempotent and repeatable: safe to call again after more clauses
    /// or solve calls (it is an inprocessing step). On an unsatisfiable
    /// database it returns quickly with the `unsat` flag set for the
    /// next `solve`.
    pub fn simplify(&mut self) -> SimplifyStats {
        let t0 = Instant::now();
        let mut st = SimplifyStats::default();
        self.clear_model();
        let live_counts = |s: &Solver| {
            let mut clauses = 0;
            let mut lits = 0;
            for c in s.clauses.iter().filter(|c| !c.deleted) {
                clauses += 1;
                lits += c.lits.len();
            }
            (clauses, lits)
        };
        let active_vars = |s: &Solver| {
            (0..s.assigns.len())
                .filter(|&v| s.assigns[v] == LBool::Undef && !s.eliminated[v])
                .count()
        };
        st.vars_before = active_vars(self);
        (st.clauses_before, st.literals_before) = live_counts(self);
        if !self.unsat && self.propagate().is_some() {
            self.unsat = true;
        }
        if !self.unsat {
            // Root-level reasons are never expanded by conflict analysis
            // (it only visits variables above level 0), so clearing them
            // unlocks every clause for deletion and rewriting.
            for r in &mut self.reason {
                *r = None;
            }
            for ws in &mut self.watches {
                ws.clear();
            }
            Simp::new(self).run(&mut st);
            // Compact the arena (watches are empty, reasons are None, so
            // only the clause vector itself needs rewriting) and rebuild
            // the watcher lists over the surviving clauses.
            self.collect_garbage();
            for i in 0..self.clauses.len() {
                let (l0, l1) = {
                    let c = &self.clauses[i];
                    debug_assert!(c.lits.len() >= 2, "live clause shorter than binary");
                    (c.lits[0], c.lits[1])
                };
                self.watches[l0.index()].push(Watcher {
                    cref: i as ClauseRef,
                    blocker: l1,
                });
                self.watches[l1.index()].push(Watcher {
                    cref: i as ClauseRef,
                    blocker: l0,
                });
            }
            self.qhead = self.trail.len();
        }
        st.vars_after = active_vars(self);
        (st.clauses_after, st.literals_after) = live_counts(self);
        st.literals_removed = st.literals_before.saturating_sub(st.literals_after);
        st.time_us = t0.elapsed().as_micros() as u64;
        st
    }

    /// Extends the search model over eliminated variables by replaying
    /// the elimination stack in reverse. Called after every `Sat`.
    pub(crate) fn extend_model(&mut self) {
        if self.elim_stack.is_empty() {
            return;
        }
        let stack = std::mem::take(&mut self.elim_stack);
        for rec in stack.iter().rev() {
            match rec {
                ElimRecord::Substituted { var, rep } => {
                    self.ext_model[var.index()] = self.model_lit(*rep);
                }
                ElimRecord::Eliminated { lit, clauses } => {
                    let v = lit.var().index();
                    // Default: `lit` false. Flip when a saved clause is
                    // not satisfied without it; the resolvents (kept in
                    // the database) guarantee the opposite polarity's
                    // clauses survive the flip.
                    self.ext_model[v] = LBool::from_bool(!lit.is_positive());
                    for c in clauses {
                        let other_sat = c
                            .iter()
                            .any(|&q| q.var() != lit.var() && self.model_lit(q) == LBool::True);
                        if !other_sat {
                            self.ext_model[v] = LBool::from_bool(lit.is_positive());
                            break;
                        }
                    }
                }
            }
        }
        self.elim_stack = stack;
    }
}

/// The working state of one simplification run: occurrence lists and
/// clause signatures over the solver's arena, plus a pending-unit queue
/// (the watcher lists are torn down for the duration, so root units are
/// propagated through the occurrence lists instead).
struct Simp<'a> {
    s: &'a mut Solver,
    /// `occ[l.index()]` ⊇ crefs of live clauses containing `l`; may hold
    /// stale entries (deleted clauses, removed literals) that
    /// [`Simp::occs`] filters out on read.
    occ: Vec<Vec<ClauseRef>>,
    /// 64-bit membership signature per arena slot (subset prefilter).
    sig: Vec<u64>,
    /// Root assignments not yet pushed through the occurrence lists.
    pending: Vec<Lit>,
}

impl<'a> Simp<'a> {
    fn new(s: &'a mut Solver) -> Simp<'a> {
        let occ = vec![Vec::new(); s.assigns.len() * 2];
        let sig = vec![0u64; s.clauses.len()];
        Simp {
            s,
            occ,
            sig,
            pending: Vec::new(),
        }
    }

    fn run(&mut self, st: &mut SimplifyStats) {
        if self.should_abort() || !self.cleanup() {
            return;
        }
        if self.should_abort() || !self.substitution_pass(st) {
            return;
        }
        if self.should_abort() || !self.subsumption_pass(st) {
            return;
        }
        if self.should_abort() {
            return;
        }
        let _ = self.elimination_pass(st);
    }

    /// Between-pass guard: executes any armed `sat.simplify` fault and
    /// answers whether the run should stop early — because a fault asked
    /// for it or because the solver is over its memory budget. Aborting
    /// here is always sound: simplification is an optional rewriting
    /// step, and every pass leaves the database equisatisfiable on its
    /// own.
    fn should_abort(&mut self) -> bool {
        match gpumc_fault::hit(gpumc_fault::points::SAT_SIMPLIFY) {
            Some(gpumc_fault::FaultSignal::SpuriousUnknown) => return true,
            Some(gpumc_fault::FaultSignal::AllocSpike(b)) => {
                let charged = gpumc_fault::materialize_spike(b);
                self.s.add_mem_ballast(charged);
            }
            None => {}
        }
        let Some(budget) = self.s.mem_budget_bytes() else {
            return false;
        };
        // The incremental arena estimate goes stale while the watcher
        // lists are torn down, so recompute it, and charge the transient
        // occurrence index on top: it is real memory this run holds.
        self.s.recompute_lits_bytes();
        let occ_bytes: usize = self
            .occ
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<ClauseRef>())
            .sum::<usize>()
            + self.sig.capacity() * std::mem::size_of::<u64>();
        self.s.bytes_in_use() + occ_bytes > budget
    }

    /// Root-level cleanup and index construction: drop satisfied
    /// clauses, strip false literals, sort/dedup the rest, and build the
    /// occurrence lists and signatures.
    fn cleanup(&mut self) -> bool {
        for i in 0..self.s.clauses.len() {
            if self.s.clauses[i].deleted {
                continue;
            }
            let mut lits = std::mem::take(&mut self.s.clauses[i].lits);
            let satisfied = lits.iter().any(|&l| self.s.lit_value(l) == LBool::True);
            if satisfied {
                self.s.clauses[i].lits = lits;
                self.delete(i as ClauseRef);
                continue;
            }
            lits.retain(|&l| self.s.lit_value(l) == LBool::Undef);
            lits.sort_unstable();
            lits.dedup();
            if lits.windows(2).any(|w| w[0] == !w[1]) {
                self.s.clauses[i].lits = lits;
                self.delete(i as ClauseRef);
                continue;
            }
            match lits.len() {
                0 => {
                    self.s.clauses[i].lits = lits;
                    self.delete(i as ClauseRef);
                    self.s.unsat = true;
                    return false;
                }
                1 => {
                    let u = lits[0];
                    self.s.clauses[i].lits = lits;
                    self.delete(i as ClauseRef);
                    if !self.assign(u) {
                        self.s.unsat = true;
                        return false;
                    }
                }
                _ => {
                    self.sig[i] = sig_of(&lits);
                    for &l in &lits {
                        self.occ[l.index()].push(i as ClauseRef);
                    }
                    self.s.clauses[i].lits = lits;
                }
            }
        }
        self.propagate_units()
    }

    /// Records a root-level assignment. Returns `false` on conflict.
    fn assign(&mut self, l: Lit) -> bool {
        match self.s.lit_value(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.var().index();
                self.s.assigns[v] = LBool::from_bool(l.is_positive());
                self.s.level[v] = 0;
                self.s.reason[v] = None;
                self.s.trail.push(l);
                self.pending.push(l);
                true
            }
        }
    }

    fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.s.clauses[cref as usize];
        if c.deleted {
            return;
        }
        c.deleted = true;
        if c.learnt {
            self.s.n_learnt -= 1;
        }
        self.s.n_deleted += 1;
    }

    /// The validated occurrence list of `l`: live clauses containing it.
    fn occs(&mut self, l: Lit) -> Vec<ClauseRef> {
        let list = std::mem::take(&mut self.occ[l.index()]);
        let valid: Vec<ClauseRef> = list
            .into_iter()
            .filter(|&c| {
                let cl = &self.s.clauses[c as usize];
                !cl.deleted && cl.lits.contains(&l)
            })
            .collect();
        self.occ[l.index()] = valid.clone();
        valid
    }

    /// Drains the pending-unit queue through the occurrence lists:
    /// satisfied clauses die, falsified literals are stripped, new units
    /// cascade. Returns `false` on conflict.
    fn propagate_units(&mut self) -> bool {
        while let Some(l) = self.pending.pop() {
            for cref in self.occs(l) {
                self.delete(cref);
            }
            for cref in self.occs(!l) {
                let c = &mut self.s.clauses[cref as usize];
                c.lits.retain(|&q| q != !l);
                self.sig[cref as usize] = sig_of(&c.lits);
                match c.lits.len() {
                    0 => {
                        self.delete(cref);
                        self.s.unsat = true;
                        return false;
                    }
                    1 => {
                        let u = self.s.clauses[cref as usize].lits[0];
                        self.delete(cref);
                        if !self.assign(u) {
                            self.s.unsat = true;
                            return false;
                        }
                    }
                    _ => {}
                }
            }
        }
        true
    }

    /// Adds a clause produced by the simplifier (resolvents), respecting
    /// the current root assignment. Returns `false` on conflict.
    fn add_simplified(&mut self, mut lits: Vec<Lit>) -> bool {
        if lits.iter().any(|&l| self.s.lit_value(l) == LBool::True) {
            return true;
        }
        lits.retain(|&l| self.s.lit_value(l) == LBool::Undef);
        lits.sort_unstable();
        lits.dedup();
        match lits.len() {
            0 => {
                self.s.unsat = true;
                false
            }
            1 => {
                if self.assign(lits[0]) {
                    true
                } else {
                    self.s.unsat = true;
                    false
                }
            }
            _ => {
                let cref = self.s.clauses.len() as ClauseRef;
                self.sig.push(sig_of(&lits));
                for &l in &lits {
                    self.occ[l.index()].push(cref);
                }
                self.s.clauses.push(Clause {
                    lits,
                    learnt: false,
                    activity: 0.0,
                    deleted: false,
                    glue: 0,
                });
                true
            }
        }
    }

    /// Equivalent-literal substitution from the SCCs of the binary
    /// implication graph. Returns `false` on (dis)proof of unsat.
    fn substitution_pass(&mut self, st: &mut SimplifyStats) -> bool {
        let nlits = self.s.assigns.len() * 2;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nlits];
        let mut has_edges = false;
        for c in self.s.clauses.iter().filter(|c| !c.deleted) {
            if c.lits.len() != 2 {
                continue;
            }
            let (a, b) = (c.lits[0], c.lits[1]);
            adj[(!a).index()].push(b.index() as u32);
            adj[(!b).index()].push(a.index() as u32);
            has_edges = true;
        }
        if !has_edges {
            return true;
        }
        for comp in sccs(&adj) {
            if comp.len() < 2 {
                continue;
            }
            let lits: Vec<Lit> = comp.iter().map(|&i| Lit::from_index(i as usize)).collect();
            // A literal and its negation in one component: x ≡ ¬x.
            let mut vars: Vec<Var> = lits.iter().map(|l| l.var()).collect();
            vars.sort_unstable();
            if vars.windows(2).any(|w| w[0] == w[1]) {
                self.s.unsat = true;
                return false;
            }
            // Canonical representative: a frozen variable when the
            // component has one (frozen variables cannot be rewritten),
            // else the lowest-numbered variable. Choosing by *variable*
            // makes the complement component (same variable set, negated
            // literals) pick the complementary representative, so both
            // passes agree on the mapping.
            let rep_var = vars
                .iter()
                .copied()
                .filter(|&v| self.s.frozen[v.index()])
                .min()
                .unwrap_or_else(|| vars.iter().copied().min().expect("non-empty component"));
            let rep_lit = *lits
                .iter()
                .find(|l| l.var() == rep_var)
                .expect("representative is in its component");
            for &l in &lits {
                let x = l.var();
                if x == rep_var
                    || self.s.frozen[x.index()]
                    || self.s.eliminated[x.index()]
                    || self.s.assigns[x.index()] != LBool::Undef
                {
                    continue;
                }
                // l ≡ rep_lit, so x ≡ rep_lit with l's polarity folded in.
                let mapped = if l.is_positive() { rep_lit } else { !rep_lit };
                if !self.substitute(x, mapped, st) {
                    return false;
                }
            }
        }
        self.propagate_units()
    }

    /// Rewrites every occurrence of `x` to the equivalent literal `rep`
    /// and records the mapping. Returns `false` on conflict.
    fn substitute(&mut self, x: Var, rep: Lit, st: &mut SimplifyStats) -> bool {
        self.s.eliminated[x.index()] = true;
        self.s
            .elim_stack
            .push(ElimRecord::Substituted { var: x, rep });
        st.equivs_substituted += 1;
        for old in [x.pos(), x.neg()] {
            let new = if old.is_positive() { rep } else { !rep };
            for cref in self.occs(old) {
                let had_new = self.s.clauses[cref as usize].lits.contains(&new);
                let c = &mut self.s.clauses[cref as usize];
                for l in &mut c.lits {
                    if *l == old {
                        *l = new;
                    }
                }
                c.lits.sort_unstable();
                c.lits.dedup();
                if c.lits.windows(2).any(|w| w[0] == !w[1]) {
                    self.delete(cref);
                    continue;
                }
                if c.lits.len() == 1 {
                    let u = self.s.clauses[cref as usize].lits[0];
                    self.delete(cref);
                    if !self.assign(u) {
                        self.s.unsat = true;
                        return false;
                    }
                    continue;
                }
                self.sig[cref as usize] = sig_of(&self.s.clauses[cref as usize].lits);
                if !had_new {
                    self.occ[new.index()].push(cref);
                }
            }
        }
        true
    }

    /// Backward subsumption and self-subsuming resolution over a work
    /// queue seeded with every live clause. Returns `false` on conflict.
    fn subsumption_pass(&mut self, st: &mut SimplifyStats) -> bool {
        let mut queue: std::collections::VecDeque<ClauseRef> = (0..self.s.clauses.len())
            .filter(|&i| !self.s.clauses[i].deleted)
            .map(|i| i as ClauseRef)
            .collect();
        while let Some(cref) = queue.pop_front() {
            if !self.pending.is_empty() && !self.propagate_units() {
                return false;
            }
            if self.s.clauses[cref as usize].deleted {
                continue;
            }
            let lits = self.s.clauses[cref as usize].lits.clone();
            let sig = self.sig[cref as usize];
            // Backward subsumption: any superset of this clause dies.
            // Every superset contains this clause's rarest literal.
            let best = lits
                .iter()
                .copied()
                .min_by_key(|l| self.occ[l.index()].len())
                .expect("live clauses are non-empty");
            if self.occ[best.index()].len() <= SUB_OCC_CAP {
                for d in self.occs(best) {
                    if d == cref || self.s.clauses[d as usize].deleted {
                        continue;
                    }
                    let dc = &self.s.clauses[d as usize];
                    if dc.lits.len() < lits.len()
                        || sig & !self.sig[d as usize] != 0
                        || !is_subset(&lits, &dc.lits)
                    {
                        continue;
                    }
                    // A learnt clause subsuming a problem clause must be
                    // promoted, or a later database reduction could drop
                    // the only remaining form of the constraint.
                    if self.s.clauses[cref as usize].learnt && !self.s.clauses[d as usize].learnt {
                        self.s.clauses[cref as usize].learnt = false;
                        self.s.n_learnt -= 1;
                    }
                    self.delete(d);
                    st.clauses_subsumed += 1;
                }
            }
            // Self-subsuming resolution: if this clause minus `l` sits
            // inside a clause containing `¬l`, that clause sheds `¬l`.
            for &l in &lits {
                if self.s.clauses[cref as usize].deleted {
                    break;
                }
                if self.occ[(!l).index()].len() > SUB_OCC_CAP {
                    continue;
                }
                let base = sig & !(1u64 << (l.index() & 63));
                for d in self.occs(!l) {
                    if self.s.clauses[d as usize].deleted {
                        continue;
                    }
                    let dc = &self.s.clauses[d as usize];
                    if dc.lits.len() + 1 < lits.len()
                        || base & !self.sig[d as usize] != 0
                        || !is_subset_except(&lits, l, &dc.lits)
                    {
                        continue;
                    }
                    let c = &mut self.s.clauses[d as usize];
                    c.lits.retain(|&q| q != !l);
                    self.sig[d as usize] = sig_of(&c.lits);
                    st.clauses_strengthened += 1;
                    if c.lits.len() == 1 {
                        let u = self.s.clauses[d as usize].lits[0];
                        self.delete(d);
                        if !self.assign(u) {
                            self.s.unsat = true;
                            return false;
                        }
                    } else {
                        queue.push_back(d);
                    }
                }
            }
        }
        self.propagate_units()
    }

    /// Bounded variable elimination by clause distribution, cheapest
    /// variables first. Returns `false` on conflict.
    fn elimination_pass(&mut self, st: &mut SimplifyStats) -> bool {
        let nv = self.s.assigns.len();
        let mut order: Vec<(usize, u32)> = (0..nv as u32)
            .filter(|&v| {
                let vi = v as usize;
                !self.s.frozen[vi] && !self.s.eliminated[vi] && self.s.assigns[vi] == LBool::Undef
            })
            .map(|v| {
                let vi = v as usize;
                (self.occ[vi * 2].len() + self.occ[vi * 2 + 1].len(), v)
            })
            .collect();
        order.sort_unstable();
        for (_, v) in order {
            let var = Var(v);
            let vi = v as usize;
            if self.s.assigns[vi] != LBool::Undef || self.s.eliminated[vi] {
                continue;
            }
            let pos_all = self.occs(var.pos());
            let neg_all = self.occs(var.neg());
            let split = |s: &Solver, list: &[ClauseRef]| -> (Vec<ClauseRef>, Vec<ClauseRef>) {
                list.iter()
                    .copied()
                    .partition(|&c| !s.clauses[c as usize].learnt)
            };
            let (pos, pos_learnt) = split(self.s, &pos_all);
            let (neg, neg_learnt) = split(self.s, &neg_all);
            if pos.len() + neg.len() > BVE_OCC_CAP || pos.len() * neg.len() > BVE_PRODUCT_CAP {
                continue;
            }
            let budget = pos.len() + neg.len();
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_many = false;
            'count: for &pc in &pos {
                for &nc in &neg {
                    if let Some(r) = resolvent(
                        &self.s.clauses[pc as usize].lits,
                        &self.s.clauses[nc as usize].lits,
                        var,
                    ) {
                        resolvents.push(r);
                        if resolvents.len() > budget {
                            too_many = true;
                            break 'count;
                        }
                    }
                }
            }
            if too_many {
                continue;
            }
            // Commit: save the smaller polarity side for model
            // reconstruction, delete every clause of the variable
            // (learnt ones are implied — plain deletion is sound), add
            // the resolvents.
            let (save_lit, save_side) = if pos.len() <= neg.len() {
                (var.pos(), &pos)
            } else {
                (var.neg(), &neg)
            };
            let saved: Vec<Vec<Lit>> = save_side
                .iter()
                .map(|&c| self.s.clauses[c as usize].lits.clone())
                .collect();
            self.s.elim_stack.push(ElimRecord::Eliminated {
                lit: save_lit,
                clauses: saved,
            });
            self.s.eliminated[vi] = true;
            st.vars_eliminated += 1;
            for &c in pos.iter().chain(&neg).chain(&pos_learnt).chain(&neg_learnt) {
                self.delete(c);
            }
            for r in resolvents {
                if !self.add_simplified(r) {
                    return false;
                }
            }
            if !self.propagate_units() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    #[test]
    fn subsumed_clauses_are_removed() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for &l in &v {
            s.freeze(l.var());
        }
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]);
        let st = s.simplify();
        assert_eq!(st.clauses_subsumed, 1);
        assert_eq!(s.num_clauses(), 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): resolving on a gives (b ∨ c)… but the
        // first clause self-subsumes the second into (b ∨ c)? No — it
        // strengthens (¬a ∨ b ∨ c) by dropping ¬a only if (a∨b)∖{a} ⊆
        // {¬a,b,c}∖{¬a}, i.e. {b} ⊆ {b,c}: yes.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        for &l in &v {
            s.freeze(l.var());
        }
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[1], v[2]]);
        let st = s.simplify();
        assert!(st.clauses_strengthened >= 1, "{st:?}");
        // The strengthened clause (b ∨ c)… is then subsumed? (a∨b) is not
        // a subset of (b∨c); both remain.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn equivalent_literals_are_substituted() {
        // a ≡ b (frozen a), plus (b ∨ c): b is rewritten to a.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.freeze(v[0].var());
        s.freeze(v[2].var());
        s.add_clause([!v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([v[1], v[2]]);
        let st = s.simplify();
        assert_eq!(st.equivs_substituted, 1);
        assert!(s.is_eliminated(v[1].var()));
        assert!(s.solve().is_sat());
        // The reconstructed model keeps the equivalence observable.
        assert_eq!(s.value(v[1]), s.value(v[0]));
    }

    #[test]
    fn contradictory_equivalence_cycle_is_unsat() {
        // All four binaries over (a, b): a ≡ b and a ≡ ¬b at once.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([!v[0], !v[1]]);
        s.simplify();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn gate_output_is_eliminated_and_reconstructed() {
        // g ≡ x ∧ y (three clauses) plus a use (g ∨ z); freeze x, y, z.
        // g is resolved away, yet value(g) must equal x ∧ y afterwards —
        // the original clauses force exactly that.
        for force in [false, true] {
            let mut s = Solver::new();
            let v = lits(&mut s, 4);
            let (g, x, y, z) = (v[0], v[1], v[2], v[3]);
            for l in [x, y, z] {
                s.freeze(l.var());
            }
            s.add_clause([!g, x]);
            s.add_clause([!g, y]);
            s.add_clause([g, !x, !y]);
            s.add_clause([g, z]);
            if force {
                s.add_clause([x]);
                s.add_clause([y]);
            }
            let st = s.simplify();
            // With the forcing units, propagation decides g before the
            // simplifier sees it; otherwise BVE must resolve it away.
            if force {
                assert_eq!(st.clauses_after, 0, "all clauses satisfied: {st:?}");
            } else {
                assert!(
                    st.vars_eliminated + st.equivs_substituted >= 1,
                    "g should be gone: {st:?}"
                );
                assert!(s.is_eliminated(g.var()));
            }
            assert!(s.solve().is_sat());
            let gx = s.value_or_false(x) && s.value_or_false(y);
            assert_eq!(s.value_or_false(g), gx, "g must track x ∧ y");
            if !s.value_or_false(g) {
                assert!(s.value_or_false(z), "(g ∨ z) must hold");
            }
        }
    }

    #[test]
    fn pure_literal_elimination_falls_out_of_bve() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.freeze(v[1].var());
        s.freeze(v[2].var());
        // v0 occurs only positively: zero resolvents, eliminated.
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[2]]);
        let st = s.simplify();
        assert_eq!(st.vars_eliminated, 1);
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve().is_sat());
        // Extension satisfies the original clauses.
        assert!(s.value_or_false(v[0]) || s.value_or_false(v[1]));
        assert!(s.value_or_false(v[0]) || s.value_or_false(v[2]));
    }

    #[test]
    fn frozen_variables_are_never_touched() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        for &l in &v {
            s.freeze(l.var());
        }
        s.add_clause([!v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([v[2], v[3]]);
        let st = s.simplify();
        assert_eq!(st.vars_eliminated, 0);
        assert_eq!(st.equivs_substituted, 0);
        for &l in &v {
            assert!(!s.is_eliminated(l.var()));
        }
    }

    #[test]
    #[should_panic(expected = "eliminated")]
    fn mentioning_an_eliminated_variable_panics() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.freeze(v[1].var());
        s.freeze(v[2].var());
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[2]]);
        let st = s.simplify();
        assert_eq!(st.vars_eliminated, 1, "precondition");
        s.add_clause([v[0]]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole/pigeon index pairs read better as ranges
    fn unsat_instances_stay_unsat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3).map(|_| lits(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s.simplify();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_over_frozen_vars_work_after_simplify() {
        // The SolverSession pattern: activation literal guards a clause
        // group; the activation literal is frozen, the guarded internals
        // are not.
        let mut s = Solver::new();
        let act = s.new_lit();
        let v = lits(&mut s, 3);
        s.freeze(act.var());
        s.freeze(v[2].var());
        s.add_clause([!act, v[0]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        s.simplify();
        assert!(s.solve_with_assumptions(&[act]).is_sat());
        assert_eq!(s.value(v[2]), Some(true));
        assert!(s.solve_with_assumptions(&[!act]).is_sat());
    }

    #[test]
    fn simplify_is_repeatable() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.freeze(v[0].var());
        s.freeze(v[3].var());
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        s.add_clause([!v[2], v[3]]);
        s.simplify();
        let st2 = s.simplify();
        assert_eq!(st2.vars_eliminated, 0, "second pass finds nothing new");
        assert!(s.solve_with_assumptions(&[v[0]]).is_sat());
        assert_eq!(s.value(v[3]), Some(true));
    }

    #[test]
    fn differential_against_plain_solver_on_random_cnf() {
        // Deterministic xorshift instances: simplify + solve must agree
        // with plain solve, and the extended model must satisfy every
        // original clause.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..60 {
            let nvars = 8 + (round % 7);
            let nclauses = 3 * nvars + (round % 11);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let len = 1 + (next() as usize) % 3;
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = Var((next() % nvars as u64) as u32);
                    c.push(if next() % 2 == 0 { v.pos() } else { v.neg() });
                }
                clauses.push(c);
            }
            let mut plain = Solver::new();
            let mut simp = Solver::new();
            for s in [&mut plain, &mut simp] {
                for _ in 0..nvars {
                    s.new_lit();
                }
            }
            // Freeze a pseudo-random subset in the simplifying solver.
            for v in 0..nvars {
                if next() % 3 == 0 {
                    simp.freeze(Var(v as u32));
                }
            }
            for c in &clauses {
                plain.add_clause(c.clone());
                simp.add_clause(c.clone());
            }
            simp.simplify();
            let (a, b) = (plain.solve(), simp.solve());
            assert_eq!(a.is_sat(), b.is_sat(), "round {round}: verdict flip");
            assert_eq!(a.is_unsat(), b.is_unsat(), "round {round}: verdict flip");
            if b.is_sat() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| simp.value_or_false(l)),
                        "round {round}: extended model misses clause {c:?}"
                    );
                }
            }
        }
    }
}
