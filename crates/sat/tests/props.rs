//! Property-based tests: the CDCL solver against a brute-force oracle,
//! and the bit-vector layer against `u64` arithmetic.

use gpumc_sat::bv::BitVec;
use gpumc_sat::{Formula, Lit, Solver};
use proptest::prelude::*;

/// A random CNF over `nvars` variables: clauses of 1..=3 literals.
fn cnf_strategy(nvars: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    let clause = proptest::collection::vec((0..nvars, any::<bool>()), 1..=3);
    proptest::collection::vec(clause, 1..40)
}

fn brute_force_sat(nvars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
    (0u32..1 << nvars).any(|assign| {
        cnf.iter()
            .all(|clause| clause.iter().any(|&(v, pos)| (assign >> v & 1 == 1) == pos))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The solver agrees with exhaustive enumeration on small CNFs, and
    /// returned models satisfy every clause.
    #[test]
    fn solver_matches_brute_force(cnf in cnf_strategy(8)) {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..8).map(|_| s.new_lit()).collect();
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                .collect();
            s.add_clause(lits);
        }
        let expected = brute_force_sat(8, &cnf);
        let got = s.solve().is_sat();
        prop_assert_eq!(got, expected);
        if got {
            for clause in &cnf {
                let satisfied = clause
                    .iter()
                    .any(|&(v, pos)| s.value_or_false(vars[v]) == pos);
                prop_assert!(satisfied);
            }
        }
    }

    /// Assumptions never change the underlying clause database.
    #[test]
    fn assumptions_are_temporary(cnf in cnf_strategy(6), assume in 0usize..6, pol in any::<bool>()) {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..6).map(|_| s.new_lit()).collect();
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                .collect();
            s.add_clause(lits);
        }
        let base = s.solve().is_sat();
        s.clear_model();
        let a = if pol { vars[assume] } else { !vars[assume] };
        let _ = s.solve_with_assumptions(&[a]);
        s.clear_model();
        prop_assert_eq!(s.solve().is_sat(), base, "assumptions leaked");
    }

    /// An assumption-level Unsat answer must not poison the solver: with
    /// the assumption dropped, the very next query answers Sat iff the
    /// base formula is satisfiable — checked against the brute-force
    /// oracle, and *without* an intervening `clear_model`.
    #[test]
    fn assumption_unsat_recovers_base_verdict(
        cnf in cnf_strategy(6),
        assume in 0usize..6,
        pol in any::<bool>(),
    ) {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..6).map(|_| s.new_lit()).collect();
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                .collect();
            s.add_clause(lits);
        }
        let base = brute_force_sat(6, &cnf);
        let a = if pol { vars[assume] } else { !vars[assume] };
        if s.solve_with_assumptions(&[a]).is_unsat() {
            prop_assert_eq!(
                s.solve().is_sat(),
                base,
                "base verdict changed after an assumption-level Unsat"
            );
        } else {
            // Sat under the assumption implies the base formula is Sat,
            // and the model must actually honour the assumption.
            prop_assert!(base);
            prop_assert!(s.value_or_false(a), "model violates the assumption");
        }
    }

    /// Learnt clauses and the cumulative counters survive query
    /// boundaries: across a sequence of assumption-guarded queries on one
    /// solver, `conflicts`/`decisions`/`propagations` are monotone and the
    /// live learnt-clause count never decreases (small formulas never
    /// trigger database reduction). This guards the activation-literal
    /// plumbing in the incremental encode layer.
    #[test]
    fn learnt_clauses_accumulate_across_queries(cnf in cnf_strategy(8)) {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..8).map(|_| s.new_lit()).collect();
        // Gate every clause behind one of two activation literals so the
        // queries below exercise the same shape the encoder uses.
        let acts = [s.new_lit(), s.new_lit()];
        for (i, clause) in cnf.iter().enumerate() {
            let mut lits: Vec<Lit> = vec![!acts[i % 2]];
            lits.extend(
                clause
                    .iter()
                    .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] }),
            );
            s.add_clause(lits);
        }
        let mut prev = s.stats();
        for round in 0..3 {
            let act = acts[round % 2];
            let _ = s.solve_with_assumptions(&[act]);
            let now = s.stats();
            prop_assert!(now.learnt >= prev.learnt, "learnt clauses dropped");
            prop_assert!(now.conflicts >= prev.conflicts);
            prop_assert!(now.decisions >= prev.decisions);
            prop_assert!(now.propagations >= prev.propagations);
            prev = now;
        }
        // Both gates at once must agree with the ungated brute force.
        let both = s.solve_with_assumptions(&[acts[0], acts[1]]);
        prop_assert_eq!(both.is_sat(), brute_force_sat(8, &cnf));
    }

    /// `freeze` + bounded variable elimination + model reconstruction
    /// round-trips random CNF: after `simplify`, the verdict matches the
    /// brute-force oracle, and on Sat the *extended* model — including
    /// every eliminated, never-frozen variable — satisfies every
    /// original clause.
    #[test]
    fn simplify_roundtrips_random_cnf(
        cnf in cnf_strategy(8),
        freeze_mask in 0u32..256,
    ) {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..8).map(|_| s.new_lit()).collect();
        for (i, l) in vars.iter().enumerate() {
            if freeze_mask >> i & 1 == 1 {
                s.freeze(l.var());
            }
        }
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                .collect();
            s.add_clause(lits);
        }
        let stats = s.simplify();
        prop_assert!(stats.clauses_after <= stats.clauses_before);
        let expected = brute_force_sat(8, &cnf);
        prop_assert_eq!(s.solve().is_sat(), expected);
        if expected {
            for clause in &cnf {
                let satisfied = clause
                    .iter()
                    .any(|&(v, pos)| s.value_or_false(vars[v]) == pos);
                prop_assert!(satisfied, "extended model misses a clause");
            }
        }
    }

    /// Clause-sharing soundness: every learnt clause a portfolio racer
    /// publishes to the exchange ring is implied by the original CNF —
    /// checked by refutation (CNF ∧ ¬C must be unsatisfiable). This is
    /// the load-bearing claim behind importing foreign clauses: a racer
    /// that absorbs them solves an equisatisfiable formula.
    #[test]
    fn shared_clauses_are_implied_by_the_cnf(cnf in cnf_strategy(8)) {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..8).map(|_| s.new_lit()).collect();
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                .collect();
            s.add_clause(lits);
        }
        // A small ring keeps the snapshot cheap; glue limit at the
        // ceiling exports aggressively so the trace is non-trivial on
        // conflict-heavy instances.
        let config = gpumc_sat::PortfolioConfig {
            workers: 3,
            share_glue_init: 6,
            ..gpumc_sat::PortfolioConfig::default()
        };
        let (result, _, shared) =
            gpumc_sat::portfolio::solve_portfolio_traced(&mut s, &[], &config);
        prop_assert_eq!(result.is_sat(), brute_force_sat(8, &cnf));
        for learnt in &shared {
            // Refutation check in a fresh solver over the same variable
            // numbering: original CNF plus the negation of the shared
            // clause (every literal flipped, asserted as units).
            let mut r = Solver::new();
            let rvars: Vec<Lit> = (0..8).map(|_| r.new_lit()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, pos)| if pos { rvars[v] } else { !rvars[v] })
                    .collect();
                r.add_clause(lits);
            }
            for &lit in learnt {
                r.add_clause(vec![!lit]);
            }
            prop_assert!(
                r.solve().is_unsat(),
                "shared clause {:?} is not implied by the CNF",
                learnt
            );
        }
    }

    /// Portfolio determinism: the verdict (though not necessarily the
    /// model) is a property of the formula, so it must be stable across
    /// repeated runs and across worker counts — and equal to the
    /// sequential verdict.
    #[test]
    fn portfolio_verdicts_are_stable_across_runs_and_widths(cnf in cnf_strategy(8)) {
        let build = || {
            let mut s = Solver::new();
            let vars: Vec<Lit> = (0..8).map(|_| s.new_lit()).collect();
            for clause in &cnf {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, pos)| if pos { vars[v] } else { !vars[v] })
                    .collect();
                s.add_clause(lits);
            }
            s
        };
        let expected = build().solve().is_sat();
        for workers in [1u32, 2, 3, 4] {
            for run in 0..2 {
                let mut s = build();
                let config = gpumc_sat::PortfolioConfig::with_workers(workers);
                let (result, stats) =
                    gpumc_sat::portfolio::solve_portfolio(&mut s, &[], &config);
                prop_assert_eq!(
                    result.is_sat(),
                    expected,
                    "verdict unstable at {} workers, run {}",
                    workers,
                    run
                );
                prop_assert_eq!(stats.workers, workers.max(1));
            }
        }
    }

    /// Bit-vector addition/subtraction/comparison match u64 semantics.
    #[test]
    fn bitvec_matches_u64(x in 0u64..256, y in 0u64..256) {
        let mut f = Formula::new();
        let a = BitVec::constant(&mut f, 8, x);
        let b = BitVec::constant(&mut f, 8, y);
        let sum = a.add(&mut f, &b);
        let diff = a.sub(&mut f, &b);
        let lt = a.ult(&mut f, &b);
        let eq = a.eq(&mut f, &b);
        prop_assert!(f.solve().is_sat());
        prop_assert_eq!(sum.value_in(&f), x.wrapping_add(y) & 0xff);
        prop_assert_eq!(diff.value_in(&f), x.wrapping_sub(y) & 0xff);
        prop_assert_eq!(f.value_or_false(lt), (x & 0xff) < (y & 0xff));
        prop_assert_eq!(f.value_or_false(eq), (x & 0xff) == (y & 0xff));
    }

    /// Solving for `x` in `x + k = target` recovers the unique solution.
    #[test]
    fn bitvec_equation_solving(k in 0u64..256, target in 0u64..256) {
        let mut f = Formula::new();
        let x = BitVec::fresh(&mut f, 8);
        let kk = BitVec::constant(&mut f, 8, k);
        let sum = x.add(&mut f, &kk);
        sum.assert_const(&mut f, target & 0xff);
        prop_assert!(f.solve().is_sat());
        prop_assert_eq!(x.value_in(&f).wrapping_add(k) & 0xff, target & 0xff);
    }

    /// Gate circuits evaluate like the boolean functions they encode.
    #[test]
    fn gate_semantics(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let mut f = Formula::new();
        let (la, lb, lc) = (f.new_lit(), f.new_lit(), f.new_lit());
        let and = f.and2(la, lb);
        let or = f.or2(lb, lc);
        let ite = f.ite(la, lb, lc);
        let xor = f.xor(la, lc);
        f.assert_lit(if a { la } else { !la });
        f.assert_lit(if b { lb } else { !lb });
        f.assert_lit(if c { lc } else { !lc });
        prop_assert!(f.solve().is_sat());
        prop_assert_eq!(f.value_or_false(and), a && b);
        prop_assert_eq!(f.value_or_false(or), b || c);
        prop_assert_eq!(f.value_or_false(ite), if a { b } else { c });
        prop_assert_eq!(f.value_or_false(xor), a ^ c);
    }
}
