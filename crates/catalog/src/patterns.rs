//! Generated validation suites, sized like the paper's corpus (§7.1):
//! classic weak-consistency patterns crossed with synchronization
//! strengths, scopes, proxies and storage classes.

use crate::{Property, Test};

/// Synchronization strength applied to a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sync {
    /// Plain (weak / non-atomic) accesses.
    Weak,
    /// Relaxed atomics.
    Relaxed,
    /// Release writes / acquire reads.
    RelAcq,
    /// Plain accesses ordered by acq_rel fences.
    Fences,
    /// Relaxed atomics ordered by SC fences.
    FenceSc,
}

const SYNCS: [Sync; 5] = [
    Sync::Weak,
    Sync::Relaxed,
    Sync::RelAcq,
    Sync::Fences,
    Sync::FenceSc,
];

/// Scope placement of the threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scoping {
    /// Wide-enough scope for the thread placement.
    Wide,
    /// Scope narrower than the placement (cannot synchronize).
    Narrow,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArchKind {
    Ptx,
    Vulkan,
}

/// Emission context for one test.
struct Ctx {
    arch: ArchKind,
    sync: Sync,
    scoping: Scoping,
}

impl Ctx {
    fn scope(&self) -> &'static str {
        match (self.arch, self.scoping) {
            (ArchKind::Ptx, Scoping::Wide) => "gpu",
            (ArchKind::Ptx, Scoping::Narrow) => "cta",
            (ArchKind::Vulkan, Scoping::Wide) => "dv",
            (ArchKind::Vulkan, Scoping::Narrow) => "wg",
        }
    }

    fn header(&self, n_threads: usize) -> String {
        let cells: Vec<String> = (0..n_threads)
            .map(|i| match self.arch {
                ArchKind::Ptx => format!("P{i}@cta {i},gpu 0"),
                ArchKind::Vulkan => format!("P{i}@sg 0,wg {i},qf 0"),
            })
            .collect();
        format!("{} ;", cells.join(" | "))
    }

    /// A store; `strong` marks the synchronizing (flag) write. Note that
    /// with fence-based synchronization the flag access must still be
    /// atomic: a plain access's reads-from is never morally strong in
    /// PTX, and never `moa` in Vulkan.
    fn st(&self, loc: &str, val: &str, strong: bool) -> String {
        let s = self.scope();
        match (self.arch, self.sync) {
            (ArchKind::Ptx, Sync::Fences) if strong => format!("st.relaxed.{s} {loc}, {val}"),
            (ArchKind::Vulkan, Sync::Fences) if strong => {
                format!("st.atom.{s}.sc0 {loc}, {val}")
            }
            (ArchKind::Ptx, Sync::Weak | Sync::Fences) => format!("st.weak {loc}, {val}"),
            (ArchKind::Ptx, Sync::Relaxed | Sync::FenceSc) => {
                format!("st.relaxed.{s} {loc}, {val}")
            }
            (ArchKind::Ptx, Sync::RelAcq) => {
                if strong {
                    format!("st.release.{s} {loc}, {val}")
                } else {
                    format!("st.relaxed.{s} {loc}, {val}")
                }
            }
            (ArchKind::Vulkan, Sync::Weak | Sync::Fences) => format!("st.sc0 {loc}, {val}"),
            (ArchKind::Vulkan, Sync::Relaxed | Sync::FenceSc) => {
                format!("st.atom.{s}.sc0 {loc}, {val}")
            }
            (ArchKind::Vulkan, Sync::RelAcq) => {
                if strong {
                    format!("st.atom.rel.{s}.sc0 {loc}, {val}")
                } else {
                    format!("st.atom.{s}.sc0 {loc}, {val}")
                }
            }
        }
    }

    /// A load; `strong` marks the synchronizing (flag) read.
    fn ld(&self, reg: &str, loc: &str, strong: bool) -> String {
        let s = self.scope();
        match (self.arch, self.sync) {
            (ArchKind::Ptx, Sync::Fences) if strong => format!("ld.relaxed.{s} {reg}, {loc}"),
            (ArchKind::Vulkan, Sync::Fences) if strong => {
                format!("ld.atom.{s}.sc0 {reg}, {loc}")
            }
            (ArchKind::Ptx, Sync::Weak | Sync::Fences) => format!("ld.weak {reg}, {loc}"),
            (ArchKind::Ptx, Sync::Relaxed | Sync::FenceSc) => {
                format!("ld.relaxed.{s} {reg}, {loc}")
            }
            (ArchKind::Ptx, Sync::RelAcq) => {
                if strong {
                    format!("ld.acquire.{s} {reg}, {loc}")
                } else {
                    format!("ld.relaxed.{s} {reg}, {loc}")
                }
            }
            (ArchKind::Vulkan, Sync::Weak | Sync::Fences) => format!("ld.sc0 {reg}, {loc}"),
            (ArchKind::Vulkan, Sync::Relaxed | Sync::FenceSc) => {
                format!("ld.atom.{s}.sc0 {reg}, {loc}")
            }
            (ArchKind::Vulkan, Sync::RelAcq) => {
                if strong {
                    format!("ld.atom.acq.{s}.sc0 {reg}, {loc}")
                } else {
                    format!("ld.atom.{s}.sc0 {reg}, {loc}")
                }
            }
        }
    }

    /// The fence inserted between accesses for the fence-based syncs.
    fn fence(&self) -> Option<String> {
        let s = self.scope();
        match (self.arch, self.sync) {
            (ArchKind::Ptx, Sync::Fences) => Some(format!("fence.acq_rel.{s}")),
            (ArchKind::Ptx, Sync::FenceSc) => Some(format!("fence.sc.{s}")),
            (ArchKind::Vulkan, Sync::Fences) => Some(format!("membar.acq_rel.{s}.semsc0")),
            (ArchKind::Vulkan, Sync::FenceSc) => Some(format!("membar.acq_rel.{s}.semsc0")),
            _ => None,
        }
    }

    fn arch_name(&self) -> &'static str {
        match self.arch {
            ArchKind::Ptx => "PTX",
            ArchKind::Vulkan => "VULKAN",
        }
    }
}

/// Builds a test from per-thread instruction columns.
fn table(ctx: &Ctx, name: &str, prelude: &str, cols: &[Vec<String>], cond: &str) -> String {
    let rows = cols.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = format!(
        "{} {}\n{{ {} }}\n{}\n",
        ctx.arch_name(),
        name,
        prelude,
        ctx.header(cols.len())
    );
    for r in 0..rows {
        let cells: Vec<&str> = cols
            .iter()
            .map(|c| c.get(r).map_or("", String::as_str))
            .collect();
        out.push_str(&format!("{} ;\n", cells.join(" | ")));
    }
    out.push_str(cond);
    out.push('\n');
    out
}

/// With-fence helper: weave a fence between two instructions if needed.
fn seq(ctx: &Ctx, first: String, second: String) -> Vec<String> {
    match ctx.fence() {
        Some(f) => vec![first, f, second],
        None => vec![first, second],
    }
}

/// One pattern family: returns (name, source, expected-with-full-sync).
///
/// `expected` is `Some(reachable)` only where the literature fixes the
/// verdict for the *weak* and *fully synchronized wide-scope* variants.
fn family(ctx: &Ctx, fam: &str) -> (String, Option<bool>) {
    let forbidden_when_synced = matches!(
        (ctx.sync, ctx.scoping),
        (Sync::RelAcq | Sync::Fences | Sync::FenceSc, Scoping::Wide)
    );
    let weak = ctx.sync == Sync::Weak;
    match fam {
        "MP" => {
            let cols = vec![
                seq(ctx, ctx.st("x", "1", false), ctx.st("flag", "1", true)),
                seq(ctx, ctx.ld("r0", "flag", true), ctx.ld("r1", "x", false)),
            ];
            let src = table(
                ctx,
                "MP",
                "x = 0; flag = 0;",
                &cols,
                "exists (P1:r0 == 1 /\\ P1:r1 == 0)",
            );
            let expected = if forbidden_when_synced {
                Some(false)
            } else if weak || matches!((ctx.sync, ctx.scoping), (Sync::RelAcq, Scoping::Narrow)) {
                // Plain accesses, or correct orders at a scope narrower
                // than the thread placement (the dv2wg situation of
                // Table 7): the stale read is reachable.
                Some(true)
            } else {
                None
            };
            (src, expected)
        }
        "SB" => {
            let cols = vec![
                seq(ctx, ctx.st("x", "1", true), ctx.ld("r0", "y", true)),
                seq(ctx, ctx.st("y", "1", true), ctx.ld("r1", "x", true)),
            ];
            let src = table(
                ctx,
                "SB",
                "x = 0; y = 0;",
                &cols,
                "exists (P0:r0 == 0 /\\ P1:r1 == 0)",
            );
            // SB is only forbidden by SC fences — which exist in PTX but
            // not in Vulkan (release-acquire is Vulkan's strongest
            // ordering, §7.3 item 3).
            let expected = match (ctx.arch, ctx.sync, ctx.scoping) {
                (ArchKind::Ptx, Sync::FenceSc, Scoping::Wide) => Some(false),
                (_, Sync::Weak | Sync::Relaxed | Sync::RelAcq, _) => Some(true),
                _ => None,
            };
            (src, expected)
        }
        "LB" => {
            let cols = vec![
                seq(ctx, ctx.ld("r0", "x", true), ctx.st("y", "1", true)),
                seq(ctx, ctx.ld("r1", "y", true), ctx.st("x", "1", true)),
            ];
            let src = table(
                ctx,
                "LB",
                "x = 0; y = 0;",
                &cols,
                "exists (P0:r0 == 1 /\\ P1:r1 == 1)",
            );
            let expected = if forbidden_when_synced {
                Some(false)
            } else {
                None
            };
            (src, expected)
        }
        "IRIW" => {
            let cols = vec![
                vec![ctx.st("x", "1", true)],
                vec![ctx.st("y", "1", true)],
                seq(ctx, ctx.ld("r0", "x", true), ctx.ld("r1", "y", true)),
                seq(ctx, ctx.ld("r2", "y", true), ctx.ld("r3", "x", true)),
            ];
            let src = table(
                ctx,
                "IRIW",
                "x = 0; y = 0;",
                &cols,
                "exists (P2:r0 == 1 /\\ P2:r1 == 0 /\\ P3:r2 == 1 /\\ P3:r3 == 0)",
            );
            (src, None)
        }
        "CoRR" => {
            let cols = vec![
                vec![ctx.st("x", "1", true), ctx.st("x", "2", true)],
                vec![ctx.ld("r0", "x", true), ctx.ld("r1", "x", true)],
            ];
            let src = table(
                ctx,
                "CoRR",
                "x = 0;",
                &cols,
                "exists (P1:r0 == 2 /\\ P1:r1 == 1)",
            );
            // Fully-atomic wide-scope CoRR is forbidden in both models;
            // at narrow scope the PTX reads are not morally strong with
            // the writes and the inversion resurfaces.
            let expected = match (ctx.sync, ctx.scoping) {
                (Sync::Relaxed | Sync::RelAcq | Sync::FenceSc, Scoping::Wide) => Some(false),
                _ => None,
            };
            (src, expected)
        }
        "CoWR" => {
            let cols = vec![
                vec![ctx.st("x", "1", true), ctx.ld("r0", "x", true)],
                vec![ctx.st("x", "2", true)],
            ];
            let src = table(ctx, "CoWR", "x = 0;", &cols, "exists (P0:r0 == 0)");
            // Reading the initial value after the own write is a
            // same-thread coherence violation in every configuration.
            (src, Some(false))
        }
        "WRC" => {
            let cols = vec![
                vec![ctx.st("x", "1", true)],
                seq(ctx, ctx.ld("r0", "x", true), ctx.st("y", "1", true)),
                seq(ctx, ctx.ld("r1", "y", true), ctx.ld("r2", "x", false)),
            ];
            let src = table(
                ctx,
                "WRC",
                "x = 0; y = 0;",
                &cols,
                "exists (P1:r0 == 1 /\\ P2:r1 == 1 /\\ P2:r2 == 0)",
            );
            let expected = if forbidden_when_synced {
                Some(false)
            } else {
                None
            };
            (src, expected)
        }
        "ISA2" => {
            let cols = vec![
                seq(ctx, ctx.st("x", "1", false), ctx.st("y", "1", true)),
                seq(ctx, ctx.ld("r0", "y", true), ctx.st("z", "1", true)),
                seq(ctx, ctx.ld("r1", "z", true), ctx.ld("r2", "x", false)),
            ];
            let src = table(
                ctx,
                "ISA2",
                "x = 0; y = 0; z = 0;",
                &cols,
                "exists (P1:r0 == 1 /\\ P2:r1 == 1 /\\ P2:r2 == 0)",
            );
            let expected = if forbidden_when_synced {
                Some(false)
            } else {
                None
            };
            (src, expected)
        }
        "2+2W" => {
            let cols = vec![
                seq(ctx, ctx.st("x", "1", true), ctx.st("y", "2", true)),
                seq(ctx, ctx.st("y", "1", true), ctx.st("x", "2", true)),
            ];
            let src = table(
                ctx,
                "2+2W",
                "x = 0; y = 0;",
                &cols,
                "exists (x == 1 /\\ y == 1)",
            );
            (src, None)
        }
        "S" => {
            let cols = vec![
                seq(ctx, ctx.st("x", "2", false), ctx.st("y", "1", true)),
                seq(ctx, ctx.ld("r0", "y", true), ctx.st("x", "1", false)),
            ];
            let src = table(
                ctx,
                "S",
                "x = 0; y = 0;",
                &cols,
                "exists (P1:r0 == 1 /\\ x == 2)",
            );
            (src, None)
        }
        other => panic!("unknown family {other}"),
    }
}

const FAMILIES: [&str; 10] = [
    "MP", "SB", "LB", "IRIW", "CoRR", "CoWR", "WRC", "ISA2", "2+2W", "S",
];

fn sync_name(s: Sync) -> &'static str {
    match s {
        Sync::Weak => "weak",
        Sync::Relaxed => "rlx",
        Sync::RelAcq => "relacq",
        Sync::Fences => "fence",
        Sync::FenceSc => "fencesc",
    }
}

fn family_suite(arch: ArchKind) -> Vec<Test> {
    let mut out = Vec::new();
    for fam in FAMILIES {
        for sync in SYNCS {
            for scoping in [Scoping::Wide, Scoping::Narrow] {
                let ctx = Ctx {
                    arch,
                    sync,
                    scoping,
                };
                let (src, expected) = family(&ctx, fam);
                let scope_name = ctx.scope();
                let mut t = Test::new(
                    format!("{fam}-{}-{}", sync_name(sync), scope_name),
                    src,
                    Property::Safety,
                    1,
                );
                t.expected = expected;
                out.push(t);
            }
        }
    }
    out
}

/// The 106 PTX safety litmus tests (without proxies), exercised by both
/// PTX models (Table 5, "Safety" row for v6.0).
pub fn ptx_safety_suite() -> Vec<Test> {
    let mut out = family_suite(ArchKind::Ptx);
    debug_assert_eq!(out.len(), 100);
    // Six extra tests using barriers and RMWs.
    out.push(
        Test::new(
            "MP-barrier-cta",
            r#"
PTX MP-barrier
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
st.weak x, 1 | bar.cta.sync 0 ;
bar.cta.sync 0 | ld.weak r0, x ;
exists (P1:r0 == 0)
"#
            .into(),
            Property::Safety,
            1,
        )
        .expect(false),
    );
    out.push(
        Test::new(
            "SB-dynamic-barrier",
            crate::figures::FIG7_SB_BARRIER.into(),
            Property::Safety,
            1,
        )
        .expect(true),
    );
    out.push(
        Test::new(
            "rmw-add-unique",
            r#"
PTX rmw-add
{ c = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.relaxed.gpu.add r0, c, 1 | atom.relaxed.gpu.add r0, c, 1 ;
exists (P0:r0 == 0 /\ P1:r0 == 0)
"#
            .into(),
            Property::Safety,
            1,
        )
        .expect(false),
    );
    out.push(
        Test::new(
            "cas-exclusive",
            r#"
PTX cas-excl
{ lock = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.acquire.gpu.cas r0, lock, 0, 1 | atom.acquire.gpu.cas r0, lock, 0, 2 ;
exists (P0:r0 == 0 /\ P1:r0 == 0)
"#
            .into(),
            Property::Safety,
            1,
        )
        .expect(false),
    );
    out.push(
        Test::new(
            "MP-sys-cross-gpu",
            r#"
PTX MP-sys
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 1 ;
st.relaxed.sys x, 1 | ld.acquire.sys r0, flag ;
st.release.sys flag, 1 | ld.relaxed.sys r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#
            .into(),
            Property::Safety,
            1,
        )
        .expect(false),
    );
    out.push(
        Test::new(
            "MP-gpu-cross-gpu",
            r#"
PTX MP-gpu-narrow
{ x = 0; flag = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 1 ;
st.relaxed.gpu x, 1 | ld.acquire.gpu r0, flag ;
st.release.gpu flag, 1 | ld.relaxed.gpu r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#
            .into(),
            Property::Safety,
            1,
        )
        .expect(true),
    );
    assert_eq!(out.len(), 106);
    out
}

/// The 129 PTX proxy tests (v7.5 only; Table 5's extra safety tests).
pub fn ptx_proxy_suite() -> Vec<Test> {
    let mut out = Vec::new();
    let proxies = [
        ("surface", "sust", "suld"),
        ("texture", "tst", "tld"),
        ("constant", "cst", "cld"),
    ];
    // 4 families × 3 proxies × 5 fence configs × 2 scopes = 120.
    for fam in ["MP", "CoWW", "SB", "CoRR"] {
        for (proxy, pst, pld) in proxies {
            for fences in ["none", "writer", "reader", "both", "alias"] {
                for scope in ["cta", "gpu"] {
                    let (src, expected) = proxy_test(fam, proxy, pst, pld, fences, scope);
                    let mut t = Test::new(
                        format!("{fam}-{proxy}-{fences}-{scope}"),
                        src,
                        Property::Safety,
                        1,
                    );
                    t.expected = expected;
                    out.push(t);
                }
            }
        }
    }
    debug_assert_eq!(out.len(), 120);
    // Nine alias-fence specific tests: same-location cross-proxy
    // coherence with/without alias fences.
    for proxy in ["surface", "texture", "constant"] {
        for cfg in ["none", "one", "both"] {
            let f0 = if cfg != "none" {
                format!("fence.proxy.alias.{}\n", "cta")
            } else {
                String::new()
            };
            let f1 = if cfg == "both" {
                format!("fence.proxy.alias.{}\n", "cta")
            } else {
                String::new()
            };
            let src = format!(
                r#"
PTX alias-{proxy}-{cfg}
{{ x = 0; s -> x @ {proxy}; }}
P0@cta 0,gpu 0 ;
sust2 s, 1 ;
{f0}ld.weak r0, x ;
{f1}exists (P0:r0 == 0)
"#
            )
            .replace(
                "sust2",
                match proxy {
                    "surface" => "sust",
                    "texture" => "tst",
                    _ => "cst",
                },
            );
            out.push(Test::new(
                format!("alias-coherence-{proxy}-{cfg}"),
                src,
                Property::Safety,
                1,
            ));
        }
    }
    assert_eq!(out.len(), 129);
    out
}

fn proxy_test(
    fam: &str,
    proxy: &str,
    pst: &str,
    pld: &str,
    fences: &str,
    scope: &str,
) -> (String, Option<bool>) {
    let proxy_fence = format!("fence.proxy.{proxy}.{scope}");
    let alias_fence = format!("fence.proxy.alias.{scope}");
    let wf = matches!(fences, "writer" | "both");
    let rf_ = matches!(fences, "reader" | "both" | "alias");
    match fam {
        "MP" => {
            // Writer stores via the proxy; reader loads generically.
            let mut c0 = vec![format!("{pst} s, 1")];
            if wf {
                c0.push(proxy_fence.clone());
            }
            c0.push(format!("st.release.{scope} flag, 1"));
            let mut c1 = vec![format!("ld.acquire.{scope} r0, flag")];
            if rf_ {
                c1.push(alias_fence.clone());
            }
            c1.push("ld.weak r1, x".into());
            // Same CTA: proxy fences act within a CTA (`pxyFM ⊆ scta`).
            let src = two_thread_ptx(
                &format!("MP-{proxy}-{fences}-{scope}"),
                &format!("x = 0; flag = 0; s -> x @ {proxy};"),
                &c0,
                &c1,
                "exists (P1:r0 == 1 /\\ P1:r1 == 0)",
                false,
            );
            let expected = if fences == "both" && scope == "cta" {
                Some(false)
            } else if fences == "none" {
                Some(true)
            } else {
                None
            };
            (src, expected)
        }
        "CoWW" => {
            // Two writes to the same physical location via different
            // proxies in one thread; read back generically.
            let mut c0 = vec!["st.weak x, 1".to_string()];
            if wf {
                c0.push(proxy_fence.clone());
            }
            c0.push(format!("{pst} s, 2"));
            if rf_ {
                c0.push(alias_fence.clone());
            }
            c0.push("ld.weak r0, x".into());
            let src = two_thread_ptx(
                &format!("CoWW-{proxy}-{fences}-{scope}"),
                &format!("x = 0; y = 0; s -> x @ {proxy};"),
                &c0,
                &["st.weak y, 1".to_string()],
                "exists (P0:r0 == 1)",
                false,
            );
            (src, None)
        }
        "SB" => {
            let mut c0 = vec![format!("{pst} s, 1")];
            if wf {
                c0.push(proxy_fence.clone());
            }
            c0.push(format!("ld.relaxed.{scope} r0, y"));
            let mut c1 = vec![format!("st.relaxed.{scope} y, 1")];
            if rf_ {
                c1.push(alias_fence.clone());
            }
            c1.push("ld.weak r1, x".into());
            let src = two_thread_ptx(
                &format!("SB-{proxy}-{fences}-{scope}"),
                &format!("x = 0; y = 0; s -> x @ {proxy};"),
                &c0,
                &c1,
                "exists (P0:r0 == 0 /\\ P1:r1 == 0)",
                true,
            );
            (src, None)
        }
        "CoRR" => {
            let mut c1 = vec![format!("{pld} r0, s")];
            if rf_ {
                c1.push(alias_fence.clone());
            }
            c1.push("ld.weak r1, x".into());
            let src = two_thread_ptx(
                &format!("CoRR-{proxy}-{fences}-{scope}"),
                &format!("x = 0; s -> x @ {proxy};"),
                &[format!("st.relaxed.{scope} x, 1")],
                &c1,
                "exists (P1:r0 == 1 /\\ P1:r1 == 0)",
                true,
            );
            let _ = wf;
            (src, None)
        }
        other => panic!("unknown proxy family {other}"),
    }
}

fn two_thread_ptx(
    name: &str,
    prelude: &str,
    c0: &[String],
    c1: &[String],
    cond: &str,
    cross_cta: bool,
) -> String {
    let h1 = if cross_cta {
        "P1@cta 1,gpu 0"
    } else {
        "P1@cta 0,gpu 0"
    };
    let rows = c0.len().max(c1.len());
    let mut out = format!("PTX {name}\n{{ {prelude} }}\nP0@cta 0,gpu 0 | {h1} ;\n");
    for r in 0..rows {
        let a = c0.get(r).map_or("", String::as_str);
        let b = c1.get(r).map_or("", String::as_str);
        out.push_str(&format!("{a} | {b} ;\n"));
    }
    out.push_str(cond);
    out.push('\n');
    out
}

/// The 110 Vulkan safety tests (Table 5).
pub fn vulkan_safety_suite() -> Vec<Test> {
    let mut out = family_suite(ArchKind::Vulkan);
    debug_assert_eq!(out.len(), 100);
    let extras: [(&str, &str, u32, Option<bool>); 10] = [
        (
            "MP-av-vis-flags",
            r#"
VULKAN MP-avvis
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0.av.dv x, 1 | ld.atom.acq.dv.sc0 r0, flag ;
st.atom.rel.dv.sc0.semav.semsc0 flag, 1 | ld.sc0.vis.dv r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            Some(false),
        ),
        (
            "MP-missing-vis",
            r#"
VULKAN MP-novis
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0.priv x, 1 | ld.atom.acq.dv.sc0 r0, flag ;
st.atom.rel.dv.sc0 flag, 1 | ld.sc0.priv r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            Some(true),
        ),
        (
            "MP-avdevice-chain",
            r#"
VULKAN MP-avdevice
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | ld.atom.acq.dv.sc0 r0, flag ;
avdevice | membar.acq.dv.semsc0 ;
membar.rel.dv.semsc0 | visdevice ;
st.atom.dv.sc0 flag, 1 | ld.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            None,
        ),
        (
            "MP-ssw",
            r#"
VULKAN MP-ssw
{ x = 0; flag = 0; ssw P0 P1; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 1 ;
st.sc0 x, 1 | ld.sc0 r0, flag ;
st.sc0 flag, 1 | ld.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            None,
        ),
        (
            "MP-cbar-sync",
            r#"
VULKAN MP-cbar
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 1,wg 0,qf 0 ;
st.atom.dv.sc0 x, 1 | cbar.acqrel.semsc0 0 ;
cbar.acqrel.semsc0 0 | ld.atom.dv.sc0 r0, x ;
exists (P1:r0 == 0)
"#,
            1,
            Some(false),
        ),
        (
            "MP-sg-scope-same-sg",
            r#"
VULKAN MP-sg
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 0 ;
st.atom.sg.sc0 x, 1 | ld.atom.acq.sg.sc0 r0, flag ;
st.atom.rel.sg.sc0 flag, 1 | ld.atom.sg.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            Some(false),
        ),
        (
            "MP-qf-cross-qf",
            r#"
VULKAN MP-qf-narrow
{ x = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 1 ;
st.atom.qf.sc0 x, 1 | ld.atom.acq.qf.sc0 r0, flag ;
st.atom.rel.qf.sc0 flag, 1 | ld.atom.qf.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            Some(true),
        ),
        (
            "MP-sc1-chain",
            r#"
VULKAN MP-sc1
{ x = 0; y = 0 @ sc1; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | ld.atom.acq.dv.sc1 r0, y ;
membar.rel.dv.semsc0.semsc1 | membar.acq.dv.semsc0.semsc1 ;
st.atom.dv.sc1 y, 1 | ld.atom.dv.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            Some(false),
        ),
        (
            "MP-sc-mismatch",
            r#"
VULKAN MP-scmismatch
{ x = 0; y = 0 @ sc1; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | ld.atom.acq.dv.sc1 r0, y ;
membar.rel.dv.semsc1 | membar.acq.dv.semsc1 ;
st.atom.dv.sc1 y, 1 | ld.atom.dv.sc0 r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#,
            1,
            None,
        ),
        (
            "fig16-rmw-atomicity",
            crate::figures::FIG16_RMW_ATOMICITY,
            1,
            Some(true),
        ),
    ];
    for (name, src, bound, expected) in extras {
        let mut t = Test::new(name, src.into(), Property::Safety, bound);
        t.expected = expected;
        out.push(t);
    }
    assert_eq!(out.len(), 110);
    out
}

/// The 106 Vulkan data-race tests: the family suite with the `exists`
/// condition replaced by a `filter` (§7.1), plus six dedicated tests.
pub fn vulkan_drf_suite() -> Vec<Test> {
    let mut out = Vec::new();
    for mut t in family_suite(ArchKind::Vulkan) {
        // Replace the final condition with a filter.
        let src = t
            .source
            .replace("exists (", "filter (")
            .replace("forall (", "filter (");
        t.source = src;
        t.property = Property::DataRaceFreedom;
        // Plain accesses race; fully synchronized wide accesses do not.
        // Coherence-shaped families (CoRR/CoWR) have unsatisfiable
        // filters, so no behaviour is even considered there.
        let coherence_family = t.name.starts_with("CoRR") || t.name.starts_with("CoWR");
        t.expected = match t.name.split('-').nth(1) {
            Some("weak") if !coherence_family => Some(true),
            Some("relacq") | Some("fence") | Some("fencesc")
                if t.name.ends_with("dv") && t.name.starts_with("MP") =>
            {
                Some(false)
            }
            _ => None,
        };
        t.name = format!("drf-{}", t.name);
        out.push(t);
    }
    debug_assert_eq!(out.len(), 100);
    let extras: [(&str, &str, Option<bool>); 6] = [
        (
            "drf-priv-no-race",
            r#"
VULKAN drf-priv
{ x = 0; y = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0.priv x, 1 | st.sc0.priv y, 1 ;
exists (x == 1)
"#,
            Some(false),
        ),
        (
            "drf-atomic-contention",
            r#"
VULKAN drf-atomics
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 x, 1 | st.atom.dv.sc0 x, 2 ;
exists (x == 1)
"#,
            Some(false),
        ),
        (
            "drf-atomic-scope-mismatch",
            r#"
VULKAN drf-scope-mismatch
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.wg.sc0 x, 1 | st.atom.wg.sc0 x, 2 ;
exists (x == 1)
"#,
            Some(true),
        ),
        (
            "drf-rmw-vs-plain",
            r#"
VULKAN drf-rmw-plain
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | atom.add.dv.sc0 r0, x, 1 ;
exists (x == 2)
"#,
            Some(true),
        ),
        (
            "drf-read-read",
            r#"
VULKAN drf-rr
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
ld.sc0 r0, x | ld.sc0 r0, x ;
exists (P0:r0 == 0)
"#,
            Some(false),
        ),
        ("drf-xf-original", crate::figures::FIG3_XF_RACY, Some(true)),
    ];
    for (name, src, expected) in extras {
        let mut t = Test::new(name, src.into(), Property::DataRaceFreedom, 2);
        t.expected = expected;
        out.push(t);
    }
    assert_eq!(out.len(), 106);
    out
}

/// The 73 forward-progress (liveness) tests, ported in spirit from the
/// GPU Harbor suite (§7.1). Each exists in both dialects.
pub fn liveness_suite() -> Vec<Test> {
    let mut out = Vec::new();
    for arch in [ArchKind::Ptx, ArchKind::Vulkan] {
        for spinners in [1usize, 2, 3] {
            for order_acq in [false, true] {
                for fam in [
                    "spin-never-set",
                    "spin-wrong-value",
                    "spin-deadlock-pair",
                    "spin-writer",
                    "spin-chain",
                    "spin-after-barrier",
                ] {
                    let (src, expected) = liveness_test(arch, fam, spinners, order_acq);
                    let mut t = Test::new(
                        format!(
                            "{fam}-{}-{}spin-{}",
                            if arch == ArchKind::Ptx { "ptx" } else { "vk" },
                            spinners,
                            if order_acq { "acq" } else { "rlx" }
                        ),
                        src,
                        Property::Liveness,
                        2,
                    );
                    t.expected = Some(expected);
                    out.push(t);
                }
            }
        }
    }
    debug_assert_eq!(out.len(), 72);
    // Figure 14 (in spirit): the XF-barrier deadlock — a leader waits
    // for a representative that is itself waiting for the leader, as
    // happens when the barrier's flags are not properly handed off.
    out.push(
        Test::new(
            "fig14-xf-liveness",
            r#"
VULKAN fig14-xf-liveness
{ fin = 0; fout = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
LC00: | LC10: ;
ld.sc0 r0, fin | ld.sc0 r1, fout ;
bne r0, 1, LC00 | bne r1, 1, LC10 ;
st.sc0 fout, 1 | st.sc0 fin, 1 ;
exists (P0:r0 == 1 /\ P1:r1 == 1)
"#
            .into(),
            Property::Liveness,
            2,
        )
        .expect(true),
    );
    assert_eq!(out.len(), 73);
    out
}

fn liveness_test(arch: ArchKind, fam: &str, spinners: usize, acq: bool) -> (String, bool) {
    let (hdr, ld, st): (fn(usize) -> String, String, String) = match arch {
        ArchKind::Ptx => (
            |i| format!("P{i}@cta 0,gpu 0"),
            if acq {
                "ld.acquire.gpu".into()
            } else {
                "ld.relaxed.gpu".into()
            },
            "st.relaxed.gpu".into(),
        ),
        ArchKind::Vulkan => (
            |i| format!("P{i}@sg 0,wg {i},qf 0"),
            if acq {
                "ld.atom.acq.dv.sc0".into()
            } else {
                "ld.atom.dv.sc0".into()
            },
            "st.atom.dv.sc0".into(),
        ),
    };
    let arch_name = if arch == ArchKind::Ptx {
        "PTX"
    } else {
        "VULKAN"
    };
    let spin = |flag: &str| {
        vec![
            "LC00:".to_string(),
            format!("{ld} r0, {flag}"),
            "bne r0, 1, LC00".to_string(),
        ]
    };
    let mut cols: Vec<Vec<String>> = Vec::new();
    let violated = match fam {
        "spin-never-set" => {
            for _ in 0..spinners {
                cols.push(spin("flag"));
            }
            true
        }
        "spin-wrong-value" => {
            for _ in 0..spinners {
                cols.push(spin("flag"));
            }
            cols.push(vec![format!("{st} flag, 2")]);
            true
        }
        "spin-deadlock-pair" => {
            // P0 waits for f1 then sets f0; P1 waits for f0 then sets f1.
            cols.push({
                let mut c = spin("f1");
                c.push(format!("{st} f0, 1"));
                c
            });
            cols.push({
                let mut c = spin("f0");
                c.push(format!("{st} f1, 1"));
                c
            });
            for _ in 2..spinners {
                cols.push(spin("f0"));
            }
            true
        }
        "spin-writer" => {
            for _ in 0..spinners {
                cols.push(spin("flag"));
            }
            cols.push(vec![format!("{st} flag, 1")]);
            false
        }
        "spin-chain" => {
            // Writer sets f0; each spinner i waits for f_i and sets f_{i+1}.
            cols.push(vec![format!("{st} f0, 1")]);
            for i in 0..spinners {
                let mut c = vec![
                    format!("LC0{i}:"),
                    format!("{ld} r0, f{i}"),
                    format!("bne r0, 1, LC0{i}"),
                ];
                c.push(format!("{st} f{}, 1", i + 1));
                cols.push(c);
            }
            false
        }
        "spin-after-barrier" => {
            // Writer passes a control barrier before setting the flag —
            // the flag still arrives, so no violation.
            let bar = match arch {
                ArchKind::Ptx => "bar.cta.sync 0".to_string(),
                ArchKind::Vulkan => "cbar 0".to_string(),
            };
            for _ in 0..spinners {
                let mut c = vec![bar.clone()];
                c.extend(spin("flag"));
                cols.push(c);
            }
            cols.push(vec![bar, format!("{st} flag, 1")]);
            false
        }
        other => panic!("unknown liveness family {other}"),
    };
    // Memory prelude: every flag used.
    let mut flags: Vec<&str> = Vec::new();
    let joined = cols
        .iter()
        .flat_map(|c| c.iter())
        .cloned()
        .collect::<Vec<_>>()
        .join(" ");
    for f in ["flag", "f0", "f1", "f2", "f3", "f4"] {
        if joined.contains(&format!(", {f}")) || joined.contains(&format!("{f},")) {
            flags.push(f);
        }
    }
    let prelude: Vec<String> = flags.iter().map(|f| format!("{f} = 0;")).collect();
    let header: Vec<String> = (0..cols.len()).map(hdr).collect();
    let rows = cols.iter().map(Vec::len).max().unwrap_or(0);
    let mut src = format!(
        "{arch_name} {fam}\n{{ {} }}\n{} ;\n",
        prelude.join(" "),
        header.join(" | ")
    );
    for r in 0..rows {
        let cells: Vec<&str> = cols
            .iter()
            .map(|c| c.get(r).map_or("", String::as_str))
            .collect();
        src.push_str(&format!("{} ;\n", cells.join(" | ")));
    }
    src.push_str("exists (P0:r0 == 1)\n");
    (src, violated)
}
