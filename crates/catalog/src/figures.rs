//! The paper's figures as named litmus tests.

use crate::{Property, Test};

/// Figure 6: non-causal weak writes are not ordered by coherence in PTX.
pub const FIG6_PARTIAL_CO: &str = r#"
PTX fig6-partial-co
{ x = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 | P3@cta 0,gpu 0 ;
st.weak x, 1 | st.weak x, 2 | ld.acquire.sys r0, x | ld.acquire.sys r2, x ;
 | | ld.acquire.sys r1, x | ld.acquire.sys r3, x ;
exists (P2:r0 == 1 /\ P2:r1 == 2 /\ P3:r2 == 2 /\ P3:r3 == 1)
"#;

/// Figure 7: store buffering with a dynamic control barrier.
pub const FIG7_SB_BARRIER: &str = r#"
PTX fig7-sb-dynamic-barrier
{ x = 0; y = 0; z = 0; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 | P2@cta 0,gpu 0 ;
st.weak x, 1 | st.weak y, 1 | st.weak z, 1 ;
ld.weak r2, z | bar.cta.sync 1 | ;
bar.cta.sync r2 | ld.weak r1, x | ;
ld.weak r0, y | | ;
forall (P0:r0 == 1 \/ P1:r1 == 1)
"#;

/// Figure 5 (reconstructed): message passing across proxies with proxy
/// fences.
pub const FIG5_MP_PROXIES: &str = r#"
PTX fig5-mp-proxies
{ x = 0; flag = 0; s -> x @ surface; }
P0@cta 0,gpu 0 | P1@cta 0,gpu 0 ;
sust s, 1 | ld.acquire.cta r0, flag ;
fence.proxy.surface.cta | fence.proxy.alias.cta ;
st.release.cta flag, 1 | ld.weak r1, x ;
exists (P1:r0 == 1 /\ P1:r1 == 0)
"#;

/// Figure 10: MP with a spinloop and release/acquire barriers.
pub const FIG10_MP_SPIN: &str = r#"
VULKAN fig10-mp-spin
{ data = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 data, 1 | LC00: ;
membar.rel.dv.semsc0 | ld.atom.dv.sc0 r1, flag ;
st.atom.dv.sc0 flag, 1 | membar.acq.dv.semsc0 ;
 | bne r1, 0, LC01 ;
 | goto LC00 ;
 | LC01: ;
 | ld.atom.dv.sc0 r2, data ;
exists (P1:r1 == 1 /\ P1:r2 != 1)
"#;

/// Figure 11: the unsound NIR loop-removal optimization.
pub const FIG11_NIR_BUG: &str = r#"
VULKAN fig11-nir-optimized
{ data = 0; flag = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.atom.dv.sc0 data, 1 | membar.acq.dv.semsc0 ;
membar.rel.dv.semsc0 | ld.atom.dv.sc0 r2, data ;
st.atom.dv.sc0 flag, 1 | ;
exists (P1:r2 != 1)
"#;

/// Figure 12: the ABP work-stealing deque push/steal snippet, with the
/// fences that make it correct.
pub const FIG12_DEQUE_FENCED: &str = r#"
PTX fig12-deque
{ arr[2] = {0,0}; t = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak arr[0], 1 | ld.acquire.gpu r0, t ;
fence.acq_rel.gpu | fence.acq_rel.gpu ;
ld.relaxed.gpu r1, t | ld.weak r2, arr[0] ;
add r2, r1, 1 | ;
st.relaxed.gpu t, r2 | ;
exists (P1:r0 == 1 /\ P1:r2 == 0)
"#;

/// Figure 12 without fences: the original buggy deque.
pub const FIG12_DEQUE_UNFENCED: &str = r#"
PTX fig12-deque-buggy
{ arr[2] = {0,0}; t = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
st.weak arr[0], 1 | ld.acquire.gpu r0, t ;
ld.relaxed.gpu r1, t | ld.weak r2, arr[0] ;
add r2, r1, 1 | ;
st.relaxed.gpu t, r2 | ;
exists (P1:r0 == 1 /\ P1:r2 == 0)
"#;

/// Figure 13: the libcu++ ticket mutex.
pub const FIG13_TICKET_MUTEX: &str = r#"
PTX fig13-ticket-mutex
{ in = 0; out = 0; x = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.acquire.gpu.add r1, in, 1 | atom.acquire.gpu.add r1, in, 1 ;
LC00: | LC10: ;
ld.acquire.gpu r2, out | ld.acquire.gpu r2, out ;
beq r1, r2, LC01 | beq r1, r2, LC11 ;
goto LC00 | goto LC10 ;
LC01: | LC11: ;
ld.weak r3, x | ld.weak r3, x ;
st.weak x, 1 | st.weak x, 2 ;
atom.release.gpu.add r4, out, 1 | atom.release.gpu.add r4, out, 1 ;
exists (P0:r1 == P0:r2 /\ P1:r1 == P1:r2 /\ P0:r3 == 0 /\ P1:r3 == 0)
"#;

/// Figure 13 with the acquire increments relaxed — the optimization
/// Dartagnan shows to be sound (§5).
pub const FIG13_TICKET_MUTEX_RELAXED: &str = r#"
PTX fig13-ticket-mutex-rlx
{ in = 0; out = 0; x = 0; }
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;
atom.relaxed.gpu.add r1, in, 1 | atom.relaxed.gpu.add r1, in, 1 ;
LC00: | LC10: ;
ld.acquire.gpu r2, out | ld.acquire.gpu r2, out ;
beq r1, r2, LC01 | beq r1, r2, LC11 ;
goto LC00 | goto LC10 ;
LC01: | LC11: ;
ld.weak r3, x | ld.weak r3, x ;
st.weak x, 1 | st.weak x, 2 ;
atom.release.gpu.add r4, out, 1 | atom.release.gpu.add r4, out, 1 ;
exists (P0:r1 == P0:r2 /\ P1:r1 == P1:r2 /\ P0:r3 == 0 /\ P1:r3 == 0)
"#;

/// Figure 16: the RMW-atomicity hole in the Vulkan model.
pub const FIG16_RMW_ATOMICITY: &str = r#"
VULKAN fig16-rmw-atomicity
{ x = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 0,qf 0 | P2@sg 0,wg 0,qf 0 ;
st.sc0 x, 1 | cbar.acqrel.semsc0 0 | cbar.acqrel.semsc0 0 ;
cbar.acqrel.semsc0 0 | atom.add.dv.sc0 r0, x, 1 | atom.add.dv.sc0 r0, x, 1 ;
exists (P1:r0 == 1 /\ P2:r0 == 1)
"#;

/// Figure 3 (simplified original XF barrier with plain accesses): racy.
pub const FIG3_XF_RACY: &str = r#"
VULKAN fig3-xf-original
{ x = 0; f = 0; }
P0@sg 0,wg 0,qf 0 | P1@sg 0,wg 1,qf 0 ;
st.sc0 x, 1 | LC00: ;
st.sc0 f, 1 | ld.sc0 r1, f ;
 | bne r1, 1, LC00 ;
 | ld.sc0 r2, x ;
exists (P1:r1 == 1 /\ P1:r2 == 0)
"#;

/// All figure tests with their paper-established expectations.
pub fn figure_tests() -> Vec<Test> {
    vec![
        Test::new(
            "fig6-partial-co",
            FIG6_PARTIAL_CO.into(),
            Property::Safety,
            1,
        )
        .expect(true),
        Test::new(
            "fig7-sb-barrier",
            FIG7_SB_BARRIER.into(),
            Property::Safety,
            1,
        )
        .expect(true),
        Test::new(
            "fig5-mp-proxies",
            FIG5_MP_PROXIES.into(),
            Property::Safety,
            1,
        )
        .expect(false),
        Test::new("fig10-mp-spin", FIG10_MP_SPIN.into(), Property::Safety, 2).expect(false),
        Test::new("fig11-nir-bug", FIG11_NIR_BUG.into(), Property::Safety, 1).expect(true),
        Test::new(
            "fig12-deque",
            FIG12_DEQUE_FENCED.into(),
            Property::Safety,
            1,
        )
        .expect(false),
        Test::new(
            "fig12-deque-buggy",
            FIG12_DEQUE_UNFENCED.into(),
            Property::Safety,
            1,
        )
        .expect(true),
        Test::new(
            "fig13-ticket-mutex",
            FIG13_TICKET_MUTEX.into(),
            Property::Safety,
            2,
        )
        .expect(false),
        Test::new(
            "fig13-ticket-mutex-rlx",
            FIG13_TICKET_MUTEX_RELAXED.into(),
            Property::Safety,
            2,
        )
        .expect(false),
        Test::new(
            "fig16-rmw-atomicity",
            FIG16_RMW_ATOMICITY.into(),
            Property::Safety,
            1,
        )
        .expect(true),
        Test::new(
            "fig3-xf-racy",
            FIG3_XF_RACY.into(),
            Property::DataRaceFreedom,
            2,
        )
        .expect(true),
    ]
}
