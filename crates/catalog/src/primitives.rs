//! The Table 7 synchronization primitives: caslock, ticketlock,
//! ttaslock, and the XF inter-workgroup barrier — each with the
//! weakening variants the paper evaluates (`acq2rx`, `rel2rx`, `dv2wg`).
//!
//! Every primitive is emitted as Vulkan litmus source (the paper
//! compiles them from OpenCL to SPIR-V; our SPIR-V front-end consumes
//! the same programs through `gpumc_spirv::lower`).

use crate::{Property, Test};

/// The thread organization: `x` threads per workgroup, `y` workgroups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid {
    /// Threads per workgroup.
    pub x: u32,
    /// Workgroups.
    pub y: u32,
}

impl Grid {
    /// Creates a grid.
    pub fn new(x: u32, y: u32) -> Grid {
        Grid { x, y }
    }

    /// Total number of threads.
    pub fn threads(&self) -> u32 {
        self.x * self.y
    }
}

impl std::fmt::Display for Grid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.x, self.y)
    }
}

/// The synchronization primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Spin lock acquired with compare-and-swap.
    CasLock,
    /// The libcu++-style ticket lock (Figure 13).
    TicketLock,
    /// Test-and-test-and-set lock.
    TtasLock,
    /// The XF inter-workgroup barrier (Figure 1).
    XfBarrier,
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Primitive::CasLock => "caslock",
            Primitive::TicketLock => "ticketlock",
            Primitive::TtasLock => "ttaslock",
            Primitive::XfBarrier => "xf-barrier",
        })
    }
}

/// The weakening applied to a primitive (Table 7 postfixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The correct implementation.
    Base,
    /// Acquire operations weakened to relaxed. The index selects which
    /// acquire site is weakened for the XF barrier (`acq2rx-1`/`-2`).
    Acq2Rx(u8),
    /// Release operations weakened to relaxed.
    Rel2Rx(u8),
    /// Device scope reduced to workgroup scope.
    Dv2Wg,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Base => f.write_str("base"),
            Variant::Acq2Rx(0) => f.write_str("acq2rx"),
            Variant::Acq2Rx(i) => write!(f, "acq2rx-{i}"),
            Variant::Rel2Rx(0) => f.write_str("rel2rx"),
            Variant::Rel2Rx(i) => write!(f, "rel2rx-{i}"),
            Variant::Dv2Wg => f.write_str("dv2wg"),
        }
    }
}

/// One Table 7 benchmark row.
#[derive(Debug, Clone)]
pub struct PrimitiveBench {
    /// Row name, e.g. `caslock-acq2rx`.
    pub name: String,
    /// Which primitive.
    pub primitive: Primitive,
    /// Applied weakening.
    pub variant: Variant,
    /// Thread organization.
    pub grid: Grid,
    /// Generated litmus test (mutual-exclusion / stale-observation
    /// violation as the `exists` condition).
    pub test: Test,
    /// Whether the implementation is correct (the condition must be
    /// unreachable) per Table 7.
    pub expect_correct: bool,
}

/// Emission context for scope/order selection.
struct Style {
    variant: Variant,
}

impl Style {
    fn scope(&self) -> &'static str {
        if self.variant == Variant::Dv2Wg {
            "wg"
        } else {
            "dv"
        }
    }

    /// Acquire qualifier for acquire site `site`.
    fn acq(&self, site: u8) -> &'static str {
        match self.variant {
            Variant::Acq2Rx(s) if s == 0 || s == site => "",
            _ => ".acq",
        }
    }

    /// Release qualifier for release site `site`.
    fn rel(&self, site: u8) -> &'static str {
        match self.variant {
            Variant::Rel2Rx(s) if s == 0 || s == site => "",
            _ => ".rel",
        }
    }
}

fn emit(name: &str, prelude: &str, cols: &[(String, Vec<String>)], cond: &str) -> String {
    let rows = cols.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    let headers: Vec<&str> = cols.iter().map(|(h, _)| h.as_str()).collect();
    let mut out = format!(
        "VULKAN {name}\n{{ {prelude} }}\n{} ;\n",
        headers.join(" | ")
    );
    for r in 0..rows {
        let cells: Vec<&str> = cols
            .iter()
            .map(|(_, c)| c.get(r).map_or("", String::as_str))
            .collect();
        out.push_str(&format!("{} ;\n", cells.join(" | ")));
    }
    out.push_str(cond);
    out.push('\n');
    out
}

fn thread_header(t: u32, grid: Grid) -> String {
    format!("P{t}@sg 0,wg {},qf 0", t / grid.x)
}

/// Mutual-exclusion condition between the first threads of the first two
/// workgroups (or the first two threads when there is one workgroup).
fn mutex_condition(grid: Grid, reg: &str) -> String {
    let a = 0;
    let b = if grid.y > 1 { grid.x } else { 1 };
    format!("exists (P{a}:{reg} == 0 /\\ P{b}:{reg} == 0)")
}

/// Generates the litmus source of a primitive instance.
pub fn primitive_source(p: Primitive, variant: Variant, grid: Grid) -> String {
    let s = Style { variant };
    let scope = s.scope();
    match p {
        Primitive::CasLock => {
            let mut cols = Vec::new();
            for t in 0..grid.threads() {
                let code = vec![
                    "LC00:".to_string(),
                    format!("atom.cas{}.{scope}.sc0 r0, lock, 0, 1", s.acq(1)),
                    "bne r0, 0, LC00".to_string(),
                    "ld.sc0 r1, x".to_string(),
                    format!("st.sc0 x, {}", t + 1),
                    format!("st.atom{}.{scope}.sc0 lock, 0", s.rel(1)),
                ];
                cols.push((thread_header(t, grid), code));
            }
            emit(
                &format!("caslock-{variant}-{grid}"),
                "lock = 0; x = 0;",
                &cols,
                &mutex_condition(grid, "r1"),
            )
        }
        Primitive::TicketLock => {
            let mut cols = Vec::new();
            for t in 0..grid.threads() {
                let code = vec![
                    format!("atom{}.{scope}.sc0.add r1, in, 1", s.acq(1)),
                    "LC00:".to_string(),
                    format!("ld.atom{}.{scope}.sc0 r2, out", s.acq(2)),
                    "bne r1, r2, LC00".to_string(),
                    "ld.sc0 r3, x".to_string(),
                    format!("st.sc0 x, {}", t + 1),
                    format!("atom{}.{scope}.sc0.add r4, out, 1", s.rel(1)),
                ];
                cols.push((thread_header(t, grid), code));
            }
            emit(
                &format!("ticketlock-{variant}-{grid}"),
                "in = 0; out = 0; x = 0;",
                &cols,
                &mutex_condition(grid, "r3"),
            )
        }
        Primitive::TtasLock => {
            let mut cols = Vec::new();
            for t in 0..grid.threads() {
                let code = vec![
                    "LC00:".to_string(),
                    format!("ld.atom{}.{scope}.sc0 r0, lock", s.acq(1)),
                    "bne r0, 0, LC00".to_string(),
                    format!("atom.cas{}.{scope}.sc0 r1, lock, 0, 1", s.acq(2)),
                    "bne r1, 0, LC00".to_string(),
                    "ld.sc0 r2, x".to_string(),
                    format!("st.sc0 x, {}", t + 1),
                    format!("st.atom{}.{scope}.sc0 lock, 0", s.rel(1)),
                ];
                cols.push((thread_header(t, grid), code));
            }
            emit(
                &format!("ttaslock-{variant}-{grid}"),
                "lock = 0; x = 0;",
                &cols,
                &mutex_condition(grid, "r2"),
            )
        }
        Primitive::XfBarrier => xf_barrier(&s, grid),
    }
}

/// The XF inter-workgroup barrier (Figure 1): workgroup 0 holds the
/// leaders; each other workgroup has a representative (local id 0).
/// Every thread writes its slot of `data` before the barrier and reads
/// its neighbour's slot after it.
fn xf_barrier(s: &Style, grid: Grid) -> String {
    let scope = s.scope();
    let total = grid.threads();
    let followers = grid.y.saturating_sub(1);
    let mut cols = Vec::new();
    for t in 0..total {
        let wg = t / grid.x;
        let local = t % grid.x;
        let mut code = vec![format!("st.sc0 data[{t}], 1")];
        // Control barriers synchronize per *dynamic instance*; in the
        // litmus encoding each textual barrier gets its own id (the two
        // follower barriers must not pair up across arrivals).
        if wg == 0 {
            // Leader i manages follower workgroup i+1.
            if local < followers {
                code.push("LC00:".to_string());
                code.push(format!("ld.atom{}.{scope}.sc0 r0, fin[{local}]", s.acq(1)));
                code.push("bne r0, 1, LC00".to_string());
            }
            code.push("cbar.acqrel.semsc0 99".to_string());
            if local < followers {
                code.push(format!("st.atom{}.{scope}.sc0 fout[{local}], 1", s.rel(1)));
            }
        } else {
            code.push(format!("cbar.acqrel.semsc0 {wg}"));
            if local == 0 {
                // Representative.
                code.push(format!(
                    "st.atom{}.{scope}.sc0 fin[{}], 1",
                    s.rel(2),
                    wg - 1
                ));
                code.push("LC01:".to_string());
                code.push(format!(
                    "ld.atom{}.{scope}.sc0 r0, fout[{}]",
                    s.acq(2),
                    wg - 1
                ));
                code.push("bne r0, 1, LC01".to_string());
            }
            code.push(format!("cbar.acqrel.semsc0 {}", wg + 50));
        }
        let neighbour = (t + 1) % total;
        code.push(format!("ld.sc0 r9, data[{neighbour}]"));
        cols.push((thread_header(t, grid), code));
    }
    let conds: Vec<String> = (0..total).map(|t| format!("P{t}:r9 == 0")).collect();
    emit(
        &format!("xf-barrier-{}-{grid}", s.variant),
        &format!(
            "data[{total}]; fin[{}]; fout[{}];",
            followers.max(1),
            followers.max(1)
        ),
        &cols,
        &format!("exists ({})", conds.join(" \\/ ")),
    )
}

/// The twenty Table 7 benchmark rows.
pub fn primitive_benchmarks() -> Vec<PrimitiveBench> {
    let rows: Vec<(Primitive, Variant, Grid, bool)> = vec![
        (Primitive::CasLock, Variant::Base, Grid::new(2, 3), true),
        (
            Primitive::CasLock,
            Variant::Acq2Rx(0),
            Grid::new(4, 2),
            false,
        ),
        (
            Primitive::CasLock,
            Variant::Rel2Rx(0),
            Grid::new(4, 2),
            false,
        ),
        (Primitive::CasLock, Variant::Dv2Wg, Grid::new(4, 1), true),
        (Primitive::CasLock, Variant::Dv2Wg, Grid::new(4, 2), false),
        (Primitive::TicketLock, Variant::Base, Grid::new(2, 3), true),
        (
            Primitive::TicketLock,
            Variant::Acq2Rx(0),
            Grid::new(4, 2),
            false,
        ),
        (
            Primitive::TicketLock,
            Variant::Rel2Rx(0),
            Grid::new(4, 2),
            false,
        ),
        (Primitive::TicketLock, Variant::Dv2Wg, Grid::new(4, 1), true),
        (
            Primitive::TicketLock,
            Variant::Dv2Wg,
            Grid::new(4, 2),
            false,
        ),
        // ttaslock's nested spin explodes under the tree-shaped
        // unroller, so its grids are scaled down from the paper's 4.2
        // (see EXPERIMENTS.md); the verdicts and the correct-vs-buggy
        // time asymmetry are unaffected.
        (Primitive::TtasLock, Variant::Base, Grid::new(2, 2), true),
        (
            Primitive::TtasLock,
            Variant::Acq2Rx(0),
            Grid::new(2, 2),
            false,
        ),
        (
            Primitive::TtasLock,
            Variant::Rel2Rx(0),
            Grid::new(2, 2),
            false,
        ),
        (Primitive::TtasLock, Variant::Dv2Wg, Grid::new(2, 1), true),
        (Primitive::TtasLock, Variant::Dv2Wg, Grid::new(2, 2), false),
        (Primitive::XfBarrier, Variant::Base, Grid::new(3, 3), true),
        (
            Primitive::XfBarrier,
            Variant::Acq2Rx(1),
            Grid::new(2, 2),
            false,
        ),
        (
            Primitive::XfBarrier,
            Variant::Acq2Rx(2),
            Grid::new(2, 2),
            false,
        ),
        (
            Primitive::XfBarrier,
            Variant::Rel2Rx(1),
            Grid::new(2, 2),
            false,
        ),
        (
            Primitive::XfBarrier,
            Variant::Rel2Rx(2),
            Grid::new(2, 2),
            false,
        ),
    ];
    rows.into_iter()
        .map(|(p, variant, grid, correct)| {
            let name = if variant == Variant::Base {
                format!("{p}")
            } else {
                format!("{p}-{variant}")
            };
            let source = primitive_source(p, variant, grid);
            let mut test = Test::new(format!("{name}-{grid}"), source, Property::Safety, 2);
            // Correct ⇔ the violating condition is unreachable.
            test.expected = Some(!correct);
            PrimitiveBench {
                name,
                primitive: p,
                variant,
                grid,
                test,
                expect_correct: correct,
            }
        })
        .collect()
}

/// Emits a PTX-dialect version of a lock primitive (the paper's
/// portability use case: the same algorithm checked under another
/// architecture's consistency model). The `dv2wg` variant maps to a
/// `gpu → cta` scope reduction.
///
/// # Panics
///
/// Panics for [`Primitive::XfBarrier`], which is only provided in the
/// Vulkan dialect.
pub fn primitive_source_ptx(p: Primitive, variant: Variant, grid: Grid) -> String {
    assert!(
        p != Primitive::XfBarrier,
        "the XF barrier is provided in the Vulkan dialect only"
    );
    let scope = if variant == Variant::Dv2Wg {
        "cta"
    } else {
        "gpu"
    };
    let acq = |site: u8| match variant {
        Variant::Acq2Rx(s) if s == 0 || s == site => "relaxed",
        _ => "acquire",
    };
    let rel = |site: u8| match variant {
        Variant::Rel2Rx(s) if s == 0 || s == site => "relaxed",
        _ => "release",
    };
    let header = |t: u32| format!("P{t}@cta {},gpu 0", t / grid.x);
    let mut cols = Vec::new();
    for t in 0..grid.threads() {
        let code: Vec<String> = match p {
            Primitive::CasLock => vec![
                "LC00:".into(),
                format!("atom.{}.{scope}.cas r0, lock, 0, 1", acq(1)),
                "bne r0, 0, LC00".into(),
                "ld.weak r1, x".into(),
                format!("st.weak x, {}", t + 1),
                format!("st.{}.{scope} lock, 0", rel(1)),
            ],
            Primitive::TicketLock => vec![
                format!("atom.{}.{scope}.add r1, in, 1", acq(1)),
                "LC00:".into(),
                format!("ld.{}.{scope} r2, out", acq(2)),
                "bne r1, r2, LC00".into(),
                "ld.weak r3, x".into(),
                format!("st.weak x, {}", t + 1),
                format!("atom.{}.{scope}.add r4, out, 1", rel(1)),
            ],
            Primitive::TtasLock => vec![
                "LC00:".into(),
                format!("ld.{}.{scope} r0, lock", acq(1)),
                "bne r0, 0, LC00".into(),
                format!("atom.{}.{scope}.cas r1, lock, 0, 1", acq(2)),
                "bne r1, 0, LC00".into(),
                "ld.weak r2, x".into(),
                format!("st.weak x, {}", t + 1),
                format!("st.{}.{scope} lock, 0", rel(1)),
            ],
            Primitive::XfBarrier => unreachable!(),
        };
        cols.push((header(t), code));
    }
    let prelude = match p {
        Primitive::TicketLock => "in = 0; out = 0; x = 0;",
        _ => "lock = 0; x = 0;",
    };
    let reg = match p {
        Primitive::CasLock => "r1",
        Primitive::TicketLock => "r3",
        _ => "r2",
    };
    let mut src = format!(
        "PTX {p}-{variant}-{grid}-ptx\n{{ {prelude} }}\n{} ;\n",
        cols.iter()
            .map(|(h, _)| h.as_str())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let rows = cols.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for r in 0..rows {
        let cells: Vec<&str> = cols
            .iter()
            .map(|(_, c)| c.get(r).map_or("", String::as_str))
            .collect();
        src.push_str(&format!("{} ;\n", cells.join(" | ")));
    }
    src.push_str(&mutex_condition(grid, reg));
    src.push('\n');
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_rows_like_table7() {
        let rows = primitive_benchmarks();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows.iter().filter(|r| r.expect_correct).count(), 7);
    }

    #[test]
    fn caslock_source_shape() {
        let src = primitive_source(Primitive::CasLock, Variant::Base, Grid::new(2, 3));
        assert_eq!(src.matches("atom.cas.acq.dv.sc0").count(), 6);
        assert_eq!(src.matches("st.atom.rel.dv.sc0 lock, 0").count(), 6);
        assert!(src.contains("P2@sg 0,wg 1,qf 0"));
    }

    #[test]
    fn variants_change_orders_and_scopes() {
        let relaxed = primitive_source(Primitive::CasLock, Variant::Acq2Rx(0), Grid::new(4, 2));
        assert!(relaxed.contains("atom.cas.dv.sc0"));
        assert!(!relaxed.contains("cas.acq"));
        let narrow = primitive_source(Primitive::CasLock, Variant::Dv2Wg, Grid::new(4, 2));
        assert!(narrow.contains("atom.cas.acq.wg.sc0"));
        assert!(!narrow.contains(".dv."));
    }

    #[test]
    fn xf_barrier_structure() {
        let src = primitive_source(Primitive::XfBarrier, Variant::Base, Grid::new(3, 3));
        // Two follower workgroups: two fin/fout slots.
        assert!(src.contains("fin[2]"));
        // Leaders' barrier id 9 + two barriers per follower thread.
        assert_eq!(src.matches("cbar.acqrel.semsc0 99").count(), 3);
        // Each follower thread arrives at two distinct barrier instances.
        assert_eq!(src.matches("cbar.acqrel.semsc0 1").count(), 3);
        assert_eq!(src.matches("cbar.acqrel.semsc0 51").count(), 3);
    }

    #[test]
    fn xf_acq_site_selection() {
        let v1 = primitive_source(Primitive::XfBarrier, Variant::Acq2Rx(1), Grid::new(2, 2));
        // Site 1 (leader spin) relaxed; site 2 (representative) acquire.
        assert!(v1.contains("ld.atom.dv.sc0 r0, fin[0]"));
        assert!(v1.contains("ld.atom.acq.dv.sc0 r0, fout[0]"));
        let v2 = primitive_source(Primitive::XfBarrier, Variant::Acq2Rx(2), Grid::new(2, 2));
        assert!(v2.contains("ld.atom.acq.dv.sc0 r0, fin[0]"));
        assert!(v2.contains("ld.atom.dv.sc0 r0, fout[0]"));
    }
}
