//! Litmus-test corpora: the paper's figures, the Table 5 validation
//! suites, the Figure 15 scalability series, and the Table 7
//! synchronization primitives.
//!
//! Everything in this crate is *source text* in the `gpumc-litmus`
//! dialects plus metadata — it has no dependency on the verifier, so the
//! corpora can also be dumped to disk and consumed by the CLI.
//!
//! Suite sizes match the paper's test-collection sizes (§7.1): 106 PTX
//! safety tests, 129 PTX proxy tests, 110 Vulkan safety tests, 106
//! Vulkan DRF tests, and 73 forward-progress (liveness) tests.
//!
//! # Example
//!
//! ```
//! let suite = gpumc_catalog::ptx_safety_suite();
//! assert_eq!(suite.len(), 106);
//! assert!(suite.iter().all(|t| t.source.trim_start().starts_with("PTX")));
//! ```

pub mod figures;
mod patterns;
mod primitives;
mod scaling;
mod tiers;

pub use figures::figure_tests;
pub use patterns::{
    liveness_suite, ptx_proxy_suite, ptx_safety_suite, vulkan_drf_suite, vulkan_safety_suite,
};
pub use primitives::{
    primitive_benchmarks, primitive_source, primitive_source_ptx, Grid, Primitive, PrimitiveBench,
    Variant,
};
pub use scaling::{scaling_test, ScalePattern};
pub use tiers::{tier_tests, Tier};

/// Which property a test exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// `exists` / `~exists` / `forall` reachability.
    Safety,
    /// Stuck-spinloop detection (§6.4).
    Liveness,
    /// Data-race freedom via the Vulkan `dr` flag.
    DataRaceFreedom,
}

/// A catalogued litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Test {
    /// Unique name within its suite.
    pub name: String,
    /// Litmus source (PTX or Vulkan dialect).
    pub source: String,
    /// The property the test exercises.
    pub property: Property,
    /// Suggested unrolling bound.
    pub bound: u32,
    /// Expected verdict, when the literature fixes one: for safety, does
    /// the quantified condition have a witness; for liveness/DRF, is the
    /// property violated. `None` when the expectation is only established
    /// by cross-engine agreement.
    pub expected: Option<bool>,
    /// Whether the test uses control flow (and thus exceeds the
    /// Alloy-style baseline, which only supports straight-line code).
    pub uses_control_flow: bool,
    /// Whether the test uses control barriers or the constant proxy
    /// (unsupported by the published Alloy PTX tool, §6.1).
    pub uses_barrier_or_constant_proxy: bool,
}

impl Test {
    pub(crate) fn new(
        name: impl Into<String>,
        source: String,
        property: Property,
        bound: u32,
    ) -> Test {
        let source_ref = &source;
        let uses_control_flow = ["goto", "bne", "beq", "LC"]
            .iter()
            .any(|k| source_ref.contains(k));
        let uses_barrier_or_constant_proxy = ["bar.", "cbar", "constant", "cld", "cst"]
            .iter()
            .any(|k| source_ref.contains(k));
        Test {
            name: name.into(),
            source,
            property,
            bound,
            expected: None,
            uses_control_flow,
            uses_barrier_or_constant_proxy,
        }
    }

    pub(crate) fn expect(mut self, expected: bool) -> Test {
        self.expected = Some(expected);
        self
    }

    /// Whether the Alloy-style baseline supports this test (straight-line
    /// code, no liveness, no control barriers / constant proxy).
    pub fn alloy_supported(&self) -> bool {
        !self.uses_control_flow
            && !self.uses_barrier_or_constant_proxy
            && self.property != Property::Liveness
    }
}
