//! Scale-tiered corpora: `dev` for fast CI feedback, `validation` for
//! the full Table 5 suites, and `scale` — a ≥1000-test stress corpus
//! that cranks the Figure 15 scaling dimensions and adds randomized
//! litmus shapes from a fixed-seed generator, so every run sees the
//! byte-identical corpus.
//!
//! The tiers nest by intent, not by containment: `dev` is a quick
//! cross-section (figures + minimal scaling + a few random shapes),
//! `validation` is the paper's suites verbatim, and `scale` is
//! validation plus the cranked sweep plus the random corpus. Each tier
//! carries a wall-clock budget that the `table6 --tier` bench records
//! (and CI checks on multi-core hosts).

use crate::{
    figure_tests, liveness_suite, ptx_proxy_suite, ptx_safety_suite, scaling_test,
    vulkan_drf_suite, vulkan_safety_suite, Property, ScalePattern, Test,
};

/// A corpus size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Small, seconds-fast cross-section for every-push CI.
    Dev,
    /// The five Table 5 suites (the paper's validation corpus).
    Validation,
    /// Validation plus the cranked scaling sweep plus ≥500 randomized
    /// litmus shapes: ≥1000 tests total.
    Scale,
}

impl Tier {
    /// All tiers, smallest first.
    pub const ALL: [Tier; 3] = [Tier::Dev, Tier::Validation, Tier::Scale];

    /// The tier's CLI / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Dev => "dev",
            Tier::Validation => "validation",
            Tier::Scale => "scale",
        }
    }

    /// Parses a tier name as used by `table6 --tier` and CI.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "dev" => Some(Tier::Dev),
            "validation" => Some(Tier::Validation),
            "scale" => Some(Tier::Scale),
            _ => None,
        }
    }

    /// Wall-clock budget for verifying the whole tier on one core, in
    /// milliseconds. Deliberately loose — the budget catches order-of-
    /// magnitude regressions (a super-linear blowup in some engine), not
    /// jitter. CI checks it on multi-core hosts and only annotates on
    /// 1-core runners.
    pub fn budget_ms(self) -> u64 {
        match self {
            Tier::Dev => 60_000,
            Tier::Validation => 300_000,
            Tier::Scale => 1_800_000,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tests of one tier. Deterministic: repeated calls (and repeated
/// processes) produce the byte-identical corpus.
pub fn tier_tests(tier: Tier) -> Vec<Test> {
    match tier {
        Tier::Dev => {
            let mut tests = figure_tests();
            tests.extend(minimal_scaling());
            tests.extend(random_corpus("dev-rand", 0x5eed_0001, 24));
            tests
        }
        Tier::Validation => validation_suites(),
        Tier::Scale => {
            let mut tests = validation_suites();
            tests.extend(cranked_scaling());
            tests.extend(random_corpus("scale-rand", 0x5eed_c4fe, 520));
            tests
        }
    }
}

fn validation_suites() -> Vec<Test> {
    let mut tests = ptx_safety_suite();
    tests.extend(ptx_proxy_suite());
    tests.extend(vulkan_safety_suite());
    tests.extend(vulkan_drf_suite());
    tests.extend(liveness_suite());
    tests
}

/// One minimal instance of each Figure 15 pattern.
fn minimal_scaling() -> Vec<Test> {
    vec![
        scaling_test(ScalePattern::Mp, 2),
        scaling_test(ScalePattern::Sb, 2),
        scaling_test(ScalePattern::Lb, 2),
        scaling_test(ScalePattern::Iriw, 4),
    ]
}

/// The scaling sweep with the dimensions cranked well past Figure 15.
fn cranked_scaling() -> Vec<Test> {
    let mut tests = Vec::new();
    for n in 2..=16 {
        tests.push(scaling_test(ScalePattern::Mp, n));
    }
    for n in 2..=12 {
        tests.push(scaling_test(ScalePattern::Sb, n));
        tests.push(scaling_test(ScalePattern::Lb, n));
    }
    for n in 4..=14 {
        tests.push(scaling_test(ScalePattern::Iriw, n));
    }
    tests
}

/// xorshift64* — tiny, seedable, and stable across platforms; quality
/// is irrelevant here, determinism is everything.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// Randomized litmus shapes: 2–3 threads, 1–4 instructions each over
/// two locations, mixing weak and scoped-atomic accesses, SC fences,
/// and occasional guarded forward skips (control flow). The `exists`
/// condition constrains up to two loaded registers, so every test is a
/// genuine reachability query, not a vacuous one.
fn random_corpus(prefix: &str, seed: u64, count: usize) -> Vec<Test> {
    (0..count)
        .map(|i| {
            random_test(
                prefix,
                seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                i,
            )
        })
        .collect()
}

fn random_test(prefix: &str, seed: u64, index: usize) -> Test {
    let mut rng = Rng::new(seed);
    let n_threads = 2 + rng.below(2) as usize;
    let locs = ["x", "y"];
    let mut cols: Vec<Vec<String>> = Vec::new();
    // (thread, register) pairs holding loaded values, for the condition.
    let mut loaded: Vec<(usize, u32)> = Vec::new();
    let mut next_label = 0u32;
    for t in 0..n_threads {
        let mut col = Vec::new();
        let mut reg = 0u32;
        let n_instrs = 1 + rng.below(4);
        for _ in 0..n_instrs {
            match rng.below(8) {
                0 | 1 => {
                    let loc = locs[rng.below(2) as usize];
                    let val = 1 + rng.below(2);
                    let op = ["st.weak", "st.relaxed.gpu", "st.release.gpu"][rng.below(3) as usize];
                    col.push(format!("{op} {loc}, {val}"));
                }
                2..=4 => {
                    let loc = locs[rng.below(2) as usize];
                    let op = ["ld.weak", "ld.relaxed.gpu", "ld.acquire.gpu"][rng.below(3) as usize];
                    col.push(format!("{op} r{reg}, {loc}"));
                    loaded.push((t, reg));
                    reg += 1;
                }
                5 => col.push("fence.sc.gpu".into()),
                _ => {
                    // Guarded forward skip over one store — control flow
                    // the straight-line baseline rejects but both DPOR
                    // and SAT must agree on.
                    if reg == 0 || !rng.chance(2) {
                        continue;
                    }
                    let loc = locs[rng.below(2) as usize];
                    col.push(format!("beq r{}, 1, LC{next_label}", reg - 1));
                    col.push(format!("st.relaxed.gpu {loc}, 2"));
                    col.push(format!("LC{next_label}:"));
                    next_label += 1;
                }
            }
        }
        cols.push(col);
    }
    if loaded.is_empty() {
        cols[0].push("ld.weak r0, x".into());
        loaded.push((0, 0));
    }
    let name = format!("{prefix}-{index:04}");
    let header: Vec<String> = (0..n_threads)
        .map(|i| format!("P{i}@cta {i},gpu 0"))
        .collect();
    let rows = cols.iter().map(Vec::len).max().unwrap_or(0);
    let mut src = format!(
        "PTX {name}\n{{ x = 0; y = 0; }}\n{} ;\n",
        header.join(" | ")
    );
    for r in 0..rows {
        let cells: Vec<&str> = cols
            .iter()
            .map(|c| c.get(r).map_or("", String::as_str))
            .collect();
        src.push_str(&format!("{} ;\n", cells.join(" | ")));
    }
    let conds: Vec<String> = loaded
        .iter()
        .take(2)
        .map(|&(t, r)| format!("P{t}:r{r} == {}", rng.below(2)))
        .collect();
    src.push_str(&format!("exists ({})\n", conds.join(" /\\ ")));
    Test::new(name, src, Property::Safety, 1 + rng.below(2) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_deterministic_and_sized() {
        let dev = tier_tests(Tier::Dev);
        assert!(dev.len() < 100, "dev stays CI-fast: {}", dev.len());
        let scale = tier_tests(Tier::Scale);
        assert!(
            scale.len() >= 1000,
            "the scale tier must hold at least 1000 tests, got {}",
            scale.len()
        );
        let scale2 = tier_tests(Tier::Scale);
        assert_eq!(scale, scale2, "fixed seeds: byte-identical corpora");
        let mut names: Vec<&str> = scale.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scale.len(), "test names must be unique");
    }

    #[test]
    fn tier_names_round_trip() {
        for t in Tier::ALL {
            assert_eq!(Tier::parse(t.name()), Some(t));
        }
        assert_eq!(Tier::parse("nope"), None);
    }

    #[test]
    fn random_corpus_parses_as_litmus() {
        // The generator must emit only well-formed dialect text; parsing
        // is checked end-to-end in the bench/CI tier runs, here we check
        // shape invariants cheaply.
        for t in random_corpus("t", 1234, 50) {
            assert!(t.source.starts_with("PTX "), "{}", t.source);
            assert!(t.source.contains("exists ("), "{}", t.source);
            assert!(t.bound >= 1 && t.bound <= 2);
        }
    }
}
