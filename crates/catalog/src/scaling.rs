//! Parametric pattern generators for the Figure 15 scalability study:
//! MP, SB, LB, and IRIW scaled by thread count.

use crate::{Property, Test};

/// The four patterns of Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalePattern {
    /// Message passing: producer/consumer pairs.
    Mp,
    /// Store buffering ring.
    Sb,
    /// Load buffering ring.
    Lb,
    /// Independent reads of independent writes: 2 writers, n-2 readers.
    Iriw,
}

impl std::fmt::Display for ScalePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScalePattern::Mp => "MP",
            ScalePattern::Sb => "SB",
            ScalePattern::Lb => "LB",
            ScalePattern::Iriw => "IRIW",
        })
    }
}

/// Generates a PTX test of the given pattern with `threads` threads.
///
/// # Panics
///
/// Panics if `threads < 2` (or `< 4` for IRIW).
pub fn scaling_test(pattern: ScalePattern, threads: usize) -> Test {
    assert!(threads >= 2, "patterns need at least two threads");
    let src = match pattern {
        ScalePattern::Mp => mp(threads),
        ScalePattern::Sb => sb(threads),
        ScalePattern::Lb => lb(threads),
        ScalePattern::Iriw => {
            assert!(threads >= 4, "IRIW needs at least four threads");
            iriw(threads)
        }
    };
    Test::new(format!("{pattern}-{threads}"), src, Property::Safety, 1)
}

fn header(n: usize) -> String {
    let cells: Vec<String> = (0..n).map(|i| format!("P{i}@cta {i},gpu 0")).collect();
    format!("{} ;", cells.join(" | "))
}

fn rows_to_src(name: &str, prelude: &str, cols: &[Vec<String>], cond: &str) -> String {
    let rows = cols.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = format!("PTX {name}\n{{ {prelude} }}\n{}\n", header(cols.len()));
    for r in 0..rows {
        let cells: Vec<&str> = cols
            .iter()
            .map(|c| c.get(r).map_or("", String::as_str))
            .collect();
        out.push_str(&format!("{} ;\n", cells.join(" | ")));
    }
    out.push_str(cond);
    out.push('\n');
    out
}

/// n/2 producer-consumer pairs over distinct location pairs.
fn mp(n: usize) -> String {
    let pairs = n / 2;
    let mut prelude = String::new();
    let mut cols = Vec::new();
    let mut conds = Vec::new();
    for p in 0..pairs {
        prelude.push_str(&format!("x{p} = 0; f{p} = 0; "));
        cols.push(vec![format!("st.weak x{p}, 1"), format!("st.weak f{p}, 1")]);
        cols.push(vec![
            format!("ld.weak r0, f{p}"),
            format!("ld.weak r1, x{p}"),
        ]);
        conds.push(format!(
            "(P{}:r0 == 1 /\\ P{}:r1 == 0)",
            2 * p + 1,
            2 * p + 1
        ));
    }
    if n % 2 == 1 {
        cols.push(vec!["ld.weak r0, x0".into()]);
    }
    rows_to_src(
        &format!("MP-{n}"),
        &prelude,
        &cols,
        &format!("exists ({})", conds.join(" /\\ ")),
    )
}

/// Store-buffering ring: thread i writes x_i and reads x_{i+1}.
fn sb(n: usize) -> String {
    let mut prelude = String::new();
    let mut cols = Vec::new();
    let mut conds = Vec::new();
    for i in 0..n {
        prelude.push_str(&format!("x{i} = 0; "));
        let next = (i + 1) % n;
        cols.push(vec![
            format!("st.weak x{i}, 1"),
            format!("ld.weak r0, x{next}"),
        ]);
        conds.push(format!("P{i}:r0 == 0"));
    }
    rows_to_src(
        &format!("SB-{n}"),
        &prelude,
        &cols,
        &format!("exists ({})", conds.join(" /\\ ")),
    )
}

/// Load-buffering ring: thread i reads x_i and writes x_{i+1}.
fn lb(n: usize) -> String {
    let mut prelude = String::new();
    let mut cols = Vec::new();
    let mut conds = Vec::new();
    for i in 0..n {
        prelude.push_str(&format!("x{i} = 0; "));
        let next = (i + 1) % n;
        cols.push(vec![
            format!("ld.weak r0, x{i}"),
            format!("st.weak x{next}, 1"),
        ]);
        conds.push(format!("P{i}:r0 == 1"));
    }
    rows_to_src(
        &format!("LB-{n}"),
        &prelude,
        &cols,
        &format!("exists ({})", conds.join(" /\\ ")),
    )
}

/// 2 writers, n-2 readers; adjacent readers must disagree on the order.
fn iriw(n: usize) -> String {
    let mut cols = vec![
        vec!["st.relaxed.gpu x, 1".to_string()],
        vec!["st.relaxed.gpu y, 1".to_string()],
    ];
    let readers = n - 2;
    let mut conds = Vec::new();
    for r in 0..readers {
        let t = 2 + r;
        if r % 2 == 0 {
            cols.push(vec![
                "ld.acquire.gpu r0, x".into(),
                "ld.acquire.gpu r1, y".into(),
            ]);
            conds.push(format!("(P{t}:r0 == 1 /\\ P{t}:r1 == 0)"));
        } else {
            cols.push(vec![
                "ld.acquire.gpu r0, y".into(),
                "ld.acquire.gpu r1, x".into(),
            ]);
            conds.push(format!("(P{t}:r0 == 1 /\\ P{t}:r1 == 0)"));
        }
    }
    rows_to_src(
        &format!("IRIW-{n}"),
        "x = 0; y = 0;",
        &cols,
        &format!("exists ({})", conds.join(" /\\ ")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_scale() {
        for n in [2, 4, 8, 16] {
            let t = scaling_test(ScalePattern::Sb, n);
            assert_eq!(t.source.matches("st.weak").count(), n);
        }
        let t = scaling_test(ScalePattern::Iriw, 10);
        assert_eq!(t.source.matches("ld.acquire").count(), 16);
    }

    #[test]
    #[should_panic(expected = "at least four")]
    fn iriw_minimum() {
        let _ = scaling_test(ScalePattern::Iriw, 3);
    }
}
