//! End-to-end tests of admission control and the degradation ladder
//! (DESIGN.md §18): pinned ladder levels, the deadline admission gate,
//! and the `serve.overload` fault point.

use std::sync::mpsc;

use gpumc_serve::json::Json;
use gpumc_serve::{Client, DegradeLevel, Server, ServerConfig};

/// A spin-heavy three-thread test: expensive enough that its predicted
/// completion dwarfs a 1 ms deadline once the service model is seeded.
const SLOW_SPIN: &str = "PTX SLOWSPIN\n\
{ x = 0; y = 0; f = 0; g = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 | P2@cta 2,gpu 0 ;\n\
st.relaxed.gpu x, 1 | LC00: | LC01: ;\n\
st.release.gpu f, 1 | ld.relaxed.gpu r0, f | ld.relaxed.gpu r0, g ;\n\
st.relaxed.gpu y, 1 | bne r0, 1, LC00 | bne r0, 1, LC01 ;\n\
st.release.gpu g, 1 | ld.acquire.gpu r1, x | ld.acquire.gpu r1, y ;\n\
exists (P1:r1 == 0 /\\ P2:r1 == 0)";

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gpumc-serve-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn status(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).unwrap()
}

fn degraded_level(resp: &Json) -> Option<&str> {
    resp.get("degraded")?.get("level")?.as_str()
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .unwrap()
        .get("counters")
        .unwrap()
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn pinned_shed_refuses_fresh_work_but_serves_cache_hits() {
    let dir = tmpdir("shed");
    let tests = gpumc_catalog::figure_tests();
    let warm = &tests[0];
    // Phase 1: a healthy server warms the persistent cache.
    {
        let (addr, handle) = spawn_server(ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let mut client = Client::connect(&addr).unwrap();
        let resp = client
            .verify(&warm.source, None, Some(warm.bound), None)
            .unwrap();
        assert_eq!(status(&resp), "done", "got: {resp}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
    // Phase 2: the same store behind a server pinned at `shed`.
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(dir.clone()),
        force_degrade: Some(DegradeLevel::Shed),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    // The warm digest still answers — from the cache, flagged degraded.
    let resp = client
        .verify(&warm.source, None, Some(warm.bound), None)
        .unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(degraded_level(&resp), Some("shed"));
    // Anything not in the cache is refused before acceptance.
    let cold = &tests[1];
    let resp = client
        .verify(&cold.source, None, Some(cold.bound), None)
        .unwrap();
    assert_eq!(status(&resp), "shed", "got: {resp}");
    assert_eq!(resp.get("error").and_then(Json::as_str), Some("overloaded"));
    assert_eq!(degraded_level(&resp), Some("shed"));
    let m = client.metrics().unwrap();
    assert_eq!(counter(&m, "jobs_shed_total"), 1);
    assert_eq!(counter(&m, "cache_hits"), 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pinned_sequential_downgrades_portfolio_and_stamps_degraded() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        force_degrade: Some(DegradeLevel::Sequential),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let t = &gpumc_catalog::figure_tests()[0];
    let resp = client
        .request(Json::Obj(vec![
            ("verb".into(), Json::str("verify")),
            ("source".into(), Json::str(&t.source)),
            ("bound".into(), Json::count(u64::from(t.bound))),
            ("portfolio".into(), Json::count(2)),
        ]))
        .unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    assert_eq!(degraded_level(&resp), Some("sequential"));
    // The portfolio the request asked for was downgraded away: the
    // response's portfolio block is null, exactly as if the client had
    // asked for `"portfolio":"off"`.
    assert_eq!(resp.get("portfolio"), Some(&Json::Null));
    let m = client.metrics().unwrap();
    assert_eq!(counter(&m, "portfolio_downgraded_total"), 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn pinned_cache_only_overrides_the_cache_opt_out() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        force_degrade: Some(DegradeLevel::CacheOnly),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let t = &gpumc_catalog::figure_tests()[0];
    // First sight: a miss, verified fresh, stamped degraded.
    let resp = client.verify(&t.source, None, Some(t.bound), None).unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    assert_eq!(degraded_level(&resp), Some("cache-only"));
    assert_eq!(resp.get("cached"), None);
    // A `"cache":false` request would normally force a fresh run; at
    // cache-only the lookup opt-out is overridden and the cache answers.
    let resp = client
        .request(Json::Obj(vec![
            ("verb".into(), Json::str("verify")),
            ("source".into(), Json::str(&t.source)),
            ("bound".into(), Json::count(u64::from(t.bound))),
            ("cache".into(), Json::Bool(false)),
        ]))
        .unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(degraded_level(&resp), Some("cache-only"));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn deadline_gate_sheds_a_predictably_doomed_job() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    // Before the model has seen any work, nothing is shed on a guess:
    // the request runs and times out the cooperative way.
    let t = &gpumc_catalog::figure_tests()[0];
    let resp = client.verify(&t.source, None, Some(t.bound), None).unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    // Now the model is seeded with real service time. A heavy job with
    // a 1 ms deadline is predictably doomed: shed at the door, not
    // accepted-then-timed-out.
    let resp = client
        .verify(SLOW_SPIN, Some("ptx-v6.0"), Some(16), Some(1))
        .unwrap();
    assert_eq!(status(&resp), "shed", "got: {resp}");
    let reason = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(reason.contains("deadline unmeetable"), "reason: {reason}");
    // Shed by the deadline gate at the `full` level: no degraded block.
    assert_eq!(resp.get("degraded"), None);
    let m = client.metrics().unwrap();
    assert_eq!(counter(&m, "jobs_shed_deadline_total"), 1);
    assert_eq!(counter(&m, "jobs_shed_total"), 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn overload_fault_point_sheds_one_request() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        allow_faults: true,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let t = &gpumc_catalog::figure_tests()[0];
    // The armed request is refused as if the shard were flooded...
    let resp = client
        .request(Json::Obj(vec![
            ("verb".into(), Json::str("verify")),
            ("source".into(), Json::str(&t.source)),
            ("bound".into(), Json::count(u64::from(t.bound))),
            (
                "faults".into(),
                Json::str("serve.overload:spurious_unknown"),
            ),
        ]))
        .unwrap();
    assert_eq!(status(&resp), "shed", "got: {resp}");
    assert_eq!(degraded_level(&resp), Some("shed"));
    // ...while the next clean request sails through: the injection was
    // per-request, not server state.
    let resp = client.verify(&t.source, None, Some(t.bound), None).unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    let m = client.metrics().unwrap();
    assert_eq!(counter(&m, "overload_injected_total"), 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn ladder_engages_and_recovers_under_a_real_burst() {
    // A tiny queue under a burst of slow jobs drives pressure across
    // the shed threshold; once the burst drains, a fresh request is
    // admitted again (the ladder recovered on its own).
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 2,
        default_timeout_ms: Some(10_000),
        ..ServerConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    let addr2 = addr.clone();
    let burst = std::thread::spawn(move || {
        let mut statuses = Vec::new();
        let mut clients = Vec::new();
        for _ in 0..6 {
            clients.push(Client::connect(&addr2).unwrap());
        }
        tx.send(()).unwrap();
        // One in-flight request per connection, all racing the queue.
        let handles: Vec<_> = clients
            .into_iter()
            .map(|mut c| {
                std::thread::spawn(move || {
                    let r = c
                        .verify(SLOW_SPIN, Some("ptx-v6.0"), Some(12), None)
                        .unwrap();
                    status(&r).to_string()
                })
            })
            .collect();
        for h in handles {
            statuses.push(h.join().unwrap());
        }
        statuses
    });
    rx.recv().unwrap();
    let statuses = burst.join().unwrap();
    // Every request was answered and classified; none vanished.
    assert_eq!(statuses.len(), 6);
    for s in &statuses {
        assert!(
            ["done", "shed", "rejected", "unknown"].contains(&s.as_str()),
            "unclassified status {s}; all: {statuses:?}"
        );
    }
    // After the burst, the ladder has fallen back and admits new work.
    let mut client = Client::connect(&addr).unwrap();
    let t = &gpumc_catalog::figure_tests()[0];
    let resp = client.verify(&t.source, None, Some(t.bound), None).unwrap();
    assert_eq!(status(&resp), "done", "got: {resp}");
    client.shutdown().unwrap();
    handle.join().unwrap();
}
