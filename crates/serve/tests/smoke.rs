//! End-to-end smoke tests: a real server on an ephemeral port, real
//! TCP clients, catalog litmus tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use gpumc::Verifier;
use gpumc_models::ModelKind;
use gpumc_serve::json::Json;
use gpumc_serve::protocol::verdict_json;
use gpumc_serve::{Client, Server, ServerConfig};

/// A spin-heavy three-thread test that takes long enough at high bounds
/// to keep a worker busy while other requests pile up behind it.
const SLOW_SPIN: &str = "PTX SLOWSPIN\n\
{ x = 0; y = 0; f = 0; g = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 | P2@cta 2,gpu 0 ;\n\
st.relaxed.gpu x, 1 | LC00: | LC01: ;\n\
st.release.gpu f, 1 | ld.relaxed.gpu r0, f | ld.relaxed.gpu r0, g ;\n\
st.relaxed.gpu y, 1 | bne r0, 1, LC00 | bne r0, 1, LC01 ;\n\
st.release.gpu g, 1 | ld.acquire.gpu r1, x | ld.acquire.gpu r1, y ;\n\
exists (P1:r1 == 0 /\\ P2:r1 == 0)";

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The default model the server infers for a dialect, mirrored here so
/// the expected verdict can be computed batch-style.
fn default_kind(program: &gpumc::gpumc_ir::Program) -> ModelKind {
    match program.arch {
        gpumc::gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
        gpumc::gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
    }
}

#[test]
fn concurrent_requests_match_batch_verdicts_and_metrics_add_up() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 4,
        max_queue: 256,
        default_timeout_ms: None,
        metrics_every_secs: None,
        ..ServerConfig::default()
    });

    // The workload: every figure test, cycled up to 50 requests.
    let tests = gpumc_catalog::figure_tests();
    assert!(!tests.is_empty());
    let total = 50usize;
    let workload: Vec<_> = (0..total).map(|i| tests[i % tests.len()].clone()).collect();

    // Batch ground truth, computed through the same public Verifier API
    // the `gpumc verify --all` CLI uses.
    let expected: Vec<String> = workload
        .iter()
        .map(|t| {
            let program = gpumc::parse_litmus(&t.source).unwrap();
            let v = Verifier::new(gpumc_models::load_shared(default_kind(&program)))
                .with_bound(t.bound);
            let o = v.check_all(&program).unwrap();
            verdict_json(&program.name, &o).to_string()
        })
        .collect();

    // 10 client connections, 5 requests each, all in flight together.
    let workload = Arc::new(workload);
    let addr = Arc::new(addr);
    let mut got: Vec<Option<String>> = vec![None; total];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..10)
            .map(|c| {
                let workload = Arc::clone(&workload);
                let addr = Arc::clone(&addr);
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut out = Vec::new();
                    for i in (0..workload.len()).skip(c).step_by(10) {
                        let t = &workload[i];
                        let resp = client
                            .verify(&t.source, None, Some(t.bound), None)
                            .expect("verify request");
                        assert_eq!(
                            resp.get("status").and_then(Json::as_str),
                            Some("done"),
                            "unexpected response: {resp}"
                        );
                        out.push((i, resp.get("verdict").unwrap().to_string()));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, verdict) in h.join().unwrap() {
                got[i] = Some(verdict);
            }
        }
    });
    for (i, verdict) in got.iter().enumerate() {
        assert_eq!(
            verdict.as_deref(),
            Some(expected[i].as_str()),
            "request {i} verdict must be byte-identical to the batch CLI"
        );
    }

    // Metrics must account for exactly this workload.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(
        client.ping().unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );
    let resp = client.metrics().unwrap();
    let m = resp.get("metrics").unwrap();
    let counters = m.get("counters").unwrap();
    let count = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(count("requests_verify"), total as u64);
    assert_eq!(count("verdict_pass") + count("verdict_fail"), total as u64);
    assert_eq!(count("verdict_unknown") + count("verdict_error"), 0);
    assert_eq!(count("queue_rejected_total"), 0);
    let latency = m
        .get("histograms")
        .unwrap()
        .get("verify_latency_us")
        .unwrap();
    assert_eq!(latency.get("count").unwrap().as_u64(), Some(total as u64));

    // Graceful shutdown: ack now, run() returns after the drain.
    assert_eq!(
        client
            .shutdown()
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    handle.join().unwrap();
}

#[test]
fn one_ms_deadline_returns_unknown_and_the_worker_survives() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 16,
        default_timeout_ms: None,
        metrics_every_secs: None,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();

    // A 1 ms deadline on a heavy request: the solver must abandon the
    // search cooperatively and answer `unknown`.
    let resp = client
        .verify(SLOW_SPIN, Some("ptx-v6.0"), Some(16), Some(1))
        .unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("unknown"),
        "got: {resp}"
    );
    let reason = resp.get("reason").and_then(Json::as_str).unwrap();
    assert!(
        reason.contains("deadline") || reason.contains("cancel"),
        "reason: {reason}"
    );

    // Same (sole) worker answers the next request correctly: the
    // timeout neither killed nor poisoned it.
    let tests = gpumc_catalog::figure_tests();
    let t = &tests[0];
    let resp = client.verify(&t.source, None, Some(t.bound), None).unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("done"),
        "got: {resp}"
    );

    let m = client.metrics().unwrap();
    let counters = m.get("metrics").unwrap().get("counters").unwrap();
    assert_eq!(
        counters.get("verdict_unknown").and_then(Json::as_u64),
        Some(1)
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn full_queue_rejects_with_backpressure() {
    // One worker, one queue slot: the third-and-later of a burst of
    // slow requests cannot all be accepted.
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 1,
        default_timeout_ms: Some(10_000),
        metrics_every_secs: None,
        ..ServerConfig::default()
    });

    // Pipeline a burst on a raw socket (the Client type is strictly
    // request/response; rejections arrive out of order).
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let burst = 6usize;
    for id in 0..burst {
        let req = Json::Obj(vec![
            ("id".into(), Json::count(id as u64)),
            ("verb".into(), Json::str("verify")),
            ("source".into(), Json::str(SLOW_SPIN)),
            ("model".into(), Json::str("ptx-v6.0")),
            ("bound".into(), Json::count(14)),
        ]);
        writeln!(writer, "{req}").unwrap();
    }
    writer.flush().unwrap();

    let mut statuses = Vec::new();
    for _ in 0..burst {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim_end()).unwrap();
        statuses.push(
            resp.get("status")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    }
    // Backpressure answers in two classes: `rejected` (the queue itself
    // overflowed) and `shed` (the admission gate refused at the
    // high-water mark before trying the queue). Both mean "never
    // accepted; resubmit later".
    let refused = statuses
        .iter()
        .filter(|s| *s == "rejected" || *s == "shed")
        .count();
    let answered = burst - refused;
    assert!(
        refused >= 1,
        "a burst of {burst} slow jobs into jobs=1/queue=1 must overflow; statuses: {statuses:?}"
    );
    assert_eq!(refused + answered, burst, "every request gets a response");

    let mut client = Client::connect(&addr).unwrap();
    let m = client.metrics().unwrap();
    let counters = m.get("metrics").unwrap().get("counters").unwrap();
    let counted = counters
        .get("queue_rejected_total")
        .and_then(Json::as_u64)
        .unwrap_or(0)
        + counters
            .get("jobs_shed_total")
            .and_then(Json::as_u64)
            .unwrap_or(0);
    assert_eq!(counted, refused as u64);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn bad_requests_get_error_responses_not_disconnects() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 4,
        default_timeout_ms: None,
        metrics_every_secs: None,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for bad in [
        "this is not json",
        r#"{"verb":"frobnicate"}"#,
        r#"{"id":9,"verb":"verify","source":"garbage litmus"}"#,
        r#"{"id":10,"verb":"verify","source":"PTX X\n{ }\nP0@cta 0,gpu 0 ;\nld.weak r0, x ;\nexists (P0:r0 == 0)","model":"no-such-model"}"#,
    ] {
        writeln!(writer, "{bad}").unwrap();
    }
    writer.flush().unwrap();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim_end()).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    }
    // The connection is still healthy afterwards.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(
        client.ping().unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn dpor_parallel_requests_are_counted_in_metrics() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 4,
        default_timeout_ms: None,
        metrics_every_secs: None,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();

    // A DPOR-engine request with a parallel policy must engage the
    // work-stealing driver and agree with the default-engine verdict.
    let tests = gpumc_catalog::figure_tests();
    let t = &tests[0];
    let source = t
        .source
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    let req = Json::parse(&format!(
        r#"{{"id":1,"verb":"verify","source":"{source}","bound":{},"engine":"dpor","portfolio":3}}"#,
        t.bound
    ))
    .unwrap();
    let resp = client.request(req).unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("done"),
        "got: {resp}"
    );
    let expected = {
        let program = gpumc::parse_litmus(&t.source).unwrap();
        let v = Verifier::new(gpumc_models::load(default_kind(&program))).with_bound(t.bound);
        verdict_json(&program.name, &v.check_all(&program).unwrap()).to_string()
    };
    assert_eq!(
        resp.get("verdict").unwrap().to_string(),
        expected,
        "parallel DPOR must agree with the batch SAT verdict"
    );

    let m = client.metrics().unwrap();
    let counters = m.get("metrics").unwrap().get("counters").unwrap();
    let count = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(count("dpor_parallel_requests_total"), 1);
    assert!(count("dpor_parallel_tasks_total") >= 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}
