//! The content-addressed result cache, observed end-to-end through the
//! wire protocol: duplicate requests must be answered without invoking
//! the encoder or solver, the persistent store must survive a restart,
//! a stale verifier fingerprint must invalidate it, and `cache:false`,
//! fault-armed, and non-definitive answers must all bypass it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gpumc_serve::json::Json;
use gpumc_serve::{Server, ServerConfig};

const MP: &str = "PTX MP\n{ x = 0; flag = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | ld.weak r0, flag ;\n\
st.weak flag, 1 | ld.weak r1, x ;\n\
exists (P1:r0 == 1 /\\ P1:r1 == 0)";

const SB: &str = "PTX SB\n{ x = 0; y = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 ;\n\
st.weak x, 1 | st.weak y, 1 ;\n\
ld.weak r0, y | ld.weak r1, x ;\n\
exists (P0:r0 == 0 /\\ P1:r1 == 0)";

fn spawn(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("recv");
        Json::parse(response.trim_end()).expect("response parses")
    }

    fn verify(&mut self, id: u64, source: &str, extra: &str) -> Json {
        let source = Json::str(source);
        self.roundtrip(&format!(
            r#"{{"id":{id},"verb":"verify","source":{source},"bound":1{extra}}}"#
        ))
    }

    fn metrics(&mut self) -> Json {
        let v = self.roundtrip(r#"{"verb":"metrics"}"#);
        v.get("metrics").expect("metrics payload").clone()
    }

    fn shutdown(&mut self) {
        let v = self.roundtrip(r#"{"verb":"shutdown"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    }
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn hist_count(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        metrics_every_secs: None,
        ..ServerConfig::default()
    }
}

/// The headline acceptance test: a duplicate request is served from the
/// cache without the encoder or solver running again — the `encode_us`
/// and `solve_us` histograms and the solver work counters stay flat
/// between the first and second answer.
#[test]
fn duplicate_request_never_reaches_the_encoder_or_solver() {
    let (addr, handle) = spawn(quiet_config());
    let mut conn = Conn::connect(&addr);

    let fresh = conn.verify(1, MP, "");
    assert_eq!(fresh.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(fresh.get("cached"), None);
    let before = conn.metrics();
    assert_eq!(hist_count(&before, "encode_us"), 1);
    assert_eq!(hist_count(&before, "solve_us"), 1);
    assert_eq!(counter(&before, "cache_misses"), 1);
    assert_eq!(counter(&before, "cache_inserts"), 1);

    let hit = conn.verify(2, MP, "");
    assert_eq!(hit.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(hit.get("verdict"), fresh.get("verdict"));
    let after = conn.metrics();
    // Flat: no second encode, no second solve, no new solver work.
    assert_eq!(hist_count(&after, "encode_us"), 1);
    assert_eq!(hist_count(&after, "solve_us"), 1);
    assert_eq!(
        counter(&after, "solver_conflicts_total"),
        counter(&before, "solver_conflicts_total")
    );
    assert_eq!(
        counter(&after, "solver_propagations_total"),
        counter(&before, "solver_propagations_total")
    );
    assert_eq!(counter(&after, "cache_hits"), 1);
    // A cache hit is still a served verdict: pass/fail counters and the
    // latency histogram keep adding up.
    assert_eq!(
        counter(&after, "verdict_pass") + counter(&after, "verdict_fail"),
        2
    );
    assert_eq!(hist_count(&after, "verify_latency_us"), 2);

    conn.shutdown();
    handle.join().unwrap();
}

/// Equivalent requests with different wire spellings (shuffled keys,
/// elided defaults) hit the same cache entry.
#[test]
fn wire_spelling_does_not_fragment_the_cache() {
    let (addr, handle) = spawn(quiet_config());
    let mut conn = Conn::connect(&addr);
    let source = Json::str(MP);

    let fresh = conn.roundtrip(&format!(
        r#"{{"id":1,"verb":"verify","source":{source},"bound":1,"engine":"sat","cache":true}}"#
    ));
    assert_eq!(fresh.get("status").and_then(Json::as_str), Some("done"));
    let hit = conn.roundtrip(&format!(
        r#"{{"bound":1,"source":{source},"verb":"verify","id":2,"proto":1}}"#
    ));
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(hit.get("verdict"), fresh.get("verdict"));

    conn.shutdown();
    handle.join().unwrap();
}

/// `cache:false` bypasses the cache in both directions: the request is
/// neither answered from it nor recorded into it.
#[test]
fn cache_false_bypasses_lookup_and_insert() {
    let (addr, handle) = spawn(quiet_config());
    let mut conn = Conn::connect(&addr);

    let first = conn.verify(1, SB, r#","cache":false"#);
    assert_eq!(first.get("status").and_then(Json::as_str), Some("done"));
    let second = conn.verify(2, SB, r#","cache":false"#);
    assert_eq!(second.get("cached"), None);
    let m = conn.metrics();
    assert_eq!(counter(&m, "cache_hits"), 0);
    assert_eq!(counter(&m, "cache_misses"), 0);
    assert_eq!(counter(&m, "cache_inserts"), 0);
    assert_eq!(hist_count(&m, "encode_us"), 2);

    // The bypassed runs also never populated the cache: a cacheable
    // request still encodes fresh, then the next one hits.
    let third = conn.verify(3, SB, "");
    assert_eq!(third.get("cached"), None);
    let fourth = conn.verify(4, SB, "");
    assert_eq!(fourth.get("cached").and_then(Json::as_bool), Some(true));

    conn.shutdown();
    handle.join().unwrap();
}

/// `status:"unknown"` answers (deadline expiry here) are never cached:
/// the same request asked again with a sane deadline gets a real,
/// freshly computed verdict.
#[test]
fn unknown_answers_are_not_cached() {
    let (addr, handle) = spawn(quiet_config());
    let mut conn = Conn::connect(&addr);

    // A zero deadline expires before the solver starts.
    let unknown = conn.verify(1, MP, r#","timeout_ms":0"#);
    assert_eq!(
        unknown.get("status").and_then(Json::as_str),
        Some("unknown")
    );
    let m = conn.metrics();
    assert_eq!(counter(&m, "cache_inserts"), 0);

    // Same digest (the deadline is not part of request identity), but
    // the unknown above must not satisfy it.
    let fresh = conn.verify(2, MP, "");
    assert_eq!(fresh.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(fresh.get("cached"), None);

    conn.shutdown();
    handle.join().unwrap();
}

/// The persistent store answers across a server restart: a second
/// server process pointed at the same directory serves the first
/// process's verdict as a cache hit without re-verifying.
#[test]
fn persistent_cache_survives_a_restart() {
    let dir = std::env::temp_dir().join(format!("gpumc-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir cache dir");

    let config = || ServerConfig {
        cache_dir: Some(dir.clone()),
        ..quiet_config()
    };

    let (addr, handle) = spawn(config());
    let mut conn = Conn::connect(&addr);
    let fresh = conn.verify(1, MP, "");
    assert_eq!(fresh.get("status").and_then(Json::as_str), Some("done"));
    let verdict = fresh.get("verdict").cloned();
    conn.shutdown();
    handle.join().unwrap();

    let (addr, handle) = spawn(config());
    let mut conn = Conn::connect(&addr);
    let hit = conn.verify(2, MP, "");
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(hit.get("verdict").cloned(), verdict);
    let m = conn.metrics();
    assert_eq!(hist_count(&m, "encode_us"), 0, "warm restart re-encoded");
    assert!(
        m.get("gauges")
            .and_then(|g| g.get("result_cache_loaded"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );
    conn.shutdown();
    handle.join().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

/// A store written by a different verifier fingerprint is invalidated
/// wholesale on open — stale verdicts are truncated, not served.
#[test]
fn stale_fingerprint_invalidates_the_persistent_store() {
    let dir = std::env::temp_dir().join(format!("gpumc-serve-cache-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir cache dir");

    // Populate the directory as an older verifier build would have.
    {
        let stale =
            gpumc_fleet::cache::ResultCache::persistent(64, &dir, "gpumc=0.0.0;rev=0;scheme=0")
                .expect("open stale store");
        let d = gpumc_fleet::digest::source_digest(MP, None, 1, "all", "sat", 1).unwrap();
        stale.insert(
            d,
            gpumc_fleet::cache::CachedVerdict {
                test: "MP".into(),
                reachable: false,
                expectation: "poisoned".into(),
                liveness: "poisoned".into(),
                datarace: "poisoned".into(),
            },
        );
    }

    let (addr, handle) = spawn(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..quiet_config()
    });
    let mut conn = Conn::connect(&addr);
    let fresh = conn.verify(1, MP, "");
    // Fresh verdict, not the poisoned stale entry.
    assert_eq!(fresh.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(fresh.get("cached"), None);
    assert_ne!(
        fresh
            .get("verdict")
            .and_then(|v| v.get("expectation"))
            .and_then(Json::as_str),
        Some("poisoned")
    );
    let m = conn.metrics();
    assert_eq!(
        m.get("gauges")
            .and_then(|g| g.get("result_cache_invalidated"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    conn.shutdown();
    handle.join().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}
