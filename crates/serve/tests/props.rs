//! Robustness properties for the request edge: byte-mangled protocol
//! lines must never panic the JSON parser or the request decoder. A
//! panic here would kill a connection thread on attacker-controlled
//! input; the contract is `Ok(envelope)` or `Err(message)`, nothing
//! else.

use gpumc_serve::json::Json;
use gpumc_serve::parse_request;
use proptest::prelude::*;

/// Near-valid request lines to mutate: these reach much deeper decoder
/// states (escape handling, nested objects, field typing) than noise.
const SEEDS: &[&str] = &[
    r#"{"id":1,"verb":"ping"}"#,
    r#"{"id":2,"verb":"verify","source":"PTX T\n{ x = 0; }\nP0@cta 0,gpu 0 ;\nld.relaxed.gpu r0, x ;\nexists (P0:r0 == 0)","bound":2}"#,
    r#"{"id":3,"verb":"verify","source":"PTX \"q\" \\ \t","model":"ptx-v7.5","timeout_ms":100,"budget":50,"mem_budget_mb":64,"faults":"serve.worker:panic:p=0.5:seed=1","simplify":false}"#,
    r#"{"verb":"metrics"}"#,
];

fn mangle(seed: &str, edits: &[(usize, u8)]) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for &(pos, byte) in edits {
        if bytes.is_empty() {
            bytes.push(byte);
            continue;
        }
        let pos = pos % (bytes.len() + 1);
        match byte % 3 {
            0 if pos < bytes.len() => bytes[pos] ^= byte,
            1 => bytes.insert(pos, byte),
            _ if pos < bytes.len() => {
                bytes.remove(pos);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Mangled near-valid request lines never panic the decoder.
    #[test]
    fn mangled_requests_never_panic(
        seed in 0usize..4,
        edits in proptest::collection::vec((0usize..512, any::<u8>()), 1..10),
    ) {
        let line = mangle(SEEDS[seed], &edits);
        let _ = parse_request(&line);
        let _ = Json::parse(&line);
    }

    /// Pure noise never panics the JSON layer.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Json::parse(&line);
        let _ = parse_request(&line);
    }
}
