//! Crash-recovery and fault-injection tests for the daemon: injected
//! worker panics (soft, inside the per-job catch, and hard, killing the
//! worker thread) must never lose a request or change a verdict — every
//! job is answered, retried jobs answer byte-identically to a no-fault
//! run, and exhausted retries answer a classified `status:"failed"`.
//!
//! Servers here run with `allow_faults: true` (the `--enable-faults`
//! flag); the plans arrive per-request through the `faults` field, so
//! nothing in these tests leaks process-global state into the other
//! test binaries.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gpumc_serve::json::Json;
use gpumc_serve::{Client, Server, ServerConfig, WORKER_HARD_KILL_POINT};

fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// Pipelines `requests` on one socket and returns the responses keyed
/// by id. Every request must carry a distinct numeric id.
fn roundtrip(addr: &str, requests: &[Json]) -> HashMap<u64, Json> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for req in requests {
        writeln!(writer, "{req}").unwrap();
    }
    writer.flush().unwrap();
    let mut responses = HashMap::new();
    for _ in 0..requests.len() {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed with responses outstanding"
        );
        let resp = Json::parse(line.trim_end()).unwrap();
        let id = resp.get("id").and_then(Json::as_u64).expect("response id");
        assert!(
            responses.insert(id, resp).is_none(),
            "duplicate response for id {id}"
        );
    }
    responses
}

fn verify_request(id: u64, source: &str, bound: u32, faults: Option<&str>) -> Json {
    let mut fields = vec![
        ("id".into(), Json::count(id)),
        ("verb".into(), Json::str("verify")),
        ("source".into(), Json::str(source)),
        ("bound".into(), Json::count(u64::from(bound))),
    ];
    if let Some(spec) = faults {
        fields.push(("faults".into(), Json::str(spec)));
    }
    Json::Obj(fields)
}

fn counters(addr: &str) -> Json {
    let mut client = Client::connect(addr).unwrap();
    let m = client.metrics().unwrap();
    m.get("metrics").unwrap().get("counters").unwrap().clone()
}

fn count(counters: &Json, name: &str) -> u64 {
    counters.get(name).and_then(Json::as_u64).unwrap_or(0)
}

#[test]
fn fifty_concurrent_with_ten_percent_panics_all_answered_identically() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 4,
        max_queue: 256,
        allow_faults: true,
        ..ServerConfig::default()
    });
    let tests = gpumc_catalog::figure_tests();
    let total = 50u64;
    let workload: Vec<_> = (0..total)
        .map(|i| tests[i as usize % tests.len()].clone())
        .collect();

    // Pass 1: no faults — the ground truth.
    let baseline_reqs: Vec<Json> = workload
        .iter()
        .enumerate()
        .map(|(i, t)| verify_request(i as u64, &t.source, t.bound, None))
        .collect();
    let baseline = roundtrip(&addr, &baseline_reqs);
    for (id, resp) in &baseline {
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("done"),
            "baseline request {id}: {resp}"
        );
    }

    // Pass 2: every job carries a 10% per-hit panic plan with its own
    // seed. The plan rides retries, so most panicked jobs succeed on a
    // later attempt; a job unlucky on all attempts answers `failed`.
    let fault_reqs: Vec<Json> = workload
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let spec = format!("serve.worker:panic:p=0.1:seed={i}");
            verify_request(1000 + i as u64, &t.source, t.bound, Some(&spec))
        })
        .collect();
    let faulted = roundtrip(&addr, &fault_reqs);
    assert_eq!(faulted.len(), total as usize, "every job is answered");

    let mut failed = 0u64;
    for i in 0..total {
        let resp = &faulted[&(1000 + i)];
        match resp.get("status").and_then(Json::as_str) {
            Some("done") => assert_eq!(
                resp.get("verdict").unwrap().to_string(),
                baseline[&i].get("verdict").unwrap().to_string(),
                "request {i}: fault-run verdict differs from the no-fault run"
            ),
            Some("failed") => {
                assert_eq!(resp.get("class").and_then(Json::as_str), Some("panic"));
                assert_eq!(resp.get("attempts").and_then(Json::as_u64), Some(3));
                failed += 1;
            }
            other => panic!("request {i}: unexpected status {other:?}: {resp}"),
        }
    }

    let c = counters(&addr);
    assert!(
        count(&c, "worker_panics") >= 1,
        "deterministic seeds 0..50 at p=0.1 must fire at least once: {c}"
    );
    assert_eq!(
        count(&c, "jobs_failed"),
        failed,
        "failed responses and the jobs_failed counter must agree"
    );
    assert!(
        count(&c, "jobs_retried") >= count(&c, "worker_panics") - failed * 3,
        "panics not ending in failure must have been retried: {c}"
    );

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn hard_killed_worker_is_respawned_and_the_job_retried() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 16,
        allow_faults: true,
        ..ServerConfig::default()
    });
    let t = &gpumc_catalog::figure_tests()[0];

    // `serve.worker.hard` fires outside the per-job catch: the sole
    // worker thread dies mid-job. The supervisor must recover the
    // parked job, respawn the worker, and the retry (same plan, `once`
    // already spent) must answer normally.
    let spec = format!("{WORKER_HARD_KILL_POINT}:panic:once");
    let resps = roundtrip(&addr, &[verify_request(1, &t.source, t.bound, Some(&spec))]);
    let resp = &resps[&1];
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("done"),
        "recovered job must answer its verdict: {resp}"
    );

    // The daemon survived: the (respawned) worker answers new requests.
    let resps = roundtrip(&addr, &[verify_request(2, &t.source, t.bound, None)]);
    assert_eq!(resps[&2].get("status").and_then(Json::as_str), Some("done"));

    let c = counters(&addr);
    assert!(count(&c, "worker_panics") >= 1, "counters: {c}");
    assert!(count(&c, "jobs_retried") >= 1, "counters: {c}");
    assert!(count(&c, "workers_respawned") >= 1, "counters: {c}");

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn exhausted_retries_answer_a_classified_failure() {
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 2,
        max_queue: 16,
        allow_faults: true,
        ..ServerConfig::default()
    });
    let t = &gpumc_catalog::figure_tests()[0];

    // Probability 1, not once: every attempt panics, so the default
    // three attempts exhaust and the client gets `failed`/`panic`.
    let resps = roundtrip(
        &addr,
        &[verify_request(
            7,
            &t.source,
            t.bound,
            Some("serve.worker:panic"),
        )],
    );
    let resp = &resps[&7];
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("failed"));
    assert_eq!(resp.get("class").and_then(Json::as_str), Some("panic"));
    assert_eq!(resp.get("attempts").and_then(Json::as_u64), Some(3));
    let error = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("injected fault"), "error: {error}");

    let c = counters(&addr);
    assert_eq!(count(&c, "worker_panics"), 3);
    assert_eq!(count(&c, "jobs_retried"), 2);
    assert_eq!(count(&c, "jobs_failed"), 1);

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn fault_field_is_refused_unless_enabled() {
    // Default config: allow_faults is off, as in production.
    let (addr, handle) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 4,
        ..ServerConfig::default()
    });
    let t = &gpumc_catalog::figure_tests()[0];
    let resps = roundtrip(
        &addr,
        &[verify_request(
            3,
            &t.source,
            t.bound,
            Some("serve.worker:panic"),
        )],
    );
    let resp = &resps[&3];
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    let error = resp.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("disabled"), "error: {error}");

    // A malformed spec on a fault-enabled server is an error too.
    let (addr2, handle2) = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 1,
        max_queue: 4,
        allow_faults: true,
        ..ServerConfig::default()
    });
    let resps = roundtrip(
        &addr2,
        &[verify_request(
            4,
            &t.source,
            t.bound,
            Some("serve.worker:frobnicate"),
        )],
    );
    let resp = &resps[&4];
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("bad fault spec"));

    for (addr, handle) in [(addr, handle), (addr2, handle2)] {
        let mut client = Client::connect(&addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}
