//! A lightweight in-process metrics registry.
//!
//! The service records three shapes of measurement, all named by plain
//! strings so call sites stay declarative:
//!
//! * **counters** — monotone totals (`requests_verify`, `verdict_pass`);
//! * **gauges** — instantaneous levels (`queue_depth`, `in_flight`);
//! * **histograms** — latency distributions in microseconds, as
//!   power-of-two buckets with count/sum/max, cheap enough to record on
//!   every request.
//!
//! One [`Metrics`] instance is shared across all workers and connection
//! threads behind `Arc`; the maps are `Mutex`-guarded `BTreeMap`s, so a
//! [`Metrics::snapshot`] is deterministic in key order. Contention is
//! negligible next to a SAT solve.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::Json;

/// Power-of-two latency buckets: bucket `i` counts observations with
/// `us < 2^i`, the last bucket is unbounded.
const BUCKETS: usize = 32;

#[derive(Debug, Clone)]
struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn observe(&mut self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    fn to_json(&self) -> Json {
        // Only emit the populated prefix of the bucket array.
        let top = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        Json::Obj(vec![
            ("count".into(), Json::count(self.count)),
            ("sum_us".into(), Json::count(self.sum_us)),
            ("max_us".into(), Json::count(self.max_us)),
            (
                "mean_us".into(),
                Json::count(self.sum_us.checked_div(self.count).unwrap_or(0)),
            ),
            (
                "buckets_pow2".into(),
                Json::Arr(
                    self.buckets[..top]
                        .iter()
                        .map(|&c| Json::count(c))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The shared registry. See the module docs.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds one to a counter, creating it at zero first if needed.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, name: &str, n: u64) {
        let mut c = self.counters.lock().unwrap();
        *c.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter (zero when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge to an absolute level.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.gauges.lock().unwrap().insert(name.to_string(), value);
    }

    /// Moves a gauge by a (possibly negative) delta.
    pub fn move_gauge(&self, name: &str, delta: i64) {
        let mut g = self.gauges.lock().unwrap();
        *g.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a gauge (zero when never written).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// Records one latency observation, in microseconds.
    pub fn observe_us(&self, name: &str, us: u64) {
        let mut h = self.histograms.lock().unwrap();
        h.entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(us);
    }

    /// A deterministic (sorted-key) JSON snapshot of every metric, the
    /// payload of the `metrics` protocol verb.
    pub fn snapshot(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, &v)| (k.clone(), Json::count(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, &v)| (k.clone(), Json::num(v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }

    /// One-line human rendering for the `--metrics-every` stderr dump.
    pub fn render_line(&self) -> String {
        let c = self.counters.lock().unwrap();
        let g = self.gauges.lock().unwrap();
        let mut parts: Vec<String> = c.iter().map(|(k, v)| format!("{k}={v}")).collect();
        parts.extend(g.iter().map(|(k, v)| format!("{k}={v}")));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::new();
        m.inc("requests_verify");
        m.inc("requests_verify");
        m.add("solver_conflicts_total", 41);
        assert_eq!(m.counter("requests_verify"), 2);
        assert_eq!(m.counter("solver_conflicts_total"), 41);
        assert_eq!(m.counter("never_touched"), 0);
        m.set_gauge("queue_depth", 3);
        m.move_gauge("queue_depth", -1);
        assert_eq!(m.gauge("queue_depth"), 2);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let m = Metrics::new();
        for us in [1u64, 100, 10_000, 10_000] {
            m.observe_us("verify_latency_us", us);
        }
        let snap = m.snapshot();
        let h = snap
            .get("histograms")
            .unwrap()
            .get("verify_latency_us")
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(h.get("sum_us").unwrap().as_u64(), Some(20_101));
        assert_eq!(h.get("max_us").unwrap().as_u64(), Some(10_000));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let m = Metrics::new();
        m.inc("b");
        m.inc("a");
        m.set_gauge("z", 1);
        assert_eq!(m.snapshot().to_string(), m.snapshot().to_string());
        // BTreeMap ordering: "a" serializes before "b".
        let text = m.snapshot().to_string();
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        m.inc("hits");
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 800);
    }
}
