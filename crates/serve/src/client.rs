//! A minimal blocking client for the JSON-lines protocol.
//!
//! One request in flight per connection: [`Client::request`] writes a
//! line and blocks for the next response line. Pipelining is a protocol
//! feature (ids correlate out-of-order answers), but the scripted
//! smoke-test use cases this client serves — `gpumc client`, the e2e
//! tests — get their concurrency from many connections instead, which
//! also exercises the server's accept path harder.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::json::Json;

/// A connected client. See the module docs.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Connection I/O errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends one request object (an `id` is added if absent) and blocks
    /// for the matching response.
    ///
    /// # Errors
    ///
    /// I/O errors, a closed connection, or an unparsable response.
    pub fn request(&mut self, mut request: Json) -> std::io::Result<Json> {
        if let Json::Obj(pairs) = &mut request {
            if !pairs.iter().any(|(k, _)| k == "id") {
                pairs.insert(0, ("id".to_string(), Json::count(self.next_id)));
                self.next_id += 1;
            }
        }
        writeln!(self.writer, "{request}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response: {e}"),
            )
        })
    }

    /// Builds and sends a `verify` request for a litmus source.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn verify(
        &mut self,
        source: &str,
        model: Option<&str>,
        bound: Option<u32>,
        timeout_ms: Option<u64>,
    ) -> std::io::Result<Json> {
        let mut pairs = vec![
            ("verb".to_string(), Json::str("verify")),
            ("source".to_string(), Json::str(source)),
        ];
        if let Some(m) = model {
            pairs.push(("model".into(), Json::str(m)));
        }
        if let Some(b) = bound {
            pairs.push(("bound".into(), Json::count(u64::from(b))));
        }
        if let Some(t) = timeout_ms {
            pairs.push(("timeout_ms".into(), Json::count(t)));
        }
        self.request(Json::Obj(pairs))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> std::io::Result<Json> {
        self.request(Json::Obj(vec![("verb".into(), Json::str("ping"))]))
    }

    /// Fetches the metrics snapshot.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> std::io::Result<Json> {
        self.request(Json::Obj(vec![("verb".into(), Json::str("metrics"))]))
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(Json::Obj(vec![("verb".into(), Json::str("shutdown"))]))
    }
}
