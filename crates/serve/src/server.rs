//! The verification daemon: accept loop, worker pool, graceful drain.
//!
//! Architecture (all std, one thread per blocking concern):
//!
//! ```text
//!  TCP accept loop ──► per-connection reader threads
//!                         │  ping/metrics/shutdown answered inline
//!                         ▼  verify → CancelToken(deadline) + job
//!                  bounded JobQueue (try_push; full ⇒ `rejected`)
//!                         │
//!                  worker pool (effective_jobs), shared warm state:
//!                    · gpumc_models::load_shared (one parse per model)
//!                    · Arc<BoundsMemo> (relation bounds across requests)
//!                         │
//!                  responses written through the connection's shared
//!                  writer (one line per response, ids match requests)
//! ```
//!
//! The deadline clock starts when the request is *accepted*, so time
//! spent queued counts against it; an expired job fails fast inside
//! `Verifier::check_all` before paying for compilation. Workers never
//! die from a timeout: interruption surfaces as `VerifyError::Unknown`
//! (see the cancellation layer in `gpumc-sat`), the worker answers
//! `status: unknown` and takes the next job.
//!
//! ## Panic isolation and supervision
//!
//! Each job runs under `catch_unwind`: a panic anywhere in the
//! verification stack is logged, counted (`worker_panics`), and turned
//! into a retry (`jobs_retried`, exponential backoff with deterministic
//! jitter per [`RetryPolicy`]) or, once attempts are exhausted, a
//! `status:"failed"` response (`jobs_failed`) with an error class —
//! the connection never just goes silent. As defense in depth a
//! supervisor thread owns the worker pool: each worker parks a copy of
//! its in-flight job in a shared slot, so if a worker thread dies
//! *outside* the catch (however unlikely), the supervisor recovers the
//! parked job — retrying or failing it like any other panic — and
//! respawns the worker (`workers_respawned`). The daemon survives; only
//! the job's attempt is lost.
//!
//! Shutdown (`shutdown` verb or [`Server::shutdown_handle`]) stops the
//! accept loop, closes the queue, and drains: every accepted job still
//! gets its response before [`Server::run`] returns. If the entire pool
//! died at shutdown, leftover jobs are answered `rejected` rather than
//! dropped.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpumc::fault::FaultPlan;
use gpumc::{effective_jobs, Verifier, VerifyError};
use gpumc_encode::BoundsMemo;
use gpumc_fleet::cache::ResultCache;
use gpumc_fleet::digest::{request_digest, resolve_model, RequestKey};
use gpumc_fleet::sched::{CostScheduler, PushError};
use gpumc_models::ModelKind;
use gpumc_sat::CancelToken;

use crate::json::Json;
use crate::metrics::Metrics;
use crate::overload::{DegradeLevel, Overload, OverloadPolicy};
use crate::protocol::{
    cached_response, cached_verdict, engine_name, error_response, failed_response, parse_request,
    rejected_response, shed_response, unknown_response, verify_response, Envelope, Request,
    VerifyRequest, PROTOCOL_VERSION,
};

/// The injection point a worker probes when it picks up a job but
/// before the `catch_unwind` guard is in place — arming `panic` here
/// kills the worker *thread* itself, exercising supervisor recovery
/// (respawn + parked-job handover) rather than in-place retry.
pub const WORKER_HARD_KILL_POINT: &str = "serve.worker.hard";

/// Server configuration; see `gpumc serve --help` for the CLI mapping.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`; port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means all available cores.
    pub jobs: usize,
    /// Maximum queued (accepted, unstarted) verify jobs.
    pub max_queue: usize,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Dump a one-line metrics summary to stderr every this many
    /// seconds.
    pub metrics_every_secs: Option<u64>,
    /// How crashed jobs are retried before a `status:"failed"` answer.
    pub retry: RetryPolicy,
    /// Honor the per-request `"faults"` field (`--enable-faults`). Off
    /// by default: production servers must not let clients arm faults.
    pub allow_faults: bool,
    /// Content-addressed result cache (`--no-cache` clears this). When
    /// on, a duplicate definitive request is answered without invoking
    /// the encoder or a solver.
    pub cache_enabled: bool,
    /// Resident verdicts in the result cache's LRU (`--cache-cap`).
    pub cache_capacity: usize,
    /// Directory for the persistent result store (`--cache-dir`); in
    /// memory only when `None`. Invalidated when the verifier
    /// fingerprint changes.
    pub cache_dir: Option<PathBuf>,
    /// Predicted-cost threshold at or below which a job takes the
    /// scheduler's shared fast lane (`--fast-lane-cost`); costlier jobs
    /// go to per-worker heavy lanes with work stealing.
    pub fast_lane_max_cost: u64,
    /// Queue-pressure thresholds driving the degradation ladder
    /// (DESIGN.md §18).
    pub overload: OverloadPolicy,
    /// Pin the ladder at a fixed level (`--degrade-level`); `None`
    /// tracks queue pressure. Pinning exists for operators staging a
    /// brownout drill and for deterministic tests.
    pub force_degrade: Option<DegradeLevel>,
}

/// Default [`ServerConfig::fast_lane_max_cost`]: comfortably above any
/// bound-2 litmus test (≈20 events² × 2 × sat weight) and far below an
/// unrolled kernel's cost.
pub const DEFAULT_FAST_LANE_MAX_COST: u64 = 8192;

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 0,
            max_queue: 64,
            default_timeout_ms: None,
            metrics_every_secs: None,
            retry: RetryPolicy::default(),
            allow_faults: false,
            cache_enabled: true,
            cache_capacity: 4096,
            cache_dir: None,
            fast_lane_max_cost: DEFAULT_FAST_LANE_MAX_COST,
            overload: OverloadPolicy::default(),
            force_degrade: None,
        }
    }
}

/// Retry schedule for jobs whose attempt panicked.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts a job may consume, the first included. `1`
    /// disables retries.
    pub max_attempts: u32,
    /// Base backoff; attempt `n`'s retry waits `base * 2^(n-2)` plus a
    /// deterministic jitter in `[0, base)` derived from the job.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
        }
    }
}

impl RetryPolicy {
    /// Backoff before re-queuing attempt `attempt` (2-based: the first
    /// retry is attempt 2). Deterministic in `(seq, attempt)`, so a
    /// replayed workload schedules identically.
    fn backoff(&self, seq: u64, attempt: u32) -> Duration {
        let exp = self.base_backoff_ms << attempt.saturating_sub(2).min(10);
        let jitter = if self.base_backoff_ms == 0 {
            0
        } else {
            splitmix64(seq ^ u64::from(attempt)) % self.base_backoff_ms
        };
        Duration::from_millis(exp + jitter)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A write end shared between the connection reader and the workers
/// answering its jobs; each response line is written under the lock.
type Out = Arc<Mutex<Box<dyn Write + Send>>>;

#[derive(Clone)]
struct Job {
    id: Option<u64>,
    req: VerifyRequest,
    token: CancelToken,
    out: Out,
    accepted: Instant,
    /// 1-based attempt counter; bumped on each panic-triggered retry.
    attempt: u32,
    /// Server-assigned sequence number — the deterministic jitter seed.
    seq: u64,
    /// Per-job fault plan (`--enable-faults` only). The *same* plan
    /// object rides through retries, so its hit counters persist and a
    /// `panic:once` rule panics attempt 1 and lets the retry through.
    faults: Option<Arc<FaultPlan>>,
    /// Content digest of the request, when it is cacheable: parsable,
    /// cache not opted out, and *no fault plan armed* — a verdict
    /// computed under injected faults must never leak into steady
    /// state. `None` disables both lookup (already missed at dispatch)
    /// and insert.
    digest: Option<u128>,
    /// Predicted relative cost ([`gpumc_encode::estimate_cost`]); the
    /// scheduler's lane key. Re-pushes after a panic reuse it.
    cost: u64,
    /// The ladder level active when the job was admitted; stamped into
    /// the response's `degraded` block (omitted at `Full`).
    degraded: DegradeLevel,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    metrics: Metrics,
    memo: Arc<BoundsMemo>,
    queue: CostScheduler<Job>,
    /// The content-addressed result cache; `None` with `--no-cache`.
    cache: Option<ResultCache>,
    shutdown: AtomicBool,
    default_timeout_ms: Option<u64>,
    retry: RetryPolicy,
    allow_faults: bool,
    /// Monotone job sequence for retry jitter.
    seq: AtomicU64,
    /// Degradation ladder + deadline-admission service model.
    overload: Overload,
    /// Effective worker count, for spreading predicted queue cost.
    workers: usize,
}

impl Shared {
    /// `jobs` is the *effective* worker count — the scheduler sizes its
    /// heavy lanes to it.
    ///
    /// # Errors
    ///
    /// Filesystem errors opening the persistent cache store.
    fn new(config: &ServerConfig, jobs: usize) -> std::io::Result<Arc<Shared>> {
        let cache = if config.cache_enabled {
            Some(match &config.cache_dir {
                None => ResultCache::in_memory(config.cache_capacity),
                Some(dir) => {
                    let fingerprint =
                        format!("{};proto={PROTOCOL_VERSION}", gpumc::verifier_fingerprint());
                    ResultCache::persistent(config.cache_capacity, dir, &fingerprint)?
                }
            })
        } else {
            None
        };
        Ok(Arc::new(Shared {
            metrics: Metrics::new(),
            memo: Arc::new(BoundsMemo::new()),
            queue: CostScheduler::new(config.max_queue, jobs, config.fast_lane_max_cost),
            cache,
            shutdown: AtomicBool::new(false),
            default_timeout_ms: config.default_timeout_ms,
            retry: config.retry,
            allow_faults: config.allow_faults,
            seq: AtomicU64::new(0),
            overload: Overload::new(config.overload, config.force_degrade),
            workers: jobs,
        }))
    }
}

/// A bound, not-yet-running server. [`Server::bind`] then
/// [`Server::run`]; binding separately lets callers learn the ephemeral
/// port before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: usize,
    metrics_every: Option<Duration>,
}

impl Server {
    /// Binds the listen socket and prepares shared state.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let jobs = effective_jobs(config.jobs);
        let shared = Shared::new(config, jobs)?;
        shared.metrics.set_gauge("workers", jobs as i64);
        Ok(Server {
            listener,
            shared,
            jobs,
            metrics_every: config.metrics_every_secs.map(Duration::from_secs),
        })
    }

    /// The actually bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes the running server shut down gracefully, as
    /// if a client had sent the `shutdown` verb.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Runs accept loop + workers until shutdown, then drains.
    ///
    /// # Errors
    ///
    /// I/O errors from the accept loop (per-connection errors are
    /// contained, not fatal).
    pub fn run(self) -> std::io::Result<()> {
        let supervisor = spawn_supervised_pool(Arc::clone(&self.shared), self.jobs);
        if let Some(every) = self.metrics_every {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || loop {
                std::thread::sleep(every);
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!("[gpumc-serve] {}", shared.metrics.render_line());
            });
        }
        let local = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(stream, &shared, local));
        }
        // Drain: no new jobs; the supervisor joins the workers (which
        // finish everything accepted) and answers any leftovers.
        self.shared.queue.close();
        let _ = supervisor.join();
        Ok(())
    }

    /// Serves a single session over stdin/stdout (testing transport:
    /// same protocol, same worker pool, no sockets).
    ///
    /// # Errors
    ///
    /// I/O errors reading stdin.
    pub fn run_stdio(config: &ServerConfig) -> std::io::Result<()> {
        let jobs = effective_jobs(config.jobs);
        let shared = Shared::new(config, jobs)?;
        shared.metrics.set_gauge("workers", jobs as i64);
        let supervisor = spawn_supervised_pool(Arc::clone(&shared), jobs);
        let out: Out = Arc::new(Mutex::new(Box::new(std::io::stdout())));
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line?;
            if dispatch_line(&line, &out, &shared).is_break() {
                break;
            }
        }
        shared.queue.close();
        let _ = supervisor.join();
        Ok(())
    }
}

/// See [`Server::shutdown_handle`].
pub struct ShutdownHandle {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Initiates graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, local: SocketAddr) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out: Out = Arc::new(Mutex::new(Box::new(stream)));
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if dispatch_line(&line, &out, shared).is_break() {
            // Shutdown verb: wake the accept loop, stop reading.
            let _ = TcpStream::connect(local);
            break;
        }
    }
}

/// Handles one request line: answers control verbs inline, enqueues
/// verify jobs. `Break` means shutdown was requested.
fn dispatch_line(line: &str, out: &Out, shared: &Arc<Shared>) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow;
    let envelope = match parse_request(line) {
        Ok(e) => e,
        Err(msg) => {
            shared.metrics.inc("requests_invalid");
            write_line(out, &error_response(None, &msg));
            return ControlFlow::Continue(());
        }
    };
    let Envelope { id, request } = envelope;
    match request {
        Request::Ping => {
            shared.metrics.inc("requests_ping");
            write_line(
                out,
                &Json::Obj(vec![
                    ("id".into(), id.map_or(Json::Null, Json::count)),
                    ("proto".into(), Json::count(u64::from(PROTOCOL_VERSION))),
                    ("status".into(), Json::str("ok")),
                ]),
            );
            ControlFlow::Continue(())
        }
        Request::Metrics => {
            shared.metrics.inc("requests_metrics");
            // Cache-effectiveness gauges are sampled at snapshot time.
            shared
                .metrics
                .set_gauge("model_parse_count", gpumc_models::parse_count() as i64);
            shared
                .metrics
                .set_gauge("bounds_memo_hits", shared.memo.hits() as i64);
            shared
                .metrics
                .set_gauge("bounds_memo_misses", shared.memo.misses() as i64);
            shared
                .metrics
                .set_gauge("queue_depth", shared.queue.len() as i64);
            let sched = shared.queue.stats();
            shared
                .metrics
                .set_gauge("sched_fast_total", sched.fast as i64);
            shared
                .metrics
                .set_gauge("sched_heavy_total", sched.heavy as i64);
            shared
                .metrics
                .set_gauge("sched_steals_total", sched.steals as i64);
            shared
                .metrics
                .set_gauge("degraded_level", shared.overload.level() as i64);
            shared
                .metrics
                .set_gauge("overload_ns_per_cost", shared.overload.ns_per_cost() as i64);
            shared
                .metrics
                .set_gauge("queue_cost", shared.queue.total_cost() as i64);
            if let Some(cache) = &shared.cache {
                let s = cache.stats();
                shared
                    .metrics
                    .set_gauge("result_cache_len", cache.len() as i64);
                shared
                    .metrics
                    .set_gauge("result_cache_loaded", s.loaded as i64);
                shared
                    .metrics
                    .set_gauge("result_cache_invalidated", i64::from(s.invalidated));
                shared.metrics.set_gauge(
                    "result_cache_recovered_tail_bytes",
                    s.recovered_tail_bytes as i64,
                );
            }
            let snapshot = shared.metrics.snapshot();
            write_line(
                out,
                &Json::Obj(vec![
                    ("id".into(), id.map_or(Json::Null, Json::count)),
                    ("proto".into(), Json::count(u64::from(PROTOCOL_VERSION))),
                    ("status".into(), Json::str("ok")),
                    ("metrics".into(), snapshot),
                ]),
            );
            ControlFlow::Continue(())
        }
        Request::Shutdown => {
            shared.metrics.inc("requests_shutdown");
            shared.shutdown.store(true, Ordering::SeqCst);
            write_line(
                out,
                &Json::Obj(vec![
                    ("id".into(), id.map_or(Json::Null, Json::count)),
                    ("proto".into(), Json::count(u64::from(PROTOCOL_VERSION))),
                    ("status".into(), Json::str("ok")),
                ]),
            );
            ControlFlow::Break(())
        }
        Request::Verify(mut req) => {
            shared.metrics.inc("requests_verify");
            let accepted = Instant::now();
            let faults = match &req.faults {
                None => None,
                Some(_) if !shared.allow_faults => {
                    shared.metrics.inc("requests_invalid");
                    write_line(
                        out,
                        &error_response(
                            id,
                            "fault injection is disabled (start the server with --enable-faults)",
                        ),
                    );
                    return ControlFlow::Continue(());
                }
                Some(spec) => match FaultPlan::parse(spec) {
                    Ok(plan) => Some(Arc::new(plan)),
                    Err(msg) => {
                        shared.metrics.inc("requests_invalid");
                        write_line(out, &error_response(id, &format!("bad fault spec: {msg}")));
                        return ControlFlow::Continue(());
                    }
                },
            };
            // Re-evaluate the degradation ladder against queue
            // occupancy; `serve.overload` (global or the request's own
            // plan) forces this one request to the shed rung, which is
            // how the chaos harness floods a shard deterministically.
            let mut level = shared
                .overload
                .update(shared.queue.len(), shared.queue.capacity());
            {
                let _guard = faults.clone().map(gpumc::fault::scoped);
                if gpumc::fault::hit(gpumc::fault::points::SERVE_OVERLOAD).is_some() {
                    shared.metrics.inc("overload_injected_total");
                    level = DegradeLevel::Shed;
                }
            }
            shared.metrics.set_gauge("degraded_level", level as i64);
            // Content digest + predicted cost, both derived from the
            // parsed request at dispatch time (microseconds against
            // solve times in milliseconds-to-minutes). An unparsable
            // request keeps digest `None` and flows to a worker, which
            // answers `error` exactly as before the cache existed.
            let (raw_digest, cost) = digest_and_cost(&req);
            // Fault-armed jobs bypass the cache in *both* directions:
            // a verdict computed under injection must not be served to
            // clean requests, and a clean cached verdict must not mask
            // the injection the client asked to exercise.
            let digest = if faults.is_none() && req.cache {
                raw_digest
            } else {
                None
            };
            // At cache-only and below, a `"cache":false` opt-out is
            // overridden for *lookup* (a stale-tolerant answer beats no
            // answer; the `degraded` block says it happened). The job's
            // own digest stays gated by the opt-out, so a forced-fresh
            // verdict is still never *recorded* against the client's
            // wishes.
            let lookup = if faults.is_none() && level >= DegradeLevel::CacheOnly {
                raw_digest
            } else {
                digest
            };
            if let (Some(cache), Some(d)) = (&shared.cache, lookup) {
                if let Some(v) = cache.lookup(d) {
                    shared.metrics.inc("cache_hits");
                    // A cache hit is still a served verdict: the
                    // verdict counters and the latency histogram must
                    // add up across cached and fresh answers alike.
                    let pass = v.expectation != "fails";
                    shared
                        .metrics
                        .inc(if pass { "verdict_pass" } else { "verdict_fail" });
                    let wall_us = accepted.elapsed().as_micros() as u64;
                    shared.metrics.observe_us("verify_latency_us", wall_us);
                    write_line(out, &cached_response(id, &v, wall_us, Some(level)));
                    return ControlFlow::Continue(());
                }
                shared.metrics.inc("cache_misses");
            }
            // The load-shed gate: at the shed rung only cache hits
            // (above) are answered; everything else is refused *before*
            // acceptance, so it can be resubmitted elsewhere.
            if level == DegradeLevel::Shed {
                shared.metrics.inc("jobs_shed_total");
                write_line(out, &shed_response(id, "overloaded", Some(level)));
                return ControlFlow::Continue(());
            }
            let timeout_ms = req.timeout_ms.or(shared.default_timeout_ms);
            // Deadline admission: when the service model has seen real
            // work, a job predicted to blow its deadline while still
            // queued is shed at the door instead of accepted, timed
            // out, and answered `unknown` after burning a worker.
            if let Some(deadline) = timeout_ms {
                let predicted = shared.overload.predicted_completion_ms(
                    shared.queue.total_cost(),
                    cost,
                    shared.workers,
                );
                if let Some(p) = predicted {
                    if p > deadline {
                        shared.metrics.inc("jobs_shed_total");
                        shared.metrics.inc("jobs_shed_deadline_total");
                        write_line(
                            out,
                            &shed_response(
                                id,
                                &format!(
                                    "deadline unmeetable: predicted {p}ms exceeds timeout {deadline}ms"
                                ),
                                Some(level),
                            ),
                        );
                        return ControlFlow::Continue(());
                    }
                }
            }
            // At the sequential rung, per-job CPU fan-out is the first
            // luxury to go: portfolio solving degrades to one solver.
            if level >= DegradeLevel::Sequential
                && req.portfolio != gpumc::gpumc_sat::ParallelPolicy::Off
            {
                shared.metrics.inc("portfolio_downgraded_total");
                req.portfolio = gpumc::gpumc_sat::ParallelPolicy::Off;
            }
            let token = match timeout_ms {
                Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            let job = Job {
                id,
                req,
                token,
                out: Arc::clone(out),
                accepted,
                attempt: 1,
                seq: shared.seq.fetch_add(1, Ordering::Relaxed),
                faults,
                digest,
                cost,
                degraded: level,
            };
            match shared.queue.try_push(job, cost) {
                Ok(()) => {
                    shared.metrics.move_gauge("queue_depth", 1);
                }
                Err(PushError::Full(job)) => {
                    shared.metrics.inc("queue_rejected_total");
                    write_line(&job.out, &rejected_response(job.id, "queue full"));
                }
                Err(PushError::Closed(job)) => {
                    shared.metrics.inc("queue_rejected_total");
                    write_line(&job.out, &rejected_response(job.id, "shutting down"));
                }
            }
            ControlFlow::Continue(())
        }
    }
}

/// Computes the request's content digest and predicted cost at
/// dispatch. Unparsable source or unknown model → `(None, 0)`: the
/// request is uncacheable and trivially cheap (the worker answers
/// `error` without encoding anything).
fn digest_and_cost(req: &VerifyRequest) -> (Option<u128>, u64) {
    let Ok(program) = gpumc::parse_litmus(&req.source) else {
        return (None, 0);
    };
    let engine = engine_name(req.engine);
    let digest = resolve_model(req.model.as_deref(), program.arch).map(|kind| {
        request_digest(&RequestKey {
            program: &program,
            model_source: kind.source(),
            bound: req.bound,
            property: "all",
            engine,
            proto: PROTOCOL_VERSION,
        })
    });
    let cost = match gpumc_ir::unroll(&program, req.bound) {
        Ok(u) => gpumc_encode::estimate_cost(
            gpumc_ir::compile(&u).n_events(),
            req.bound,
            gpumc_encode::engine_weight(engine),
        ),
        // Unrolling failures reach the worker as errors; schedule them
        // on the fast lane so they answer quickly.
        Err(_) => 0,
    };
    (digest, cost)
}

/// Where a worker parks a copy of its in-flight job so the supervisor
/// can recover it if the worker thread dies.
type WorkerSlot = Arc<Mutex<Option<Job>>>;

fn worker_loop(shared: &Arc<Shared>, slot: &WorkerSlot, worker: usize) {
    while let Some(job) = shared.queue.pop(worker) {
        shared.metrics.move_gauge("queue_depth", -1);
        *lock_unpoisoned(slot) = Some(job.clone());
        shared.metrics.move_gauge("in_flight", 1);
        // The job's fault plan is armed *outside* the catch so that the
        // hard-kill hook below escapes the per-job catch and kills the
        // worker thread itself — exactly what the supervisor-recovery
        // path is for. (The guard still unwinds cleanly with the
        // thread.)
        let guard = job.faults.clone().map(gpumc::fault::scoped);
        let _ = gpumc::fault::hit(WORKER_HARD_KILL_POINT);
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run_verify_job(&job, shared)));
        drop(guard);
        shared.metrics.move_gauge("in_flight", -1);
        *lock_unpoisoned(slot) = None;
        match outcome {
            Ok(response) => {
                // Completed attempts (whatever the verdict) feed the
                // deadline-admission service model; predicted-cost-0
                // jobs (parse errors) would only pollute it.
                if job.cost > 0 {
                    shared
                        .overload
                        .observe_service(job.cost, started.elapsed().as_nanos() as u64);
                }
                write_line(&job.out, &response);
            }
            Err(payload) => handle_job_panic(job, &panic_message(&*payload), shared),
        }
    }
}

fn lock_unpoisoned(slot: &WorkerSlot) -> std::sync::MutexGuard<'_, Option<Job>> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Maps a panic message to the protocol's failure classes.
fn classify_panic(message: &str) -> &'static str {
    let m = message.to_ascii_lowercase();
    if m.contains("alloc") || m.contains("memory") || m.contains("oom") {
        "oom"
    } else {
        "panic"
    }
}

/// A job's attempt panicked (caught in the worker, or recovered from a
/// dead worker by the supervisor): log, count, and either retry with
/// backoff or answer `status:"failed"`.
fn handle_job_panic(mut job: Job, message: &str, shared: &Arc<Shared>) {
    shared.metrics.inc("worker_panics");
    eprintln!(
        "[gpumc-serve] job {:?} attempt {} panicked: {message}",
        job.id, job.attempt
    );
    let retryable = job.attempt < shared.retry.max_attempts && job.token.check().is_none();
    if retryable {
        job.attempt += 1;
        std::thread::sleep(shared.retry.backoff(job.seq, job.attempt));
        shared.metrics.inc("jobs_retried");
        let cost = job.cost;
        match shared.queue.try_push(job, cost) {
            Ok(()) => {
                shared.metrics.move_gauge("queue_depth", 1);
                return;
            }
            Err(PushError::Full(j) | PushError::Closed(j)) => job = j,
        }
    }
    shared.metrics.inc("jobs_failed");
    let class = if job.token.check().is_some() {
        "timeout"
    } else {
        classify_panic(message)
    };
    write_line(
        &job.out,
        &failed_response(job.id, class, message, job.attempt),
    );
}

/// Spawns `jobs` workers under a supervisor thread. The supervisor
/// recovers parked jobs from workers that died outside the per-job
/// catch, respawns replacements while the queue is open, and — once the
/// queue is closed and every worker has exited — answers any leftover
/// queued jobs with `rejected` so nothing is silently dropped.
fn spawn_supervised_pool(shared: Arc<Shared>, jobs: usize) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let spawn_worker = |shared: &Arc<Shared>, worker: usize| -> (WorkerSlot, JoinHandle<()>) {
            let slot: WorkerSlot = Arc::new(Mutex::new(None));
            let shared = Arc::clone(shared);
            let slot2 = Arc::clone(&slot);
            let handle = std::thread::spawn(move || worker_loop(&shared, &slot2, worker));
            (slot, handle)
        };
        let mut pool: Vec<(WorkerSlot, Option<JoinHandle<()>>)> = (0..jobs.max(1))
            .map(|worker| {
                let (slot, h) = spawn_worker(&shared, worker);
                (slot, Some(h))
            })
            .collect();
        loop {
            let mut alive = 0;
            for (worker, entry) in pool.iter_mut().enumerate() {
                match &entry.1 {
                    None => {}
                    Some(h) if h.is_finished() => {
                        let died = entry.1.take().expect("checked Some").join().is_err();
                        if let Some(job) = lock_unpoisoned(&entry.0).take() {
                            // The worker died with a job in flight; the
                            // gauge decrement it never reached happens
                            // here.
                            shared.metrics.move_gauge("in_flight", -1);
                            handle_job_panic(job, "worker thread died mid-job", &shared);
                        }
                        if died && !shared.queue.is_closed() {
                            shared.metrics.inc("workers_respawned");
                            // The replacement inherits the dead
                            // worker's index (and so its heavy lane).
                            let (slot, h) = spawn_worker(&shared, worker);
                            *entry = (slot, Some(h));
                            alive += 1;
                        }
                    }
                    Some(_) => alive += 1,
                }
            }
            if shared.queue.is_closed() && alive == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // All workers have exited and the queue is closed. Anything
        // still queued (possible only if the pool died during drain)
        // gets a `rejected` answer instead of silence.
        for job in shared.queue.drain_now() {
            shared.metrics.inc("queue_rejected_total");
            write_line(&job.out, &rejected_response(job.id, "shutting down"));
        }
    })
}

/// Runs one verify job to a response. Never panics on budget/deadline/
/// cancellation: those surface as `status: unknown`.
fn run_verify_job(job: &Job, shared: &Arc<Shared>) -> Json {
    let req = &job.req;
    match gpumc::fault::hit(gpumc::fault::points::SERVE_WORKER) {
        Some(gpumc::fault::FaultSignal::SpuriousUnknown) => {
            shared.metrics.inc("verdict_unknown");
            let wall_us = job.accepted.elapsed().as_micros() as u64;
            return unknown_response(job.id, "injected fault", wall_us);
        }
        Some(gpumc::fault::FaultSignal::AllocSpike(bytes)) => {
            let _ = gpumc::fault::materialize_spike(bytes);
        }
        None => {}
    }
    let program = match gpumc::parse_litmus(&req.source) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.inc("verdict_error");
            return error_response(job.id, &e.to_string());
        }
    };
    let kind = match &req.model {
        Some(name) => match ModelKind::from_name(name) {
            Some(k) => k,
            None => {
                shared.metrics.inc("verdict_error");
                return error_response(job.id, &format!("unknown model `{name}`"));
            }
        },
        None => match program.arch {
            gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
            gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
        },
    };
    let mut verifier = Verifier::new(gpumc_models::load_shared(kind))
        .with_engine(req.engine)
        .with_bound(req.bound)
        .with_bounds_memo(Arc::clone(&shared.memo))
        .with_cancel_token(job.token.clone())
        .with_simplify(req.simplify)
        .with_parallel(req.portfolio);
    if let Some(budget) = req.budget {
        verifier = verifier.with_conflict_budget(budget);
    }
    if let Some(mb) = req.mem_budget_mb {
        verifier = verifier.with_mem_budget_mb(mb);
    }
    let outcome = verifier.check_all(&program);
    let wall_us = job.accepted.elapsed().as_micros() as u64;
    shared.metrics.observe_us("verify_latency_us", wall_us);
    match outcome {
        Ok(o) => {
            let pass = o.assertion.satisfied_expectation.unwrap_or(true);
            shared
                .metrics
                .inc(if pass { "verdict_pass" } else { "verdict_fail" });
            let (conflicts, propagations) = o.queries.iter().fold((0u64, 0u64), |(c, p), q| {
                (c + q.stats.conflicts, p + q.stats.propagations)
            });
            shared.metrics.add("solver_conflicts_total", conflicts);
            shared
                .metrics
                .add("solver_propagations_total", propagations);
            shared.metrics.observe_us("solve_us", o.phases.solve_us);
            shared.metrics.observe_us("encode_us", o.phases.encode_us);
            if let Some(sp) = &o.simplify {
                shared
                    .metrics
                    .add("simplify_vars_eliminated_total", sp.vars_eliminated as u64);
                shared.metrics.add(
                    "simplify_equivs_substituted_total",
                    sp.equivs_substituted as u64,
                );
                shared.metrics.add(
                    "simplify_clauses_removed_total",
                    sp.clauses_before.saturating_sub(sp.clauses_after) as u64,
                );
                shared.metrics.add(
                    "simplify_clauses_subsumed_total",
                    sp.clauses_subsumed as u64,
                );
                shared.metrics.observe_us("simplify_us", sp.time_us);
            }
            if let Some(p) = &o.portfolio {
                shared.metrics.inc("portfolio_requests_total");
                shared
                    .metrics
                    .add("portfolio_clauses_exported_total", p.exported);
                shared
                    .metrics
                    .add("portfolio_clauses_imported_total", p.imported);
                if let Some(w) = p.winner {
                    shared.metrics.inc(&format!("portfolio_winner_{w}_total"));
                }
                if p.cube_fallback {
                    shared.metrics.inc("portfolio_cube_fallbacks_total");
                }
            }
            if let Some(p) = &o.assertion.stats.dpor_parallel {
                shared.metrics.inc("dpor_parallel_requests_total");
                shared
                    .metrics
                    .add("dpor_parallel_tasks_total", p.tasks as u64);
                shared.metrics.add("dpor_parallel_steals_total", p.steals);
                if p.stopped_early {
                    shared.metrics.inc("dpor_parallel_early_stops_total");
                }
            }
            // Only definitive verdicts are cached — the `unknown` and
            // error arms below never reach this insert — and only for
            // jobs whose digest survived the dispatch-time gating
            // (cacheable request, no fault plan).
            if let (Some(cache), Some(d)) = (&shared.cache, job.digest) {
                cache.insert(d, cached_verdict(&program.name, &o));
                shared.metrics.inc("cache_inserts");
            }
            verify_response(job.id, &program.name, &o, wall_us, Some(job.degraded))
        }
        Err(VerifyError::Unknown(reason)) => {
            shared.metrics.inc("verdict_unknown");
            unknown_response(job.id, &reason, wall_us)
        }
        Err(e) => {
            shared.metrics.inc("verdict_error");
            error_response(job.id, &e.to_string())
        }
    }
}

fn write_line(out: &Out, response: &Json) {
    let mut w = out.lock().unwrap();
    // A dead client (write error) is the client's problem, not the
    // server's: the worker moves on either way.
    let _ = writeln!(w, "{response}");
    let _ = w.flush();
}
