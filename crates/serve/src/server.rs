//! The verification daemon: accept loop, worker pool, graceful drain.
//!
//! Architecture (all std, one thread per blocking concern):
//!
//! ```text
//!  TCP accept loop ──► per-connection reader threads
//!                         │  ping/metrics/shutdown answered inline
//!                         ▼  verify → CancelToken(deadline) + job
//!                  bounded JobQueue (try_push; full ⇒ `rejected`)
//!                         │
//!                  worker pool (effective_jobs), shared warm state:
//!                    · gpumc_models::load_shared (one parse per model)
//!                    · Arc<BoundsMemo> (relation bounds across requests)
//!                         │
//!                  responses written through the connection's shared
//!                  writer (one line per response, ids match requests)
//! ```
//!
//! The deadline clock starts when the request is *accepted*, so time
//! spent queued counts against it; an expired job fails fast inside
//! `Verifier::check_all` before paying for compilation. Workers never
//! die from a timeout: interruption surfaces as `VerifyError::Unknown`
//! (see the cancellation layer in `gpumc-sat`), the worker answers
//! `status: unknown` and takes the next job.
//!
//! Shutdown (`shutdown` verb or [`Server::request_shutdown`]) stops the
//! accept loop, closes the queue, and drains: every accepted job still
//! gets its response before [`Server::run`] returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gpumc::{effective_jobs, Verifier, VerifyError};
use gpumc_encode::BoundsMemo;
use gpumc_models::ModelKind;
use gpumc_sat::CancelToken;

use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{
    error_response, parse_request, rejected_response, unknown_response, verify_response, Envelope,
    Request, VerifyRequest,
};
use crate::queue::{JobQueue, PushError};

/// Server configuration; see `gpumc serve --help` for the CLI mapping.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`; port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means all available cores.
    pub jobs: usize,
    /// Maximum queued (accepted, unstarted) verify jobs.
    pub max_queue: usize,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Dump a one-line metrics summary to stderr every this many
    /// seconds.
    pub metrics_every_secs: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 0,
            max_queue: 64,
            default_timeout_ms: None,
            metrics_every_secs: None,
        }
    }
}

/// A write end shared between the connection reader and the workers
/// answering its jobs; each response line is written under the lock.
type Out = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    id: Option<u64>,
    req: VerifyRequest,
    token: CancelToken,
    out: Out,
    accepted: Instant,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    metrics: Metrics,
    memo: Arc<BoundsMemo>,
    queue: JobQueue<Job>,
    shutdown: AtomicBool,
    default_timeout_ms: Option<u64>,
}

/// A bound, not-yet-running server. [`Server::bind`] then
/// [`Server::run`]; binding separately lets callers learn the ephemeral
/// port before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: usize,
    metrics_every: Option<Duration>,
}

impl Server {
    /// Binds the listen socket and prepares shared state.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let jobs = effective_jobs(config.jobs);
        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            memo: Arc::new(BoundsMemo::new()),
            queue: JobQueue::new(config.max_queue),
            shutdown: AtomicBool::new(false),
            default_timeout_ms: config.default_timeout_ms,
        });
        shared.metrics.set_gauge("workers", jobs as i64);
        Ok(Server {
            listener,
            shared,
            jobs,
            metrics_every: config.metrics_every_secs.map(Duration::from_secs),
        })
    }

    /// The actually bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes the running server shut down gracefully, as
    /// if a client had sent the `shutdown` verb.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Runs accept loop + workers until shutdown, then drains.
    ///
    /// # Errors
    ///
    /// I/O errors from the accept loop (per-connection errors are
    /// contained, not fatal).
    pub fn run(self) -> std::io::Result<()> {
        let workers: Vec<_> = (0..self.jobs)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        if let Some(every) = self.metrics_every {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || loop {
                std::thread::sleep(every);
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!("[gpumc-serve] {}", shared.metrics.render_line());
            });
        }
        let local = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(stream, &shared, local));
        }
        // Drain: no new jobs, workers finish everything accepted.
        self.shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Serves a single session over stdin/stdout (testing transport:
    /// same protocol, same worker pool, no sockets).
    ///
    /// # Errors
    ///
    /// I/O errors reading stdin.
    pub fn run_stdio(config: &ServerConfig) -> std::io::Result<()> {
        let jobs = effective_jobs(config.jobs);
        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            memo: Arc::new(BoundsMemo::new()),
            queue: JobQueue::new(config.max_queue),
            shutdown: AtomicBool::new(false),
            default_timeout_ms: config.default_timeout_ms,
        });
        shared.metrics.set_gauge("workers", jobs as i64);
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let out: Out = Arc::new(Mutex::new(Box::new(std::io::stdout())));
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line?;
            if dispatch_line(&line, &out, &shared).is_break() {
                break;
            }
        }
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// See [`Server::shutdown_handle`].
pub struct ShutdownHandle {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Initiates graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, local: SocketAddr) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out: Out = Arc::new(Mutex::new(Box::new(stream)));
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if dispatch_line(&line, &out, shared).is_break() {
            // Shutdown verb: wake the accept loop, stop reading.
            let _ = TcpStream::connect(local);
            break;
        }
    }
}

/// Handles one request line: answers control verbs inline, enqueues
/// verify jobs. `Break` means shutdown was requested.
fn dispatch_line(line: &str, out: &Out, shared: &Arc<Shared>) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow;
    let envelope = match parse_request(line) {
        Ok(e) => e,
        Err(msg) => {
            shared.metrics.inc("requests_invalid");
            write_line(out, &error_response(None, &msg));
            return ControlFlow::Continue(());
        }
    };
    let Envelope { id, request } = envelope;
    match request {
        Request::Ping => {
            shared.metrics.inc("requests_ping");
            write_line(
                out,
                &Json::Obj(vec![
                    ("id".into(), id.map_or(Json::Null, Json::count)),
                    ("status".into(), Json::str("ok")),
                ]),
            );
            ControlFlow::Continue(())
        }
        Request::Metrics => {
            shared.metrics.inc("requests_metrics");
            // Cache-effectiveness gauges are sampled at snapshot time.
            shared
                .metrics
                .set_gauge("model_parse_count", gpumc_models::parse_count() as i64);
            shared
                .metrics
                .set_gauge("bounds_memo_hits", shared.memo.hits() as i64);
            shared
                .metrics
                .set_gauge("bounds_memo_misses", shared.memo.misses() as i64);
            shared
                .metrics
                .set_gauge("queue_depth", shared.queue.len() as i64);
            let snapshot = shared.metrics.snapshot();
            write_line(
                out,
                &Json::Obj(vec![
                    ("id".into(), id.map_or(Json::Null, Json::count)),
                    ("status".into(), Json::str("ok")),
                    ("metrics".into(), snapshot),
                ]),
            );
            ControlFlow::Continue(())
        }
        Request::Shutdown => {
            shared.metrics.inc("requests_shutdown");
            shared.shutdown.store(true, Ordering::SeqCst);
            write_line(
                out,
                &Json::Obj(vec![
                    ("id".into(), id.map_or(Json::Null, Json::count)),
                    ("status".into(), Json::str("ok")),
                ]),
            );
            ControlFlow::Break(())
        }
        Request::Verify(req) => {
            shared.metrics.inc("requests_verify");
            let timeout_ms = req.timeout_ms.or(shared.default_timeout_ms);
            let token = match timeout_ms {
                Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            let job = Job {
                id,
                req,
                token,
                out: Arc::clone(out),
                accepted: Instant::now(),
            };
            match shared.queue.try_push(job) {
                Ok(()) => {
                    shared.metrics.move_gauge("queue_depth", 1);
                }
                Err(PushError::Full(job) | PushError::Closed(job)) => {
                    shared.metrics.inc("queue_rejected_total");
                    write_line(&job.out, &rejected_response(job.id));
                }
            }
            ControlFlow::Continue(())
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.move_gauge("queue_depth", -1);
        shared.metrics.move_gauge("in_flight", 1);
        let response = run_verify_job(&job, shared);
        write_line(&job.out, &response);
        shared.metrics.move_gauge("in_flight", -1);
    }
}

/// Runs one verify job to a response. Never panics on budget/deadline/
/// cancellation: those surface as `status: unknown`.
fn run_verify_job(job: &Job, shared: &Arc<Shared>) -> Json {
    let req = &job.req;
    let program = match gpumc::parse_litmus(&req.source) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.inc("verdict_error");
            return error_response(job.id, &e.to_string());
        }
    };
    let kind = match &req.model {
        Some(name) => match ModelKind::from_name(name) {
            Some(k) => k,
            None => {
                shared.metrics.inc("verdict_error");
                return error_response(job.id, &format!("unknown model `{name}`"));
            }
        },
        None => match program.arch {
            gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
            gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
        },
    };
    let mut verifier = Verifier::new(gpumc_models::load_shared(kind))
        .with_bound(req.bound)
        .with_bounds_memo(Arc::clone(&shared.memo))
        .with_cancel_token(job.token.clone())
        .with_simplify(req.simplify);
    if let Some(budget) = req.budget {
        verifier = verifier.with_conflict_budget(budget);
    }
    let outcome = verifier.check_all(&program);
    let wall_us = job.accepted.elapsed().as_micros() as u64;
    shared.metrics.observe_us("verify_latency_us", wall_us);
    match outcome {
        Ok(o) => {
            let pass = o.assertion.satisfied_expectation.unwrap_or(true);
            shared
                .metrics
                .inc(if pass { "verdict_pass" } else { "verdict_fail" });
            let (conflicts, propagations) = o.queries.iter().fold((0u64, 0u64), |(c, p), q| {
                (c + q.stats.conflicts, p + q.stats.propagations)
            });
            shared.metrics.add("solver_conflicts_total", conflicts);
            shared
                .metrics
                .add("solver_propagations_total", propagations);
            shared.metrics.observe_us("solve_us", o.phases.solve_us);
            shared.metrics.observe_us("encode_us", o.phases.encode_us);
            if let Some(sp) = &o.simplify {
                shared
                    .metrics
                    .add("simplify_vars_eliminated_total", sp.vars_eliminated as u64);
                shared.metrics.add(
                    "simplify_equivs_substituted_total",
                    sp.equivs_substituted as u64,
                );
                shared.metrics.add(
                    "simplify_clauses_removed_total",
                    sp.clauses_before.saturating_sub(sp.clauses_after) as u64,
                );
                shared.metrics.add(
                    "simplify_clauses_subsumed_total",
                    sp.clauses_subsumed as u64,
                );
                shared.metrics.observe_us("simplify_us", sp.time_us);
            }
            verify_response(job.id, &program.name, &o, wall_us)
        }
        Err(VerifyError::Unknown(reason)) => {
            shared.metrics.inc("verdict_unknown");
            unknown_response(job.id, &reason, wall_us)
        }
        Err(e) => {
            shared.metrics.inc("verdict_error");
            error_response(job.id, &e.to_string())
        }
    }
}

fn write_line(out: &Out, response: &Json) {
    let mut w = out.lock().unwrap();
    // A dead client (write error) is the client's problem, not the
    // server's: the worker moves on either way.
    let _ = writeln!(w, "{response}");
    let _ = w.flush();
}
