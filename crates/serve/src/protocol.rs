//! The JSON-lines request/response protocol.
//!
//! One request per line, one response per line, in either direction of
//! a TCP connection (or stdin/stdout with `--stdio`). Requests carry an
//! optional client-chosen `id` that is echoed verbatim in the response,
//! so a client may pipeline requests and match answers out of order —
//! workers answer in completion order, not submission order.
//!
//! ## Verbs
//!
//! ```json
//! {"id":1,"verb":"verify","source":"<litmus>","model":"ptx-v7.5","bound":2,"timeout_ms":5000}
//! {"id":2,"verb":"ping"}
//! {"id":3,"verb":"metrics"}
//! {"id":4,"verb":"shutdown"}
//! ```
//!
//! `verify` fields other than `source` are optional: `model` defaults
//! to the test dialect's default model, `bound` to 2, `engine` to
//! `sat` (also: `enumerate`, `alloy`, `dpor`), `timeout_ms` to the
//! server's `--default-timeout-ms`, `budget` (SAT conflicts) and
//! `mem_budget_mb` (solver memory) to unlimited. `faults` arms a
//! per-job fault-injection plan and requires `--enable-faults`.
//!
//! ## Responses
//!
//! Every response carries `id` (null if the request had none) and a
//! `status`: `done` (verdict reached), `unknown` (budget/deadline/
//! cancellation/memory — retrying with more budget is sound), `error`
//! (the request itself was bad), `rejected` (backpressure or shutdown —
//! resubmit later; the `reason` field distinguishes the two), `failed`
//! (the job crashed and exhausted its retries; the `class` field is one
//! of `panic`/`oom`/`timeout`), plus `ok` for ping/metrics/shutdown.
//! See DESIGN.md §13 for the complete failure taxonomy.

use gpumc::FullOutcome;

use crate::json::Json;

/// A parsed request envelope: the echoed id plus the verb payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The verb payload.
    pub request: Request,
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Verify a litmus test (all three properties, incremental).
    Verify(VerifyRequest),
    /// Liveness probe.
    Ping,
    /// Snapshot the metrics registry.
    Metrics,
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

/// The payload of a `verify` request.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRequest {
    /// The litmus test source, either dialect.
    pub source: String,
    /// Model name (`ptx-v6.0`, `ptx-v7.5`, `vulkan`); `None` infers
    /// from the test dialect.
    pub model: Option<String>,
    /// Loop unrolling bound.
    pub bound: u32,
    /// Per-request deadline in milliseconds, measured from acceptance
    /// (queue wait counts). `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// SAT conflict budget per query.
    pub budget: Option<u64>,
    /// Whether to run CNF simplification on the encoding (default
    /// `true`; a `"simplify": false` field disables it).
    pub simplify: bool,
    /// SAT memory budget in MiB; exceeding it answers `unknown` instead
    /// of letting one query OOM the process.
    pub mem_budget_mb: Option<u64>,
    /// A `gpumc-fault` plan spec armed for this job only. Refused with
    /// `status:"error"` unless the server runs with `--enable-faults`.
    pub faults: Option<String>,
    /// Parallel solve strategy: a `"portfolio"` field carrying a worker
    /// count (`4`), `"auto"`, or `"off"` (the default when absent).
    pub portfolio: gpumc::gpumc_sat::ParallelPolicy,
    /// Verification engine (`sat`, `enumerate`, `alloy`, `dpor`);
    /// defaults to `sat` when absent.
    pub engine: gpumc::EngineKind,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, a missing/unknown verb,
/// or missing `verify` fields.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let v = Json::parse(line)?;
    let id = v.get("id").and_then(Json::as_u64);
    let verb = v
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing `verb`")?;
    let request = match verb {
        "ping" => Request::Ping,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "verify" => {
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("verify needs a `source` string")?
                .to_string();
            let bound = match v.get("bound") {
                None | Some(Json::Null) => 2,
                Some(b) => {
                    let b = b.as_u64().ok_or("`bound` must be a positive integer")?;
                    u32::try_from(b).map_err(|_| "`bound` out of range")?
                }
            };
            if bound == 0 {
                return Err("`bound` must be at least 1".into());
            }
            let portfolio = match v.get("portfolio") {
                None | Some(Json::Null) => gpumc::gpumc_sat::ParallelPolicy::Off,
                Some(Json::Num(_)) => {
                    let n = v
                        .get("portfolio")
                        .and_then(Json::as_u64)
                        .ok_or("`portfolio` must be a worker count, \"auto\", or \"off\"")?;
                    let n = u32::try_from(n).map_err(|_| "`portfolio` out of range")?;
                    gpumc::gpumc_sat::ParallelPolicy::parse(&n.to_string())?
                }
                Some(Json::Str(s)) => gpumc::gpumc_sat::ParallelPolicy::parse(s)?,
                Some(_) => {
                    return Err("`portfolio` must be a worker count, \"auto\", or \"off\"".into())
                }
            };
            let engine = match v.get("engine") {
                None | Some(Json::Null) => gpumc::EngineKind::Sat,
                Some(Json::Str(s)) => s.parse::<gpumc::EngineKind>()?,
                Some(_) => return Err("`engine` must be a string".into()),
            };
            Request::Verify(VerifyRequest {
                source,
                model: v.get("model").and_then(Json::as_str).map(str::to_string),
                bound,
                timeout_ms: v.get("timeout_ms").and_then(Json::as_u64),
                budget: v.get("budget").and_then(Json::as_u64),
                simplify: v.get("simplify").and_then(Json::as_bool).unwrap_or(true),
                mem_budget_mb: v.get("mem_budget_mb").and_then(Json::as_u64),
                faults: v.get("faults").and_then(Json::as_str).map(str::to_string),
                portfolio,
                engine,
            })
        }
        other => return Err(format!("unknown verb `{other}`")),
    };
    Ok(Envelope { id, request })
}

fn id_json(id: Option<u64>) -> Json {
    id.map_or(Json::Null, Json::count)
}

/// The verdict object of a completed verification — the same facts the
/// batch CLI (`gpumc verify --all`) prints, as structured fields, so
/// server and CLI answers can be compared for byte-identity.
pub fn verdict_json(test_name: &str, o: &FullOutcome) -> Json {
    let expectation = match o.assertion.satisfied_expectation {
        Some(true) => "holds",
        Some(false) => "fails",
        None => "none",
    };
    Json::Obj(vec![
        ("test".into(), Json::str(test_name)),
        ("reachable".into(), Json::Bool(o.assertion.reachable)),
        ("expectation".into(), Json::str(expectation)),
        (
            "liveness".into(),
            Json::str(if o.liveness.violated {
                "violation"
            } else {
                "ok"
            }),
        ),
        (
            "datarace".into(),
            Json::str(match &o.data_races {
                Some(d) if d.violated => "found",
                Some(_) => "none",
                None => "n/a",
            }),
        ),
    ])
}

/// A successful (`status: done`) verify response.
pub fn verify_response(id: Option<u64>, test_name: &str, o: &FullOutcome, wall_us: u64) -> Json {
    let (conflicts, propagations) = o.queries.iter().fold((0u64, 0u64), |(c, p), q| {
        (c + q.stats.conflicts, p + q.stats.propagations)
    });
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::str("done")),
        ("verdict".into(), verdict_json(test_name, o)),
        (
            "phases".into(),
            Json::Obj(vec![
                ("compile_us".into(), Json::count(o.phases.compile_us)),
                ("bounds_us".into(), Json::count(o.phases.bounds_us)),
                ("encode_us".into(), Json::count(o.phases.encode_us)),
                ("solve_us".into(), Json::count(o.phases.solve_us)),
            ]),
        ),
        (
            "solver".into(),
            Json::Obj(vec![
                (
                    "vars".into(),
                    Json::count(o.assertion.stats.sat_vars as u64),
                ),
                (
                    "clauses".into(),
                    Json::count(o.assertion.stats.sat_clauses as u64),
                ),
                ("conflicts".into(), Json::count(conflicts)),
                ("propagations".into(), Json::count(propagations)),
            ]),
        ),
        (
            "simplify".into(),
            match &o.simplify {
                None => Json::Null,
                Some(sp) => Json::Obj(vec![
                    ("vars_before".into(), Json::count(sp.vars_before as u64)),
                    ("vars_after".into(), Json::count(sp.vars_after as u64)),
                    (
                        "clauses_before".into(),
                        Json::count(sp.clauses_before as u64),
                    ),
                    ("clauses_after".into(), Json::count(sp.clauses_after as u64)),
                    (
                        "literals_before".into(),
                        Json::count(sp.literals_before as u64),
                    ),
                    (
                        "literals_after".into(),
                        Json::count(sp.literals_after as u64),
                    ),
                    (
                        "vars_eliminated".into(),
                        Json::count(sp.vars_eliminated as u64),
                    ),
                    (
                        "equivs_substituted".into(),
                        Json::count(sp.equivs_substituted as u64),
                    ),
                    (
                        "clauses_subsumed".into(),
                        Json::count(sp.clauses_subsumed as u64),
                    ),
                    (
                        "clauses_strengthened".into(),
                        Json::count(sp.clauses_strengthened as u64),
                    ),
                    ("time_us".into(), Json::count(sp.time_us)),
                ]),
            },
        ),
        (
            "portfolio".into(),
            match &o.portfolio {
                None => Json::Null,
                Some(p) => Json::Obj(vec![
                    ("workers".into(), Json::count(u64::from(p.workers))),
                    (
                        "winner".into(),
                        p.winner.map_or(Json::Null, |w| Json::count(u64::from(w))),
                    ),
                    ("exported".into(), Json::count(p.exported)),
                    ("imported".into(), Json::count(p.imported)),
                    ("cube_fallback".into(), Json::Bool(p.cube_fallback)),
                    ("cubes".into(), Json::count(u64::from(p.cubes))),
                ]),
            },
        ),
        (
            "dpor".into(),
            match &o.assertion.stats.dpor {
                None => Json::Null,
                Some(d) => Json::Obj(vec![
                    ("explored".into(), Json::count(d.explored)),
                    ("consistent".into(), Json::count(d.consistent)),
                    ("pruned".into(), Json::count(d.pruned_total())),
                ]),
            },
        ),
        ("time_us".into(), Json::count(wall_us)),
    ])
}

/// A `status: unknown` response (deadline, cancellation, budget).
pub fn unknown_response(id: Option<u64>, reason: &str, wall_us: u64) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::str("unknown")),
        ("reason".into(), Json::str(reason)),
        ("time_us".into(), Json::count(wall_us)),
    ])
}

/// A `status: error` response (the request was unprocessable).
pub fn error_response(id: Option<u64>, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::str("error")),
        ("error".into(), Json::str(message)),
    ])
}

/// A `status: rejected` response: the job was not (or will not be)
/// started — `reason` is `"queue full"` for backpressure or
/// `"shutting down"` when the server is draining. Resubmitting later is
/// always safe.
pub fn rejected_response(id: Option<u64>, reason: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::str("rejected")),
        ("error".into(), Json::str(reason)),
    ])
}

/// A `status: failed` response: the job was accepted but crashed and
/// exhausted its retry policy. `class` categorizes the crash (`panic`,
/// `oom`, `timeout`); `attempts` is how many times the job ran.
pub fn failed_response(id: Option<u64>, class: &str, message: &str, attempts: u32) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::str("failed")),
        ("class".into(), Json::str(class)),
        ("error".into(), Json::str(message)),
        ("attempts".into(), Json::count(u64::from(attempts))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_verbs() {
        let e = parse_request(r#"{"id":7,"verb":"ping"}"#).unwrap();
        assert_eq!(e.id, Some(7));
        assert_eq!(e.request, Request::Ping);
        assert_eq!(
            parse_request(r#"{"verb":"metrics"}"#).unwrap().request,
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"verb":"shutdown"}"#).unwrap().request,
            Request::Shutdown
        );
        let e = parse_request(
            r#"{"id":1,"verb":"verify","source":"PTX T\n...","model":"ptx-v6.0","bound":3,"timeout_ms":250,"budget":1000}"#,
        )
        .unwrap();
        match e.request {
            Request::Verify(v) => {
                assert_eq!(v.model.as_deref(), Some("ptx-v6.0"));
                assert_eq!(v.bound, 3);
                assert_eq!(v.timeout_ms, Some(250));
                assert_eq!(v.budget, Some(1000));
                assert!(v.source.starts_with("PTX T\n"));
            }
            other => panic!("expected verify, got {other:?}"),
        }
    }

    #[test]
    fn verify_defaults_apply() {
        let e = parse_request(r#"{"verb":"verify","source":"x"}"#).unwrap();
        match e.request {
            Request::Verify(v) => {
                assert_eq!(v.bound, 2);
                assert_eq!(v.model, None);
                assert_eq!(v.timeout_ms, None);
                assert_eq!(v.budget, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(e.id, None);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        assert!(parse_request(r#"{"verb":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"verb":"verify"}"#).is_err());
        assert!(parse_request(r#"{"verb":"verify","source":"x","bound":0}"#).is_err());
    }

    #[test]
    fn responses_echo_the_id() {
        let r = error_response(Some(42), "nope");
        assert_eq!(r.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(r.get("status").unwrap().as_str(), Some("error"));
        let r = rejected_response(None, "queue full");
        assert_eq!(r.get("id"), Some(&Json::Null));
        assert_eq!(r.get("error").unwrap().as_str(), Some("queue full"));
        let r = failed_response(Some(9), "panic", "injected fault", 3);
        assert_eq!(r.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(r.get("class").unwrap().as_str(), Some("panic"));
        assert_eq!(r.get("attempts").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn verify_accepts_portfolio_field() {
        use gpumc::gpumc_sat::ParallelPolicy;
        let policy = |line: &str| match parse_request(line).unwrap().request {
            Request::Verify(v) => v.portfolio,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x"}"#),
            ParallelPolicy::Off
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":4}"#),
            ParallelPolicy::Portfolio(4)
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":1}"#),
            ParallelPolicy::Off
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":"auto"}"#),
            ParallelPolicy::Auto
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":"off"}"#),
            ParallelPolicy::Off
        );
        assert!(parse_request(r#"{"verb":"verify","source":"x","portfolio":"many"}"#).is_err());
        assert!(parse_request(r#"{"verb":"verify","source":"x","portfolio":true}"#).is_err());
    }

    #[test]
    fn verify_accepts_engine_field() {
        use gpumc::EngineKind;
        let engine = |line: &str| match parse_request(line).unwrap().request {
            Request::Verify(v) => v.engine,
            other => panic!("{other:?}"),
        };
        assert_eq!(engine(r#"{"verb":"verify","source":"x"}"#), EngineKind::Sat);
        assert_eq!(
            engine(r#"{"verb":"verify","source":"x","engine":"dpor"}"#),
            EngineKind::Dpor
        );
        assert_eq!(
            engine(r#"{"verb":"verify","source":"x","engine":"alloy"}"#),
            EngineKind::Enumerate {
                straight_line_only: true
            }
        );
        let err = parse_request(r#"{"verb":"verify","source":"x","engine":"z3"}"#).unwrap_err();
        assert!(err.contains("unknown engine `z3`"), "err: {err}");
        assert!(parse_request(r#"{"verb":"verify","source":"x","engine":7}"#).is_err());
    }

    #[test]
    fn verify_accepts_resilience_fields() {
        let e = parse_request(
            r#"{"verb":"verify","source":"x","mem_budget_mb":256,"faults":"serve.worker:panic:once"}"#,
        )
        .unwrap();
        match e.request {
            Request::Verify(v) => {
                assert_eq!(v.mem_budget_mb, Some(256));
                assert_eq!(v.faults.as_deref(), Some("serve.worker:panic:once"));
            }
            other => panic!("{other:?}"),
        }
    }
}
