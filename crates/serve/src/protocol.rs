//! The JSON-lines request/response protocol.
//!
//! One request per line, one response per line, in either direction of
//! a TCP connection (or stdin/stdout with `--stdio`). Requests carry an
//! optional client-chosen `id` that is echoed verbatim in the response,
//! so a client may pipeline requests and match answers out of order —
//! workers answer in completion order, not submission order.
//!
//! ## Verbs
//!
//! ```json
//! {"id":1,"verb":"verify","source":"<litmus>","model":"ptx-v7.5","bound":2,"timeout_ms":5000}
//! {"id":2,"verb":"ping"}
//! {"id":3,"verb":"metrics"}
//! {"id":4,"verb":"shutdown"}
//! ```
//!
//! `verify` fields other than `source` are optional: `model` defaults
//! to the test dialect's default model, `bound` to 2, `engine` to
//! `sat` (also: `enumerate`, `alloy`, `dpor`), `timeout_ms` to the
//! server's `--default-timeout-ms`, `budget` (SAT conflicts) and
//! `mem_budget_mb` (solver memory) to unlimited. `faults` arms a
//! per-job fault-injection plan and requires `--enable-faults`.
//! `cache` (default `true`) lets a request opt out of the
//! content-addressed result cache with `"cache": false`.
//!
//! ## Hygiene
//!
//! Every request may carry `proto`, the protocol version number; a
//! request for a version this server does not speak is answered
//! `status:"error"` rather than half-interpreted, and every response
//! states its `proto`. Unknown top-level request fields are a
//! structured error, not silently ignored — a misspelled `"timeot_ms"`
//! must not silently verify with the default deadline.
//!
//! ## Responses
//!
//! Every response carries `id` (null if the request had none) and a
//! `status`: `done` (verdict reached), `unknown` (budget/deadline/
//! cancellation/memory — retrying with more budget is sound), `error`
//! (the request itself was bad), `rejected` (backpressure or shutdown —
//! resubmit later; the `reason` field distinguishes the two), `failed`
//! (the job crashed and exhausted its retries; the `class` field is one
//! of `panic`/`oom`/`timeout`), `shed` (admission control refused the
//! job before accepting it — overload or an unmeetable deadline;
//! resubmit when pressure subsides), plus `ok` for ping/metrics/
//! shutdown. A `done` response answered while the server is operating
//! degraded additionally carries a `degraded` block naming the active
//! ladder level (DESIGN.md §18); the block is omitted entirely at the
//! `full` level, so un-degraded responses are byte-identical to
//! pre-brownout builds. See DESIGN.md §13 for the complete failure
//! taxonomy.

use gpumc::FullOutcome;
use gpumc_fleet::cache::CachedVerdict;

use crate::json::Json;
use crate::overload::DegradeLevel;

/// The protocol version this build speaks. Part of the request digest,
/// so a wire-format change can never alias a cached verdict from an
/// older dialect.
pub const PROTOCOL_VERSION: u32 = 1;

/// A parsed request envelope: the echoed id plus the verb payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The verb payload.
    pub request: Request,
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Verify a litmus test (all three properties, incremental).
    Verify(VerifyRequest),
    /// Liveness probe.
    Ping,
    /// Snapshot the metrics registry.
    Metrics,
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

/// The payload of a `verify` request.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRequest {
    /// The litmus test source, either dialect.
    pub source: String,
    /// Model name (`ptx-v6.0`, `ptx-v7.5`, `vulkan`); `None` infers
    /// from the test dialect.
    pub model: Option<String>,
    /// Loop unrolling bound.
    pub bound: u32,
    /// Per-request deadline in milliseconds, measured from acceptance
    /// (queue wait counts). `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// SAT conflict budget per query.
    pub budget: Option<u64>,
    /// Whether to run CNF simplification on the encoding (default
    /// `true`; a `"simplify": false` field disables it).
    pub simplify: bool,
    /// SAT memory budget in MiB; exceeding it answers `unknown` instead
    /// of letting one query OOM the process.
    pub mem_budget_mb: Option<u64>,
    /// A `gpumc-fault` plan spec armed for this job only. Refused with
    /// `status:"error"` unless the server runs with `--enable-faults`.
    pub faults: Option<String>,
    /// Parallel solve strategy: a `"portfolio"` field carrying a worker
    /// count (`4`), `"auto"`, or `"off"` (the default when absent).
    pub portfolio: gpumc::gpumc_sat::ParallelPolicy,
    /// Verification engine (`sat`, `enumerate`, `alloy`, `dpor`);
    /// defaults to `sat` when absent.
    pub engine: gpumc::EngineKind,
    /// Whether the content-addressed result cache may serve (and
    /// record) this request. Default `true`; `"cache": false` forces a
    /// fresh verification.
    pub cache: bool,
}

/// Top-level fields every verb accepts.
const COMMON_FIELDS: &[&str] = &["id", "verb", "proto"];

/// Additional top-level fields the `verify` verb accepts.
const VERIFY_FIELDS: &[&str] = &[
    "source",
    "model",
    "bound",
    "timeout_ms",
    "budget",
    "simplify",
    "mem_budget_mb",
    "faults",
    "portfolio",
    "engine",
    "cache",
];

/// Rejects unknown top-level fields with a structured, named error.
fn check_fields(v: &Json, verb: &str, extra: &[&str]) -> Result<(), String> {
    let Json::Obj(pairs) = v else {
        return Err("request must be a JSON object".into());
    };
    for (key, _) in pairs {
        if !COMMON_FIELDS.contains(&key.as_str()) && !extra.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` for verb `{verb}`"));
        }
    }
    Ok(())
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, a missing/unknown verb,
/// an unsupported `proto`, unknown top-level fields, or missing
/// `verify` fields.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let v = Json::parse(line)?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = v.get("id").and_then(Json::as_u64);
    match v.get("proto") {
        None | Some(Json::Null) => {}
        Some(p) => {
            let p = p.as_u64().ok_or("`proto` must be an integer")?;
            if p != u64::from(PROTOCOL_VERSION) {
                return Err(format!(
                    "unsupported protocol version {p} (this server speaks {PROTOCOL_VERSION})"
                ));
            }
        }
    }
    let verb = v
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing `verb`")?;
    let request = match verb {
        "ping" | "metrics" | "shutdown" => {
            check_fields(&v, verb, &[])?;
            match verb {
                "ping" => Request::Ping,
                "metrics" => Request::Metrics,
                _ => Request::Shutdown,
            }
        }
        "verify" => {
            check_fields(&v, verb, VERIFY_FIELDS)?;
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("verify needs a `source` string")?
                .to_string();
            let bound = match v.get("bound") {
                None | Some(Json::Null) => 2,
                Some(b) => {
                    let b = b.as_u64().ok_or("`bound` must be a positive integer")?;
                    u32::try_from(b).map_err(|_| "`bound` out of range")?
                }
            };
            if bound == 0 {
                return Err("`bound` must be at least 1".into());
            }
            let portfolio = match v.get("portfolio") {
                None | Some(Json::Null) => gpumc::gpumc_sat::ParallelPolicy::Off,
                Some(Json::Num(_)) => {
                    let n = v
                        .get("portfolio")
                        .and_then(Json::as_u64)
                        .ok_or("`portfolio` must be a worker count, \"auto\", or \"off\"")?;
                    let n = u32::try_from(n).map_err(|_| "`portfolio` out of range")?;
                    gpumc::gpumc_sat::ParallelPolicy::parse(&n.to_string())?
                }
                Some(Json::Str(s)) => gpumc::gpumc_sat::ParallelPolicy::parse(s)?,
                Some(_) => {
                    return Err("`portfolio` must be a worker count, \"auto\", or \"off\"".into())
                }
            };
            let engine = match v.get("engine") {
                None | Some(Json::Null) => gpumc::EngineKind::Sat,
                Some(Json::Str(s)) => s.parse::<gpumc::EngineKind>()?,
                Some(_) => return Err("`engine` must be a string".into()),
            };
            Request::Verify(VerifyRequest {
                source,
                model: v.get("model").and_then(Json::as_str).map(str::to_string),
                bound,
                timeout_ms: v.get("timeout_ms").and_then(Json::as_u64),
                budget: v.get("budget").and_then(Json::as_u64),
                simplify: v.get("simplify").and_then(Json::as_bool).unwrap_or(true),
                mem_budget_mb: v.get("mem_budget_mb").and_then(Json::as_u64),
                faults: v.get("faults").and_then(Json::as_str).map(str::to_string),
                portfolio,
                engine,
                cache: v.get("cache").and_then(Json::as_bool).unwrap_or(true),
            })
        }
        other => return Err(format!("unknown verb `{other}`")),
    };
    Ok(Envelope { id, request })
}

fn id_json(id: Option<u64>) -> Json {
    id.map_or(Json::Null, Json::count)
}

/// The canonical wire name of an engine — the vocabulary the request
/// digest is built from (`gpumc_fleet::digest::canonical_engine`
/// accepts exactly these, so server and router digests agree).
pub fn engine_name(e: gpumc::EngineKind) -> &'static str {
    match e {
        gpumc::EngineKind::Sat => "sat",
        gpumc::EngineKind::Enumerate {
            straight_line_only: true,
        } => "alloy",
        gpumc::EngineKind::Enumerate {
            straight_line_only: false,
        } => "enumerate",
        gpumc::EngineKind::Dpor => "dpor",
    }
}

fn proto_json() -> Json {
    Json::count(u64::from(PROTOCOL_VERSION))
}

/// The one place the verdict object's shape is defined. Fresh
/// verifications come through [`verdict_json`] and cache hits through
/// [`cached_verdict_json`]; both funnel here, so a cached answer is
/// byte-identical to the verification that populated it.
fn verdict_fields(
    test_name: &str,
    reachable: bool,
    expectation: &str,
    liveness: &str,
    datarace: &str,
) -> Json {
    Json::Obj(vec![
        ("test".into(), Json::str(test_name)),
        ("reachable".into(), Json::Bool(reachable)),
        ("expectation".into(), Json::str(expectation)),
        ("liveness".into(), Json::str(liveness)),
        ("datarace".into(), Json::str(datarace)),
    ])
}

/// Reduces a completed verification to the cacheable verdict facts, in
/// protocol vocabulary.
pub fn cached_verdict(test_name: &str, o: &FullOutcome) -> CachedVerdict {
    CachedVerdict {
        test: test_name.to_string(),
        reachable: o.assertion.reachable,
        expectation: match o.assertion.satisfied_expectation {
            Some(true) => "holds",
            Some(false) => "fails",
            None => "none",
        }
        .to_string(),
        liveness: if o.liveness.violated {
            "violation"
        } else {
            "ok"
        }
        .to_string(),
        datarace: match &o.data_races {
            Some(d) if d.violated => "found",
            Some(_) => "none",
            None => "n/a",
        }
        .to_string(),
    }
}

/// The verdict object of a completed verification — the same facts the
/// batch CLI (`gpumc verify --all`) prints, as structured fields, so
/// server and CLI answers can be compared for byte-identity.
pub fn verdict_json(test_name: &str, o: &FullOutcome) -> Json {
    let v = cached_verdict(test_name, o);
    verdict_fields(
        &v.test,
        v.reachable,
        &v.expectation,
        &v.liveness,
        &v.datarace,
    )
}

/// The verdict object reconstructed from a cache entry.
pub fn cached_verdict_json(v: &CachedVerdict) -> Json {
    verdict_fields(
        &v.test,
        v.reachable,
        &v.expectation,
        &v.liveness,
        &v.datarace,
    )
}

/// The `degraded` block a response carries when the server answered it
/// while operating below the `full` ladder level.
fn degraded_json(level: DegradeLevel) -> Json {
    Json::Obj(vec![("level".into(), Json::str(level.name()))])
}

/// Appends a `degraded` block when `degraded` names a level below
/// `full`; `None` (and `Full`) leave the response byte-identical to a
/// pre-brownout build.
fn push_degraded(fields: &mut Vec<(String, Json)>, degraded: Option<DegradeLevel>) {
    match degraded {
        Some(level) if level != DegradeLevel::Full => {
            fields.push(("degraded".into(), degraded_json(level)));
        }
        _ => {}
    }
}

/// A `status: done` response served from the result cache. Carries the
/// same verdict object a fresh verification would, plus `"cached":true`
/// in place of the per-run phase/solver detail (which the cache
/// deliberately does not store — timings of a run that didn't happen
/// would be fiction). `degraded` names the active ladder level when the
/// server is browning out (omitted at `full`).
pub fn cached_response(
    id: Option<u64>,
    v: &CachedVerdict,
    wall_us: u64,
    degraded: Option<DegradeLevel>,
) -> Json {
    let mut fields = vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("done")),
        ("verdict".into(), cached_verdict_json(v)),
        ("cached".into(), Json::Bool(true)),
    ];
    push_degraded(&mut fields, degraded);
    fields.push(("time_us".into(), Json::count(wall_us)));
    Json::Obj(fields)
}

/// A successful (`status: done`) verify response. `degraded` names the
/// active brownout level (omitted at `full`).
pub fn verify_response(
    id: Option<u64>,
    test_name: &str,
    o: &FullOutcome,
    wall_us: u64,
    degraded: Option<DegradeLevel>,
) -> Json {
    let (conflicts, propagations) = o.queries.iter().fold((0u64, 0u64), |(c, p), q| {
        (c + q.stats.conflicts, p + q.stats.propagations)
    });
    let mut fields = vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("done")),
        ("verdict".into(), verdict_json(test_name, o)),
        (
            "phases".into(),
            Json::Obj(vec![
                ("compile_us".into(), Json::count(o.phases.compile_us)),
                ("bounds_us".into(), Json::count(o.phases.bounds_us)),
                ("encode_us".into(), Json::count(o.phases.encode_us)),
                ("solve_us".into(), Json::count(o.phases.solve_us)),
            ]),
        ),
        (
            "solver".into(),
            Json::Obj(vec![
                (
                    "vars".into(),
                    Json::count(o.assertion.stats.sat_vars as u64),
                ),
                (
                    "clauses".into(),
                    Json::count(o.assertion.stats.sat_clauses as u64),
                ),
                ("conflicts".into(), Json::count(conflicts)),
                ("propagations".into(), Json::count(propagations)),
            ]),
        ),
        (
            "simplify".into(),
            match &o.simplify {
                None => Json::Null,
                Some(sp) => Json::Obj(vec![
                    ("vars_before".into(), Json::count(sp.vars_before as u64)),
                    ("vars_after".into(), Json::count(sp.vars_after as u64)),
                    (
                        "clauses_before".into(),
                        Json::count(sp.clauses_before as u64),
                    ),
                    ("clauses_after".into(), Json::count(sp.clauses_after as u64)),
                    (
                        "literals_before".into(),
                        Json::count(sp.literals_before as u64),
                    ),
                    (
                        "literals_after".into(),
                        Json::count(sp.literals_after as u64),
                    ),
                    (
                        "vars_eliminated".into(),
                        Json::count(sp.vars_eliminated as u64),
                    ),
                    (
                        "equivs_substituted".into(),
                        Json::count(sp.equivs_substituted as u64),
                    ),
                    (
                        "clauses_subsumed".into(),
                        Json::count(sp.clauses_subsumed as u64),
                    ),
                    (
                        "clauses_strengthened".into(),
                        Json::count(sp.clauses_strengthened as u64),
                    ),
                    ("time_us".into(), Json::count(sp.time_us)),
                ]),
            },
        ),
        (
            "portfolio".into(),
            match &o.portfolio {
                None => Json::Null,
                Some(p) => Json::Obj(vec![
                    ("workers".into(), Json::count(u64::from(p.workers))),
                    (
                        "winner".into(),
                        p.winner.map_or(Json::Null, |w| Json::count(u64::from(w))),
                    ),
                    ("exported".into(), Json::count(p.exported)),
                    ("imported".into(), Json::count(p.imported)),
                    ("cube_fallback".into(), Json::Bool(p.cube_fallback)),
                    ("cubes".into(), Json::count(u64::from(p.cubes))),
                ]),
            },
        ),
        (
            "dpor".into(),
            match &o.assertion.stats.dpor {
                None => Json::Null,
                Some(d) => Json::Obj(vec![
                    ("explored".into(), Json::count(d.explored)),
                    ("consistent".into(), Json::count(d.consistent)),
                    ("pruned".into(), Json::count(d.pruned_total())),
                ]),
            },
        ),
    ];
    push_degraded(&mut fields, degraded);
    fields.push(("time_us".into(), Json::count(wall_us)));
    Json::Obj(fields)
}

/// A `status: unknown` response (deadline, cancellation, budget).
pub fn unknown_response(id: Option<u64>, reason: &str, wall_us: u64) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("unknown")),
        ("reason".into(), Json::str(reason)),
        ("time_us".into(), Json::count(wall_us)),
    ])
}

/// A `status: error` response (the request was unprocessable).
pub fn error_response(id: Option<u64>, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("error")),
        ("error".into(), Json::str(message)),
    ])
}

/// A `status: rejected` response: the job was not (or will not be)
/// started — `reason` is `"queue full"` for backpressure or
/// `"shutting down"` when the server is draining. Resubmitting later is
/// always safe.
pub fn rejected_response(id: Option<u64>, reason: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("rejected")),
        ("error".into(), Json::str(reason)),
    ])
}

/// A `status: shed` response: admission control refused the job before
/// accepting it — the server is at the `shed` ladder level, or the
/// deadline gate predicted the job's `timeout_ms` would already be
/// blown in the queue. The job never ran (and never will); resubmitting
/// once pressure subsides is always safe. Carries the `degraded` block
/// so clients can tell brownout shed from a deadline-gate shed at the
/// `full` level.
pub fn shed_response(id: Option<u64>, reason: &str, degraded: Option<DegradeLevel>) -> Json {
    let mut fields = vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("shed")),
        ("error".into(), Json::str(reason)),
    ];
    push_degraded(&mut fields, degraded);
    Json::Obj(fields)
}

/// A `status: failed` response: the job was accepted but crashed and
/// exhausted its retry policy. `class` categorizes the crash (`panic`,
/// `oom`, `timeout`); `attempts` is how many times the job ran.
pub fn failed_response(id: Option<u64>, class: &str, message: &str, attempts: u32) -> Json {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("proto".into(), proto_json()),
        ("status".into(), Json::str("failed")),
        ("class".into(), Json::str(class)),
        ("error".into(), Json::str(message)),
        ("attempts".into(), Json::count(u64::from(attempts))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_verbs() {
        let e = parse_request(r#"{"id":7,"verb":"ping"}"#).unwrap();
        assert_eq!(e.id, Some(7));
        assert_eq!(e.request, Request::Ping);
        assert_eq!(
            parse_request(r#"{"verb":"metrics"}"#).unwrap().request,
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"verb":"shutdown"}"#).unwrap().request,
            Request::Shutdown
        );
        let e = parse_request(
            r#"{"id":1,"verb":"verify","source":"PTX T\n...","model":"ptx-v6.0","bound":3,"timeout_ms":250,"budget":1000}"#,
        )
        .unwrap();
        match e.request {
            Request::Verify(v) => {
                assert_eq!(v.model.as_deref(), Some("ptx-v6.0"));
                assert_eq!(v.bound, 3);
                assert_eq!(v.timeout_ms, Some(250));
                assert_eq!(v.budget, Some(1000));
                assert!(v.source.starts_with("PTX T\n"));
            }
            other => panic!("expected verify, got {other:?}"),
        }
    }

    #[test]
    fn verify_defaults_apply() {
        let e = parse_request(r#"{"verb":"verify","source":"x"}"#).unwrap();
        match e.request {
            Request::Verify(v) => {
                assert_eq!(v.bound, 2);
                assert_eq!(v.model, None);
                assert_eq!(v.timeout_ms, None);
                assert_eq!(v.budget, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(e.id, None);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
        assert!(parse_request(r#"{"verb":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"verb":"verify"}"#).is_err());
        assert!(parse_request(r#"{"verb":"verify","source":"x","bound":0}"#).is_err());
    }

    #[test]
    fn responses_echo_the_id() {
        let r = error_response(Some(42), "nope");
        assert_eq!(r.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(r.get("status").unwrap().as_str(), Some("error"));
        let r = rejected_response(None, "queue full");
        assert_eq!(r.get("id"), Some(&Json::Null));
        assert_eq!(r.get("error").unwrap().as_str(), Some("queue full"));
        let r = failed_response(Some(9), "panic", "injected fault", 3);
        assert_eq!(r.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(r.get("class").unwrap().as_str(), Some("panic"));
        assert_eq!(r.get("attempts").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn verify_accepts_portfolio_field() {
        use gpumc::gpumc_sat::ParallelPolicy;
        let policy = |line: &str| match parse_request(line).unwrap().request {
            Request::Verify(v) => v.portfolio,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x"}"#),
            ParallelPolicy::Off
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":4}"#),
            ParallelPolicy::Portfolio(4)
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":1}"#),
            ParallelPolicy::Off
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":"auto"}"#),
            ParallelPolicy::Auto
        );
        assert_eq!(
            policy(r#"{"verb":"verify","source":"x","portfolio":"off"}"#),
            ParallelPolicy::Off
        );
        assert!(parse_request(r#"{"verb":"verify","source":"x","portfolio":"many"}"#).is_err());
        assert!(parse_request(r#"{"verb":"verify","source":"x","portfolio":true}"#).is_err());
    }

    #[test]
    fn verify_accepts_engine_field() {
        use gpumc::EngineKind;
        let engine = |line: &str| match parse_request(line).unwrap().request {
            Request::Verify(v) => v.engine,
            other => panic!("{other:?}"),
        };
        assert_eq!(engine(r#"{"verb":"verify","source":"x"}"#), EngineKind::Sat);
        assert_eq!(
            engine(r#"{"verb":"verify","source":"x","engine":"dpor"}"#),
            EngineKind::Dpor
        );
        assert_eq!(
            engine(r#"{"verb":"verify","source":"x","engine":"alloy"}"#),
            EngineKind::Enumerate {
                straight_line_only: true
            }
        );
        let err = parse_request(r#"{"verb":"verify","source":"x","engine":"z3"}"#).unwrap_err();
        assert!(err.contains("unknown engine `z3`"), "err: {err}");
        assert!(parse_request(r#"{"verb":"verify","source":"x","engine":7}"#).is_err());
    }

    #[test]
    fn unknown_fields_are_structured_errors() {
        let err = parse_request(r#"{"verb":"verify","source":"x","timeot_ms":250}"#).unwrap_err();
        assert!(
            err.contains("unknown field `timeot_ms`"),
            "must name the field: {err}"
        );
        let err = parse_request(r#"{"verb":"ping","bound":2}"#).unwrap_err();
        assert!(err.contains("unknown field `bound`"), "err: {err}");
        assert!(parse_request(r#"{"verb":"metrics","source":"x"}"#).is_err());
        // Non-object requests are named as such, not "missing verb".
        let err = parse_request("[1,2]").unwrap_err();
        assert!(err.contains("JSON object"), "err: {err}");
    }

    #[test]
    fn proto_is_validated_when_present() {
        assert!(parse_request(r#"{"verb":"ping","proto":1}"#).is_ok());
        assert!(
            parse_request(r#"{"verb":"ping"}"#).is_ok(),
            "proto is optional"
        );
        let err = parse_request(r#"{"verb":"ping","proto":2}"#).unwrap_err();
        assert!(err.contains("unsupported protocol version 2"), "err: {err}");
        assert!(parse_request(r#"{"verb":"ping","proto":"one"}"#).is_err());
    }

    #[test]
    fn responses_state_their_proto() {
        for r in [
            error_response(None, "x"),
            rejected_response(None, "x"),
            failed_response(None, "panic", "x", 1),
            unknown_response(None, "x", 5),
        ] {
            assert_eq!(r.get("proto").unwrap().as_u64(), Some(1));
        }
    }

    #[test]
    fn cache_field_parses_and_defaults_on() {
        let cached = |line: &str| match parse_request(line).unwrap().request {
            Request::Verify(v) => v.cache,
            other => panic!("{other:?}"),
        };
        assert!(cached(r#"{"verb":"verify","source":"x"}"#));
        assert!(!cached(r#"{"verb":"verify","source":"x","cache":false}"#));
        assert!(cached(r#"{"verb":"verify","source":"x","cache":true}"#));
    }

    #[test]
    fn engine_names_are_canonical_digest_vocabulary() {
        use gpumc::EngineKind;
        for e in [
            EngineKind::Sat,
            EngineKind::Dpor,
            EngineKind::Enumerate {
                straight_line_only: true,
            },
            EngineKind::Enumerate {
                straight_line_only: false,
            },
        ] {
            let name = engine_name(e);
            // The digest layer accepts the name as already-canonical...
            assert_eq!(
                gpumc_fleet::digest::canonical_engine(name),
                Ok(name),
                "engine {e:?}"
            );
            // ...and parsing it back yields the same engine.
            assert_eq!(name.parse::<EngineKind>(), Ok(e), "engine {e:?}");
        }
    }

    #[test]
    fn cached_response_reuses_the_verdict_shape() {
        let v = CachedVerdict {
            test: "MP".into(),
            reachable: true,
            expectation: "fails".into(),
            liveness: "ok".into(),
            datarace: "n/a".into(),
        };
        let r = cached_response(Some(3), &v, 12, None);
        assert_eq!(r.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(r.get("cached").unwrap().as_bool(), Some(true));
        let verdict = r.get("verdict").unwrap();
        assert_eq!(
            verdict.to_string(),
            r#"{"test":"MP","reachable":true,"expectation":"fails","liveness":"ok","datarace":"n/a"}"#,
        );
    }

    #[test]
    fn shed_response_names_the_level() {
        let r = shed_response(Some(5), "overloaded", Some(DegradeLevel::Shed));
        assert_eq!(r.get("status").unwrap().as_str(), Some("shed"));
        assert_eq!(r.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(
            r.get("degraded").unwrap().get("level").unwrap().as_str(),
            Some("shed")
        );
        // A deadline-gate shed at the full level omits the block.
        let r = shed_response(None, "deadline unmeetable", Some(DegradeLevel::Full));
        assert_eq!(r.get("degraded"), None);
        assert_eq!(r.get("proto").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn degraded_block_is_omitted_at_full() {
        let v = CachedVerdict {
            test: "SB".into(),
            reachable: false,
            expectation: "holds".into(),
            liveness: "ok".into(),
            datarace: "none".into(),
        };
        let at_full = cached_response(None, &v, 9, Some(DegradeLevel::Full));
        let unstated = cached_response(None, &v, 9, None);
        assert_eq!(at_full.to_string(), unstated.to_string());
        let browned = cached_response(None, &v, 9, Some(DegradeLevel::CacheOnly));
        assert_eq!(
            browned
                .get("degraded")
                .unwrap()
                .get("level")
                .unwrap()
                .as_str(),
            Some("cache-only")
        );
        // The block sits before `time_us`, so the response still ends
        // with the timing field like every other `done` answer.
        assert!(browned.to_string().ends_with("}"));
        assert!(browned
            .to_string()
            .contains(r#""degraded":{"level":"cache-only"},"time_us""#));
    }

    #[test]
    fn verify_accepts_resilience_fields() {
        let e = parse_request(
            r#"{"verb":"verify","source":"x","mem_budget_mb":256,"faults":"serve.worker:panic:once"}"#,
        )
        .unwrap();
        match e.request {
            Request::Verify(v) => {
                assert_eq!(v.mem_budget_mb, Some(256));
                assert_eq!(v.faults.as_deref(), Some("serve.worker:panic:once"));
            }
            other => panic!("{other:?}"),
        }
    }
}
