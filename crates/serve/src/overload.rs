//! Admission control and graceful degradation (brownout) for the
//! verification daemon.
//!
//! Under overload the server walks a *degradation ladder* instead of
//! falling over (DESIGN.md §18):
//!
//! ```text
//!   full ──► cache-only ──► sequential ──► shed
//! ```
//!
//! * **full** — normal operation.
//! * **cache-only** — the content-addressed result cache answers
//!   wherever it can, *including* requests that opted out with
//!   `"cache": false` (a stale-tolerant answer beats no answer; the
//!   response carries a `degraded` block saying so).
//! * **sequential** — additionally, portfolio solving is downgraded to
//!   a single sequential solver per job: under pressure, N× CPU fan-out
//!   per request is the first luxury to go.
//! * **shed** — new verify work is refused with `status:"shed"`; only
//!   cache hits are still answered. A shed request was never accepted,
//!   so resubmitting later is always safe.
//!
//! The ladder is driven by *queue pressure* (occupancy over capacity)
//! with hysteresis: rising pressure engages a level immediately, but a
//! level disengages only when pressure falls a margin *below* its
//! engage threshold, so the server cannot flap across a threshold at
//! queue-noise frequency.
//!
//! Orthogonally, a *deadline admission gate* predicts each job's
//! completion time from the scheduler's queued cost and an EWMA of
//! observed service time per unit cost; a job whose deadline would
//! already be blown in the queue is shed at the door rather than
//! accepted, timed out, and answered `unknown` after burning a worker.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The degradation ladder, least to most degraded. Ordering is
/// meaningful: `level >= Sequential` means "sequential *and* cache-only
/// measures are active".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DegradeLevel {
    /// Normal operation.
    Full = 0,
    /// Serve from cache wherever possible, even past `"cache":false`.
    CacheOnly = 1,
    /// Additionally force portfolio solving down to sequential.
    Sequential = 2,
    /// Refuse new verify work (`status:"shed"`); cache hits still serve.
    Shed = 3,
}

impl DegradeLevel {
    /// The wire name used in `degraded` blocks, metrics, and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Full => "full",
            DegradeLevel::CacheOnly => "cache-only",
            DegradeLevel::Sequential => "sequential",
            DegradeLevel::Shed => "shed",
        }
    }

    /// Parses a wire name (the CLI's `--degrade-level` values).
    ///
    /// # Errors
    ///
    /// A message listing the valid names.
    pub fn parse(s: &str) -> Result<DegradeLevel, String> {
        match s {
            "full" => Ok(DegradeLevel::Full),
            "cache-only" => Ok(DegradeLevel::CacheOnly),
            "sequential" => Ok(DegradeLevel::Sequential),
            "shed" => Ok(DegradeLevel::Shed),
            other => Err(format!(
                "unknown degrade level `{other}` (expected full, cache-only, sequential, or shed)"
            )),
        }
    }

    fn from_u8(v: u8) -> DegradeLevel {
        match v {
            0 => DegradeLevel::Full,
            1 => DegradeLevel::CacheOnly,
            2 => DegradeLevel::Sequential,
            _ => DegradeLevel::Shed,
        }
    }
}

/// Queue-pressure thresholds (fractions of queue capacity) at which
/// each ladder level engages, plus the hysteresis margin for falling
/// back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Pressure at which `cache-only` engages.
    pub cache_only_at: f64,
    /// Pressure at which `sequential` engages.
    pub sequential_at: f64,
    /// Pressure at which `shed` engages (the high-water mark).
    pub shed_at: f64,
    /// A level disengages only when pressure drops below its engage
    /// threshold minus this margin.
    pub hysteresis: f64,
}

impl Default for OverloadPolicy {
    fn default() -> OverloadPolicy {
        OverloadPolicy {
            cache_only_at: 0.60,
            sequential_at: 0.75,
            shed_at: 0.90,
            hysteresis: 0.10,
        }
    }
}

impl OverloadPolicy {
    fn engage_threshold(&self, level: DegradeLevel) -> f64 {
        match level {
            DegradeLevel::Full => 0.0,
            DegradeLevel::CacheOnly => self.cache_only_at,
            DegradeLevel::Sequential => self.sequential_at,
            DegradeLevel::Shed => self.shed_at,
        }
    }

    /// The level raw `pressure` maps to, ignoring hysteresis.
    fn target(&self, pressure: f64) -> DegradeLevel {
        if pressure >= self.shed_at {
            DegradeLevel::Shed
        } else if pressure >= self.sequential_at {
            DegradeLevel::Sequential
        } else if pressure >= self.cache_only_at {
            DegradeLevel::CacheOnly
        } else {
            DegradeLevel::Full
        }
    }
}

/// One hysteresis step: where the ladder moves from `current` under
/// `pressure`. Rising is immediate; falling requires pressure below the
/// current level's engage threshold minus the hysteresis margin.
pub fn next_level(current: DegradeLevel, pressure: f64, policy: &OverloadPolicy) -> DegradeLevel {
    let target = policy.target(pressure);
    if target >= current || pressure < policy.engage_threshold(current) - policy.hysteresis {
        target
    } else {
        current
    }
}

/// Shared overload state: the active ladder level plus the service-time
/// model feeding the deadline admission gate. Lock-free; sampled on
/// every dispatch.
#[derive(Debug)]
pub struct Overload {
    policy: OverloadPolicy,
    /// Pinned level (`--degrade-level`); `u8::MAX` means unpinned.
    force: Option<DegradeLevel>,
    level: AtomicU8,
    /// EWMA of observed service nanoseconds per unit predicted cost;
    /// `0` means "no observation yet" and disables deadline admission
    /// (an unseeded model must not shed real work on a guess).
    ns_per_cost: AtomicU64,
}

impl Overload {
    pub fn new(policy: OverloadPolicy, force: Option<DegradeLevel>) -> Overload {
        Overload {
            policy,
            force,
            level: AtomicU8::new(force.unwrap_or(DegradeLevel::Full) as u8),
            ns_per_cost: AtomicU64::new(0),
        }
    }

    /// The active ladder level.
    pub fn level(&self) -> DegradeLevel {
        DegradeLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Re-evaluates the ladder against current queue occupancy and
    /// returns the (possibly new) level. A pinned level never moves.
    pub fn update(&self, queue_len: usize, queue_capacity: usize) -> DegradeLevel {
        if let Some(pinned) = self.force {
            return pinned;
        }
        let pressure = queue_len as f64 / queue_capacity.max(1) as f64;
        loop {
            let current = self.level.load(Ordering::Relaxed);
            let next = next_level(DegradeLevel::from_u8(current), pressure, &self.policy);
            if next as u8 == current {
                return next;
            }
            if self
                .level
                .compare_exchange(current, next as u8, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return next;
            }
        }
    }

    /// Feeds one completed job's service time into the EWMA
    /// (`new = (7·old + observed) / 8`; the first observation seeds it).
    pub fn observe_service(&self, cost: u64, service_ns: u64) {
        let obs = (service_ns / cost.max(1)).max(1);
        loop {
            let old = self.ns_per_cost.load(Ordering::Relaxed);
            let new = if old == 0 { obs } else { (7 * old + obs) / 8 };
            if self
                .ns_per_cost
                .compare_exchange(old, new, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// The model's current estimate, for metrics. `0` = unseeded.
    pub fn ns_per_cost(&self) -> u64 {
        self.ns_per_cost.load(Ordering::Relaxed)
    }

    /// Predicted wall milliseconds until a job of `job_cost` completes,
    /// given `queued_cost` already ahead of it spread over `workers`.
    /// `None` until the model has seen at least one real job.
    pub fn predicted_completion_ms(
        &self,
        queued_cost: u64,
        job_cost: u64,
        workers: usize,
    ) -> Option<u64> {
        let npc = self.ns_per_cost.load(Ordering::Relaxed);
        if npc == 0 {
            return None;
        }
        let total = queued_cost.saturating_add(job_cost);
        let ns = total
            .saturating_mul(npc)
            .checked_div(workers.max(1) as u64)
            .unwrap_or(u64::MAX);
        Some(ns / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_rises_immediately_with_pressure() {
        let p = OverloadPolicy::default();
        assert_eq!(next_level(DegradeLevel::Full, 0.2, &p), DegradeLevel::Full);
        assert_eq!(
            next_level(DegradeLevel::Full, 0.60, &p),
            DegradeLevel::CacheOnly
        );
        assert_eq!(
            next_level(DegradeLevel::Full, 0.80, &p),
            DegradeLevel::Sequential,
            "rising skips intermediate rungs"
        );
        assert_eq!(next_level(DegradeLevel::Full, 0.95, &p), DegradeLevel::Shed);
    }

    #[test]
    fn ladder_falls_only_past_the_hysteresis_margin() {
        let p = OverloadPolicy::default();
        // Shed engaged at 0.90: pressure just below the threshold is not
        // enough to disengage...
        assert_eq!(next_level(DegradeLevel::Shed, 0.85, &p), DegradeLevel::Shed);
        // ...but below 0.90 − 0.10 it falls to wherever pressure maps.
        assert_eq!(
            next_level(DegradeLevel::Shed, 0.79, &p),
            DegradeLevel::Sequential
        );
        assert_eq!(next_level(DegradeLevel::Shed, 0.10, &p), DegradeLevel::Full);
        assert_eq!(
            next_level(DegradeLevel::CacheOnly, 0.55, &p),
            DegradeLevel::CacheOnly,
            "inside the margin: hold"
        );
        assert_eq!(
            next_level(DegradeLevel::CacheOnly, 0.49, &p),
            DegradeLevel::Full
        );
    }

    #[test]
    fn pinned_level_never_moves() {
        let o = Overload::new(OverloadPolicy::default(), Some(DegradeLevel::Shed));
        assert_eq!(o.update(0, 64), DegradeLevel::Shed);
        assert_eq!(o.level(), DegradeLevel::Shed);
    }

    #[test]
    fn update_tracks_queue_occupancy() {
        let o = Overload::new(OverloadPolicy::default(), None);
        assert_eq!(o.update(10, 64), DegradeLevel::Full);
        assert_eq!(o.update(62, 64), DegradeLevel::Shed);
        // Hysteresis: holding at 55/64 ≈ 0.86 keeps shed engaged.
        assert_eq!(o.update(55, 64), DegradeLevel::Shed);
        assert_eq!(o.update(0, 64), DegradeLevel::Full);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let o = Overload::new(OverloadPolicy::default(), None);
        assert_eq!(o.predicted_completion_ms(100, 10, 2), None, "unseeded");
        o.observe_service(10, 8_000); // 800 ns/cost seeds the model
        assert_eq!(o.ns_per_cost(), 800);
        o.observe_service(10, 80_000); // 8000 ns/cost observation
        assert_eq!(o.ns_per_cost(), (7 * 800 + 8000) / 8);
    }

    #[test]
    fn predicted_completion_spreads_over_workers() {
        let o = Overload::new(OverloadPolicy::default(), None);
        o.observe_service(1, 1_000_000); // 1 ms per unit cost
        assert_eq!(o.predicted_completion_ms(90, 10, 1), Some(100));
        assert_eq!(o.predicted_completion_ms(90, 10, 4), Some(25));
    }

    #[test]
    fn level_names_roundtrip() {
        for l in [
            DegradeLevel::Full,
            DegradeLevel::CacheOnly,
            DegradeLevel::Sequential,
            DegradeLevel::Shed,
        ] {
            assert_eq!(DegradeLevel::parse(l.name()), Ok(l));
        }
        assert!(DegradeLevel::parse("browned-out").is_err());
    }
}
