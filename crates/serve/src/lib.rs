//! `gpumc-serve` — the persistent verification service.
//!
//! gpumc started as a batch CLI: one process per request, cold caches
//! every time, and the only resource limit anywhere was a conflict
//! budget that *panicked* on exhaustion. This crate turns the pipeline
//! into a long-running daemon:
//!
//! * a JSON-lines request/response protocol over TCP (or stdio), see
//!   [`protocol`];
//! * a bounded job queue with non-blocking backpressure ([`queue`]);
//! * a worker pool sharing the warm caches — parsed models
//!   (`gpumc_models::load_shared`) and relation-analysis bounds
//!   (`gpumc_encode::BoundsMemo`) — across requests;
//! * per-request deadlines riding the cooperative cancellation layer in
//!   `gpumc-sat` (`CancelToken`), so a timed-out request yields
//!   `status: unknown` and the worker lives on;
//! * a metrics registry ([`metrics`]) exposed through the `metrics`
//!   verb;
//! * panic isolation with supervised retry: a job that panics is caught
//!   in the worker, retried with backoff, and ultimately answered
//!   `status: "failed"` with an error class — see the supervision notes
//!   in [`server`] and the failure taxonomy in DESIGN.md §13;
//! * admission control and graceful degradation under overload
//!   ([`overload`]): a deadline-aware load-shed gate ahead of the
//!   scheduler plus a brownout ladder (full → cache-only → sequential
//!   → shed), exported in responses as a `degraded` block — DESIGN.md
//!   §18.
//!
//! The JSON plumbing ([`json`]) is hand-rolled: the offline dependency
//! set has no serde, and the protocol needs very little. It lives in
//! `gpumc-fleet` (re-exported here) so the fleet router and persistent
//! cache store can speak the wire format without a server dependency.
//! The fleet layer itself — content-addressed result cache, cost-aware
//! scheduling, sharded routing — is described in DESIGN.md §16.

pub mod client;
pub mod metrics;
pub mod overload;
pub mod protocol;
pub mod queue;
pub mod server;

pub use gpumc_fleet::json;

pub use client::Client;
pub use json::Json;
pub use metrics::Metrics;
pub use overload::{next_level, DegradeLevel, Overload, OverloadPolicy};
pub use protocol::{
    parse_request, verdict_json, Envelope, Request, VerifyRequest, PROTOCOL_VERSION,
};
pub use queue::{JobQueue, PushError};
pub use server::{RetryPolicy, Server, ServerConfig, ShutdownHandle, WORKER_HARD_KILL_POINT};
