//! A bounded MPMC job queue with non-blocking backpressure.
//!
//! Connection threads call [`JobQueue::try_push`], which never blocks:
//! a full queue hands the job straight back so the caller can answer
//! the client with an immediate rejection instead of stalling the whole
//! connection behind slow verifications. Workers block in
//! [`JobQueue::pop`]. Closing the queue ([`JobQueue::close`]) wakes all
//! workers; pops then drain whatever was already accepted — the
//! graceful-shutdown contract is "every accepted job gets an answer" —
//! and return `None` only once the queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. See the module docs.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` jobs; the job is handed back.
    Full(T),
    /// [`JobQueue::close`] was called; the job is handed back.
    Closed(T),
}

impl<T> JobQueue<T> {
    /// Creates a queue that accepts at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; a full or closed queue refuses.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed(job));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        s.items.push_back(job);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job. `None` means the queue is closed *and*
    /// fully drained — the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = s.items.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap();
        }
    }

    /// Stops accepting new jobs and wakes every blocked worker. Already
    /// accepted jobs remain poppable (drain semantics).
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Takes every job still queued, without blocking. The supervisor's
    /// last resort: if the workers are gone (all panicked at shutdown),
    /// the leftover jobs are handed back here so each can be answered
    /// `rejected` instead of silently dropped.
    pub fn drain_now(&self) -> Vec<T> {
        let mut s = self.state.lock().unwrap();
        s.items.drain(..).collect()
    }

    /// Jobs currently waiting (diagnostics / the `queue_depth` gauge).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_and_returns_the_job() {
        let q = JobQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full(job)) => assert_eq!(job, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(matches!(q.try_push(2), Err(PushError::Closed(2))));
        assert_eq!(q.pop(), Some(1), "accepted jobs drain after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn shutdown_race_loses_no_job() {
        // Regression: a close racing concurrent pushes must leave every
        // job accounted for — either accepted (and drainable) or handed
        // back to its producer for a `rejected` reply. A job that is
        // neither is a silently dropped request.
        for round in 0..50 {
            let q = Arc::new(JobQueue::new(4));
            let accepted = Arc::new(Mutex::new(Vec::new()));
            let bounced = Arc::new(Mutex::new(Vec::new()));
            std::thread::scope(|s| {
                for p in 0..3u32 {
                    let q = Arc::clone(&q);
                    let accepted = Arc::clone(&accepted);
                    let bounced = Arc::clone(&bounced);
                    s.spawn(move || {
                        for i in 0..20u32 {
                            let job = p * 100 + i;
                            match q.try_push(job) {
                                Ok(()) => accepted.lock().unwrap().push(job),
                                Err(PushError::Full(j) | PushError::Closed(j)) => {
                                    bounced.lock().unwrap().push(j);
                                }
                            }
                        }
                    });
                }
                // Close at a pseudo-random moment mid-burst.
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for _ in 0..round % 7 {
                        std::thread::yield_now();
                    }
                    q.close();
                });
            });
            let mut drained = q.drain_now();
            assert!(q.is_closed());
            assert_eq!(q.pop(), None, "drain_now leaves nothing poppable");
            let mut acc = accepted.lock().unwrap().clone();
            drained.sort_unstable();
            acc.sort_unstable();
            assert_eq!(drained, acc, "every accepted job is drainable");
            assert_eq!(
                drained.len() + bounced.lock().unwrap().len(),
                60,
                "every job is either accepted or handed back"
            );
        }
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(JobQueue::new(8));
        let total = 400u32;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        // Consumers run unscoped so they can outlive the producer scope;
        // they exit when pop() observes close + empty.
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while let Some(v) = q.pop() {
                        consumed.lock().unwrap().push(v);
                    }
                })
            })
            .collect();
        std::thread::scope(|s| {
            for p in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..total / 4 {
                        // Spin on backpressure: producers in this test
                        // must deliver everything.
                        let mut job = p * 1000 + i;
                        loop {
                            match q.try_push(job) {
                                Ok(()) => break,
                                Err(PushError::Full(j)) => {
                                    job = j;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                });
            }
        });
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = consumed.lock().unwrap().clone();
        got.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|p| (0..total / 4).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
