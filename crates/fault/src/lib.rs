//! Deterministic fault injection for the verification stack.
//!
//! The stack (SAT solver, simplifier, encoder, serve workers) declares
//! named *injection points*; a [`FaultPlan`] arms a subset of them with
//! a [`FaultKind`] each. Probe a point with [`hit`] — it returns `None`
//! when the point is unarmed, executes `panic` / `delay_ms` in place,
//! and hands `spurious_unknown` / `alloc_spike` back to the call site
//! as a [`FaultSignal`] for layer-appropriate interpretation (a solver
//! answers `Unknown`, an encoder aborts with a classified error, and so
//! on).
//!
//! Triggers are **deterministic**: each rule carries a seed and a
//! per-rule hit counter, and whether the n-th hit fires is a pure
//! function of `(seed, n, probability)`. Re-running a test with the
//! same plan replays the same faults, which is what makes differential
//! gates (`tests/fault_matrix.rs`) possible.
//!
//! Everything is inert by default: with no plan installed, [`hit`] is a
//! single relaxed atomic load. Plans come from the `GPUMC_FAULTS`
//! environment variable (opt-in at process start, intended for tests,
//! benches, and chaos drills), from [`install_global`], or from a
//! thread-scoped [`scoped`] guard (how a serve worker arms a plan for
//! exactly one job).
//!
//! ## Spec grammar
//!
//! ```text
//! spec  := rule (',' rule)*
//! rule  := point ':' kind (':' integer)? (':' option)*
//! kind  := panic | delay_ms | alloc_spike | spurious_unknown
//! option:= p=<float in (0,1]> | seed=<u64> | once
//! ```
//!
//! The integer argument is milliseconds for `delay_ms` and MiB for
//! `alloc_spike`. Examples:
//!
//! ```text
//! GPUMC_FAULTS='sat.conflict:spurious_unknown:once'
//! GPUMC_FAULTS='serve.worker:panic:p=0.1:seed=42,encode.build:delay_ms:5'
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The catalog of injection points wired into the stack.
pub mod points {
    /// The CDCL search loop, probed on each conflict.
    pub const SAT_CONFLICT: &str = "sat.conflict";
    /// The CNF simplifier, probed between passes.
    pub const SAT_SIMPLIFY: &str = "sat.simplify";
    /// The encoder, probed between build stages.
    pub const ENCODE_BUILD: &str = "encode.build";
    /// A serve worker, probed at job start.
    pub const SERVE_WORKER: &str = "serve.worker";
    /// The DPOR engine, probed per complete candidate execution.
    pub const DPOR_EXPLORE: &str = "dpor.explore";
    /// The fleet router, probed before each shard connection; a firing
    /// rule simulates a transport failure (node death).
    pub const ROUTE_TRANSPORT: &str = "route.transport";
    /// The fleet router, probed after connecting; arm with `delay_ms`
    /// to simulate a stalled link (exercises hedging and deadlines).
    pub const ROUTE_STALL: &str = "route.stall_ms";
    /// The serve dispatch gate, probed per verify request; a firing
    /// rule forces admission control to shed the request.
    pub const SERVE_OVERLOAD: &str = "serve.overload";
    /// Every wired point, for matrix-style tests.
    pub const ALL: &[&str] = &[
        SAT_CONFLICT,
        SAT_SIMPLIFY,
        ENCODE_BUILD,
        SERVE_WORKER,
        DPOR_EXPLORE,
        ROUTE_TRANSPORT,
        ROUTE_STALL,
        SERVE_OVERLOAD,
    ];
}

/// What an armed injection point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the injection point (exercises isolation/retry).
    Panic,
    /// Sleep this many milliseconds (exercises deadlines).
    DelayMs(u64),
    /// Pretend this many bytes were allocated (exercises mem budgets).
    AllocSpike(usize),
    /// Report an injected inconclusive result (exercises the `unknown`
    /// path without burning budget).
    SpuriousUnknown,
}

/// A fault the call site must interpret itself; `panic` and `delay_ms`
/// never reach the caller — [`hit`] executes them in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSignal {
    /// Abandon the current phase and report an injected `unknown`.
    SpuriousUnknown,
    /// Account this many bytes against the caller's memory budget.
    AllocSpike(usize),
}

/// One armed injection point with its deterministic trigger state.
#[derive(Debug)]
pub struct FaultRule {
    /// Which injection point this rule arms.
    pub point: String,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Firing probability in (0, 1]; 1.0 fires on every hit.
    pub prob: f64,
    /// Seed for the deterministic per-hit trigger.
    pub seed: u64,
    /// Fire at most once, then disarm.
    pub once: bool,
    hits: AtomicU64,
    fired: AtomicU64,
}

impl FaultRule {
    fn new(point: String, kind: FaultKind) -> Self {
        FaultRule {
            point,
            kind,
            prob: 1.0,
            seed: 0,
            once: false,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }

    /// Decides whether the next hit of this rule fires, advancing the
    /// hit counter. Pure in `(seed, hit index, prob)` aside from the
    /// counters themselves.
    fn fires(&self) -> bool {
        let n = self.hits.fetch_add(1, Ordering::Relaxed);
        if self.once && self.fired.load(Ordering::Relaxed) > 0 {
            return false;
        }
        let fire = if self.prob >= 1.0 {
            true
        } else {
            // Map a splitmix64 draw to [0,1) and compare.
            let draw = splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < self.prob
        };
        if fire {
            // `once` tolerates the benign race: two threads hitting the
            // first trigger simultaneously is still "at most a couple",
            // and all in-tree uses probe from a single thread.
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }
}

/// Counter snapshot for one rule: `(point, hits, fired)`.
pub type RuleCount = (String, u64, u64);

/// A set of armed injection points, shareable across threads.
///
/// Counters live in the plan, so re-arming the *same* `Arc<FaultPlan>`
/// (as a retried serve job does) continues the hit sequence instead of
/// restarting it — a `panic:once` rule panics the first attempt and
/// lets the retry through.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses a comma-separated fault spec (see the module docs for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed rule.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            rules.push(parse_rule(raw)?);
        }
        if rules.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(FaultPlan { rules })
    }

    /// Builds a single-rule plan programmatically (tests mostly).
    #[must_use]
    pub fn single(point: &str, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            rules: vec![FaultRule::new(point.to_string(), kind)],
        }
    }

    /// Sets the probability of every rule (builder-style, for tests).
    #[must_use]
    pub fn with_prob(mut self, prob: f64) -> FaultPlan {
        for r in &mut self.rules {
            r.prob = prob;
        }
        self
    }

    /// Sets the seed of every rule (builder-style, for tests).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        for r in &mut self.rules {
            r.seed = seed;
        }
        self
    }

    /// Marks every rule fire-at-most-once (builder-style, for tests).
    #[must_use]
    pub fn once(mut self) -> FaultPlan {
        for r in &mut self.rules {
            r.once = true;
        }
        self
    }

    /// The first armed kind at `point` that decides to fire, if any.
    fn decide(&self, point: &str) -> Option<FaultKind> {
        self.rules
            .iter()
            .filter(|r| r.point == point)
            .find(|r| r.fires())
            .map(|r| r.kind)
    }

    /// Per-rule `(point, hits, fired)` counters.
    pub fn counters(&self) -> Vec<RuleCount> {
        self.rules
            .iter()
            .map(|r| {
                (
                    r.point.clone(),
                    r.hits.load(Ordering::Relaxed),
                    r.fired.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total number of fires across all rules.
    pub fn total_fired(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| r.fired.load(Ordering::Relaxed))
            .sum()
    }
}

fn parse_rule(raw: &str) -> Result<FaultRule, String> {
    let mut parts = raw.split(':');
    let point = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or_else(|| format!("fault rule `{raw}`: missing injection point"))?;
    let kind_name = parts
        .next()
        .ok_or_else(|| format!("fault rule `{raw}`: missing kind"))?;
    let mut rest: Vec<&str> = parts.collect();

    // `delay_ms` and `alloc_spike` take a leading integer argument.
    let mut take_arg = |default: u64| -> Result<u64, String> {
        if let Some(first) = rest.first() {
            if let Ok(n) = first.parse::<u64>() {
                rest.remove(0);
                return Ok(n);
            }
        }
        Ok(default)
    };
    let kind = match kind_name {
        "panic" => FaultKind::Panic,
        "delay_ms" => FaultKind::DelayMs(take_arg(10)?),
        "alloc_spike" => {
            let mib = take_arg(64)?;
            let bytes = usize::try_from(mib.saturating_mul(1 << 20))
                .map_err(|_| format!("fault rule `{raw}`: alloc_spike size out of range"))?;
            FaultKind::AllocSpike(bytes)
        }
        "spurious_unknown" => FaultKind::SpuriousUnknown,
        other => return Err(format!("fault rule `{raw}`: unknown kind `{other}`")),
    };

    let mut rule = FaultRule::new(point.to_string(), kind);
    for opt in rest {
        if let Some(p) = opt.strip_prefix("p=") {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("fault rule `{raw}`: bad probability `{opt}`"))?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("fault rule `{raw}`: probability must be in (0,1]"));
            }
            rule.prob = p;
        } else if let Some(s) = opt.strip_prefix("seed=") {
            rule.seed = s
                .parse()
                .map_err(|_| format!("fault rule `{raw}`: bad seed `{opt}`"))?;
        } else if opt == "once" {
            rule.once = true;
        } else {
            return Err(format!("fault rule `{raw}`: unknown option `{opt}`"));
        }
    }
    Ok(rule)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Count of installed plans anywhere in the process; the [`hit`] fast
/// path is one relaxed load of this.
static ACTIVE_PLANS: AtomicUsize = AtomicUsize::new(0);

fn global_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

thread_local! {
    /// Stack of thread-scoped plans; the innermost shadows the global.
    static SCOPED: RefCell<Vec<Arc<FaultPlan>>> = const { RefCell::new(Vec::new()) };
}

/// Installs a process-wide plan, replacing any previous one.
pub fn install_global(plan: Arc<FaultPlan>) {
    let mut slot = global_slot().lock().unwrap_or_else(|e| e.into_inner());
    if slot.replace(plan).is_none() {
        ACTIVE_PLANS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Removes the process-wide plan, returning it if one was installed.
pub fn clear_global() -> Option<Arc<FaultPlan>> {
    let mut slot = global_slot().lock().unwrap_or_else(|e| e.into_inner());
    let prev = slot.take();
    if prev.is_some() {
        ACTIVE_PLANS.fetch_sub(1, Ordering::Relaxed);
    }
    prev
}

/// Installs a global plan from the `GPUMC_FAULTS` environment variable.
/// Returns `Ok(false)` when the variable is unset (the production
/// default: injection stays fully inert).
///
/// # Errors
///
/// The parse error for a malformed spec.
pub fn install_global_from_env() -> Result<bool, String> {
    match std::env::var("GPUMC_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install_global(Arc::new(FaultPlan::parse(&spec)?));
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// RAII guard for a thread-scoped plan; dropping it disarms the plan.
#[derive(Debug)]
pub struct ScopedPlan {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Arms `plan` for the current thread until the returned guard drops.
/// Scoped plans shadow the global plan and nest (innermost wins).
#[must_use = "the plan disarms when the guard drops"]
pub fn scoped(plan: Arc<FaultPlan>) -> ScopedPlan {
    SCOPED.with(|s| s.borrow_mut().push(plan));
    ACTIVE_PLANS.fetch_add(1, Ordering::Relaxed);
    ScopedPlan {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ScopedPlan {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
        ACTIVE_PLANS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Returns the plan the *current thread* would consult on the next
/// [`hit`]: the innermost scoped plan if one is armed, else the global
/// plan. Scoped plans live in a thread-local, so worker threads spawned
/// by a parallel solve do not inherit them automatically; the spawner
/// captures `current_plan()` before forking and re-arms it with
/// [`scoped`] inside each worker so injected faults reach every racer.
pub fn current_plan() -> Option<Arc<FaultPlan>> {
    if ACTIVE_PLANS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPED.with(|s| s.borrow().last().cloned()).or_else(|| {
        global_slot()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    })
}

/// Probes an injection point.
///
/// With no plan installed this is a single relaxed atomic load. With a
/// plan armed at `point`, `panic` panics here (unwind-safely caught by
/// the serve supervisor), `delay_ms` sleeps here, and the remaining
/// kinds are returned for the caller to interpret.
#[inline]
pub fn hit(point: &str) -> Option<FaultSignal> {
    if ACTIVE_PLANS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    hit_slow(point)
}

#[cold]
fn hit_slow(point: &str) -> Option<FaultSignal> {
    let plan = SCOPED.with(|s| s.borrow().last().cloned()).or_else(|| {
        global_slot()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    })?;
    match plan.decide(point)? {
        FaultKind::Panic => panic!("injected fault: panic at `{point}`"),
        FaultKind::DelayMs(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        FaultKind::SpuriousUnknown => Some(FaultSignal::SpuriousUnknown),
        FaultKind::AllocSpike(bytes) => Some(FaultSignal::AllocSpike(bytes)),
    }
}

/// Briefly allocates (and touches) `bytes` of heap so an `alloc_spike`
/// is visible to real allocators too, then frees it. Returns `bytes`
/// for the caller's budget accounting. Capped at 256 MiB so a typo in a
/// spec cannot OOM the host.
pub fn materialize_spike(bytes: usize) -> usize {
    let cap = bytes.min(256 << 20);
    let mut v = vec![0u8; cap];
    // Touch one byte per page so the allocation is not elided.
    for i in (0..v.len()).step_by(4096) {
        v[i] = 1;
    }
    std::hint::black_box(&v);
    drop(v);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let p = FaultPlan::parse("sat.conflict:spurious_unknown:once").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].kind, FaultKind::SpuriousUnknown);
        assert!(p.rules[0].once);

        let p =
            FaultPlan::parse("serve.worker:panic:p=0.1:seed=42,encode.build:delay_ms:5").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].kind, FaultKind::Panic);
        assert!((p.rules[0].prob - 0.1).abs() < 1e-12);
        assert_eq!(p.rules[0].seed, 42);
        assert_eq!(p.rules[1].kind, FaultKind::DelayMs(5));

        let p = FaultPlan::parse("x:alloc_spike:2").unwrap();
        assert_eq!(p.rules[0].kind, FaultKind::AllocSpike(2 << 20));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("sat.conflict").is_err());
        assert!(FaultPlan::parse("sat.conflict:frobnicate").is_err());
        assert!(FaultPlan::parse("x:panic:p=2.0").is_err());
        assert!(FaultPlan::parse("x:panic:p=0").is_err());
        assert!(FaultPlan::parse("x:panic:seed=abc").is_err());
        assert!(FaultPlan::parse("x:panic:wat").is_err());
    }

    #[test]
    fn unarmed_points_are_silent() {
        assert_eq!(hit("sat.conflict"), None);
        let _g = scoped(Arc::new(FaultPlan::single(
            "encode.build",
            FaultKind::SpuriousUnknown,
        )));
        assert_eq!(hit("sat.conflict"), None);
        assert_eq!(hit("encode.build"), Some(FaultSignal::SpuriousUnknown));
    }

    #[test]
    fn once_fires_exactly_once() {
        let plan = Arc::new(FaultPlan::single("p", FaultKind::SpuriousUnknown).once());
        let _g = scoped(plan.clone());
        assert_eq!(hit("p"), Some(FaultSignal::SpuriousUnknown));
        assert_eq!(hit("p"), None);
        assert_eq!(hit("p"), None);
        let counters = plan.counters();
        assert_eq!(counters[0].1, 3); // hits
        assert_eq!(counters[0].2, 1); // fired
    }

    #[test]
    fn probabilistic_triggers_are_deterministic() {
        let draws = |seed: u64| -> Vec<bool> {
            let plan = Arc::new(
                FaultPlan::single("p", FaultKind::SpuriousUnknown)
                    .with_prob(0.3)
                    .with_seed(seed),
            );
            let _g = scoped(plan);
            (0..64).map(|_| hit("p").is_some()).collect()
        };
        let a = draws(7);
        assert_eq!(a, draws(7), "same seed must replay the same faults");
        assert_ne!(a, draws(8), "different seeds should diverge");
        let fired = a.iter().filter(|&&b| b).count();
        assert!(fired > 4 && fired < 40, "~30% of 64 expected, got {fired}");
    }

    #[test]
    fn scoped_plans_nest_and_unwind() {
        let outer = Arc::new(FaultPlan::single("p", FaultKind::SpuriousUnknown));
        let g1 = scoped(outer);
        // Inner shadows outer entirely: an unarmed inner plan silences "p".
        {
            let _g2 = scoped(Arc::new(FaultPlan::single("q", FaultKind::SpuriousUnknown)));
            assert_eq!(hit("p"), None);
            assert_eq!(hit("q"), Some(FaultSignal::SpuriousUnknown));
        }
        assert_eq!(hit("p"), Some(FaultSignal::SpuriousUnknown));
        drop(g1);
        assert_eq!(hit("p"), None);
    }

    #[test]
    fn panic_kind_panics_at_the_point() {
        let _g = scoped(Arc::new(FaultPlan::single("p", FaultKind::Panic)));
        let err = std::panic::catch_unwind(|| hit("p")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "got: {msg}");
    }

    #[test]
    fn retried_plans_continue_the_hit_sequence() {
        // A `panic:once` plan panics on the first attempt and lets the
        // retry through — the serve retry loop depends on this.
        let plan = Arc::new(FaultPlan::single("p", FaultKind::Panic).once());
        let attempt = |plan: &Arc<FaultPlan>| {
            let _g = scoped(plan.clone());
            std::panic::catch_unwind(|| {
                hit("p");
            })
            .is_err()
        };
        assert!(attempt(&plan), "first attempt should panic");
        assert!(!attempt(&plan), "retry should pass");
    }

    #[test]
    fn spike_materializes_and_reports() {
        assert_eq!(materialize_spike(1 << 20), 1 << 20);
    }
}
