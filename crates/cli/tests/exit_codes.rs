//! The exit-code contract, asserted against the real binary:
//! 0 = verified, 1 = property violated, 2 = usage/parse error,
//! 3 = verdict unknown (deadline / cancellation / conflict budget).

use std::path::PathBuf;
use std::process::{Command, Output};

/// A load of an untouched zero location: the `exists` witness is always
/// reachable, so the expectation holds.
const PASS: &str = "PTX EXITPASS\n\
{ x = 0; }\n\
P0@cta 0,gpu 0 ;\n\
ld.relaxed.gpu r0, x ;\n\
exists (P0:r0 == 0)";

/// The same program asserting the witness is *unreachable*: violated.
const FAIL: &str = "PTX EXITFAIL\n\
{ x = 0; }\n\
P0@cta 0,gpu 0 ;\n\
ld.relaxed.gpu r0, x ;\n\
~exists (P0:r0 == 0)";

/// Spin-heavy three-thread test; slow enough at bound 16 that a 1 ms
/// deadline always expires mid-verification.
const SLOW: &str = "PTX EXITSLOW\n\
{ x = 0; y = 0; f = 0; g = 0; }\n\
P0@cta 0,gpu 0 | P1@cta 1,gpu 0 | P2@cta 2,gpu 0 ;\n\
st.relaxed.gpu x, 1 | LC00: | LC01: ;\n\
st.release.gpu f, 1 | ld.relaxed.gpu r0, f | ld.relaxed.gpu r0, g ;\n\
st.relaxed.gpu y, 1 | bne r0, 1, LC00 | bne r0, 1, LC01 ;\n\
st.release.gpu g, 1 | ld.acquire.gpu r1, x | ld.acquire.gpu r1, y ;\n\
exists (P1:r1 == 0 /\\ P2:r1 == 0)";

fn write_litmus(name: &str, source: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("gpumc-exit-{}-{name}.litmus", std::process::id()));
    std::fs::write(&path, source).unwrap();
    path
}

fn gpumc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpumc"))
        .args(args)
        .output()
        .expect("run gpumc")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("terminated by signal")
}

#[test]
fn exit_zero_when_expectation_holds() {
    let path = write_litmus("pass", PASS);
    let out = gpumc(&["verify", path.to_str().unwrap()]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn exit_one_when_property_violated() {
    let path = write_litmus("fail", FAIL);
    let out = gpumc(&["verify", path.to_str().unwrap()]);
    assert_eq!(
        code(&out),
        1,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAILS"));
    // `--all` keeps the same contract.
    let path = write_litmus("fail-all", FAIL);
    let out = gpumc(&["verify", path.to_str().unwrap(), "--all"]);
    assert_eq!(code(&out), 1);
    let _ = std::fs::remove_file(path);
}

#[test]
fn exit_two_on_usage_and_parse_errors() {
    // Unknown subcommand: usage text, exit 2.
    let out = gpumc(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stdout).contains("EXIT CODES"));
    // Missing file.
    let out = gpumc(&["verify", "/nonexistent/path.litmus"]);
    assert_eq!(code(&out), 2);
    // Unparsable litmus source.
    let path = write_litmus("garbage", "this is not a litmus test");
    let out = gpumc(&["verify", path.to_str().unwrap()]);
    assert_eq!(code(&out), 2);
    let _ = std::fs::remove_file(path);
    // Bad flag value.
    let out = gpumc(&["verify", "x.litmus", "--bound", "banana"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn exit_three_when_the_deadline_leaves_the_verdict_unknown() {
    let path = write_litmus("slow", SLOW);
    let out = gpumc(&[
        "verify",
        path.to_str().unwrap(),
        "--model",
        "ptx-v6.0",
        "--bound",
        "16",
        "--timeout-ms",
        "1",
    ]);
    assert_eq!(
        code(&out),
        3,
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("verdict unknown"));
    let _ = std::fs::remove_file(path);
}
