//! The `gpumc` command line — the analogue of the paper's
//! `java -jar dartagnan.jar <test> <model.cat> --property=...` usage.

use std::process::ExitCode;

use gpumc::{EngineKind, Verifier};
use gpumc_models::ModelKind;

const USAGE: &str = "\
gpumc — unified analysis of GPU consistency (PTX / Vulkan)

USAGE:
    gpumc verify <test.litmus> [OPTIONS]
    gpumc suite <ptx|proxy|vulkan|drf|liveness|figures> [OPTIONS]
    gpumc models
    gpumc dump-model <ptx-v6.0|ptx-v7.5|vulkan>
    gpumc catalog [ptx|proxy|vulkan|drf|liveness|figures]

OPTIONS (verify):
    --model <name>       consistency model: ptx-v6.0, ptx-v7.5, vulkan
                         (default: inferred from the test dialect)
    --property <p>       assertion | liveness | datarace  (default: assertion)
    --all                check all three properties from one incremental
                         encoding (assertion + liveness + datarace);
                         per-query solver statistics go to stderr
    --fresh              with --all: use three fresh encodings instead of
                         the incremental session (differential baseline)
    --engine <e>         sat | enumerate | alloy  (default: sat;
                         `alloy` is the straight-line enumeration baseline)
    --bound <n>          loop unrolling bound (default: 2)
    --witness            print the witness execution graph

OPTIONS (suite):
    --jobs <n>           worker threads (default: all cores; 1 = serial)
    --engine <e>         sat | enumerate | alloy  (default: sat)
    --model <name>       model override (default: per-test, from dialect)
    --thorough           also cross-check a secondary property per test,
                         answered from one incremental solver session

The suite result table on stdout is deterministic (identical for any
--jobs value); timings go to stderr.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("verify") => verify(&args[1..]),
        Some("suite") => suite(&args[1..]),
        Some("models") => {
            for m in ModelKind::ALL {
                println!("{m}\t({})", m.file_name());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("dump-model") => {
            let name = args.get(1).ok_or("dump-model needs a model name")?;
            let kind =
                ModelKind::from_name(name).ok_or_else(|| format!("unknown model `{name}`"))?;
            print!("{}", kind.source());
            Ok(ExitCode::SUCCESS)
        }
        Some("catalog") => catalog(args.get(1).map(String::as_str)),
        _ => {
            print!("{USAGE}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn suite_tests(name: &str) -> Result<Vec<gpumc_catalog::Test>, String> {
    Ok(match name {
        "ptx" => gpumc_catalog::ptx_safety_suite(),
        "proxy" => gpumc_catalog::ptx_proxy_suite(),
        "vulkan" => gpumc_catalog::vulkan_safety_suite(),
        "drf" => gpumc_catalog::vulkan_drf_suite(),
        "liveness" => gpumc_catalog::liveness_suite(),
        "figures" => gpumc_catalog::figure_tests(),
        other => return Err(format!("unknown suite `{other}`")),
    })
}

fn parse_engine(name: &str) -> Result<EngineKind, String> {
    Ok(match name {
        "sat" => EngineKind::Sat,
        "enumerate" => EngineKind::Enumerate {
            straight_line_only: false,
        },
        "alloy" => EngineKind::Enumerate {
            straight_line_only: true,
        },
        other => return Err(format!("unknown engine `{other}`")),
    })
}

fn catalog(which: Option<&str>) -> Result<ExitCode, String> {
    let tests = suite_tests(which.unwrap_or("figures"))?;
    for t in &tests {
        println!("{}\t{:?}\texpected={:?}", t.name, t.property, t.expected);
    }
    eprintln!("{} tests", tests.len());
    Ok(ExitCode::SUCCESS)
}

fn suite(args: &[String]) -> Result<ExitCode, String> {
    let mut name = None;
    let mut config = gpumc::SuiteConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                config.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "bad --jobs")?
            }
            "--engine" => config.engine = parse_engine(it.next().ok_or("--engine needs a value")?)?,
            "--model" => {
                let m = it.next().ok_or("--model needs a value")?;
                config.model =
                    Some(ModelKind::from_name(m).ok_or_else(|| format!("unknown model `{m}`"))?);
            }
            "--thorough" => config.thorough = true,
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let name = name.ok_or("missing suite name (ptx|proxy|vulkan|drf|liveness|figures)")?;
    let tests = suite_tests(&name)?;
    let report = gpumc::SuiteRunner::new(config).run(&tests);
    // Deterministic table on stdout; timings (non-deterministic) on stderr.
    print!("{}", report.render_table());
    eprintln!("{}", report.render_summary());
    Ok(if report.passed() == report.results.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut model = None;
    let mut property = "assertion".to_string();
    let mut engine = "sat".to_string();
    let mut bound = 2u32;
    let mut show_witness = false;
    let mut all = false;
    let mut fresh = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => model = Some(it.next().ok_or("--model needs a value")?.clone()),
            "--property" => property = it.next().ok_or("--property needs a value")?.clone(),
            "--engine" => engine = it.next().ok_or("--engine needs a value")?.clone(),
            "--bound" => {
                bound = it
                    .next()
                    .ok_or("--bound needs a value")?
                    .parse()
                    .map_err(|_| "bad --bound")?
            }
            "--witness" => show_witness = true,
            "--all" => all = true,
            "--fresh" => fresh = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let path = path.ok_or("missing test file")?;
    let source = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let program = gpumc::parse_litmus(&source).map_err(|e| e.to_string())?;

    let kind = match model {
        Some(name) => {
            ModelKind::from_name(&name).ok_or_else(|| format!("unknown model `{name}`"))?
        }
        None => match program.arch {
            gpumc::gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
            gpumc::gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
        },
    };
    let engine = parse_engine(&engine)?;
    let verifier = Verifier::new(gpumc_models::load(kind))
        .with_engine(engine)
        .with_bound(bound)
        .with_incremental(!fresh);

    if all {
        return verify_all(&verifier, &program, show_witness);
    }
    let (headline, witness, ok) = match property.as_str() {
        "assertion" | "program_spec" => {
            let o = verifier
                .check_assertion(&program)
                .map_err(|e| e.to_string())?;
            let verdict = match o.satisfied_expectation {
                Some(true) => "condition expectation HOLDS",
                Some(false) => "condition expectation FAILS",
                None => "no condition",
            };
            (
                format!(
                    "{}: witness {} | {} | {} events, {} vars, {} clauses, {:.1} ms",
                    program.name,
                    if o.reachable { "FOUND" } else { "none" },
                    verdict,
                    o.stats.events,
                    o.stats.sat_vars,
                    o.stats.sat_clauses,
                    o.stats.time_us as f64 / 1000.0
                ),
                o.witness,
                o.satisfied_expectation.unwrap_or(true),
            )
        }
        "liveness" => {
            let o = verifier
                .check_liveness(&program)
                .map_err(|e| e.to_string())?;
            (
                format!(
                    "{}: liveness {} ({:.1} ms)",
                    program.name,
                    if o.violated { "VIOLATION" } else { "ok" },
                    o.stats.time_us as f64 / 1000.0
                ),
                o.witness,
                !o.violated,
            )
        }
        "datarace" | "cat_spec" | "drf" => {
            let o = verifier
                .check_data_races(&program)
                .map_err(|e| e.to_string())?;
            (
                format!(
                    "{}: data race {} ({:.1} ms)",
                    program.name,
                    if o.violated { "FOUND" } else { "none" },
                    o.stats.time_us as f64 / 1000.0
                ),
                o.witness,
                !o.violated,
            )
        }
        other => return Err(format!("unknown property `{other}`")),
    };
    println!("{headline}");
    if show_witness {
        if let Some(w) = witness {
            print!("{}", w.rendering);
        }
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `gpumc verify --all`: all three properties from one encoding (or from
/// three fresh ones with `--fresh`). The exit code reflects the
/// assertion expectation, like the default property; the liveness and
/// data-race lines are informational.
fn verify_all(
    verifier: &Verifier,
    program: &gpumc::gpumc_ir::Program,
    show_witness: bool,
) -> Result<ExitCode, String> {
    let o = verifier.check_all(program).map_err(|e| e.to_string())?;
    let verdict = match o.assertion.satisfied_expectation {
        Some(true) => "condition expectation HOLDS",
        Some(false) => "condition expectation FAILS",
        None => "no condition",
    };
    println!(
        "{}: witness {} | {} | {} events, {} vars, {} clauses",
        program.name,
        if o.assertion.reachable {
            "FOUND"
        } else {
            "none"
        },
        verdict,
        o.assertion.stats.events,
        o.assertion.stats.sat_vars,
        o.assertion.stats.sat_clauses,
    );
    println!(
        "{}: liveness {}",
        program.name,
        if o.liveness.violated {
            "VIOLATION"
        } else {
            "ok"
        }
    );
    match &o.data_races {
        Some(d) => println!(
            "{}: data race {}",
            program.name,
            if d.violated { "FOUND" } else { "none" }
        ),
        None => println!(
            "{}: data race n/a (model defines no `dr` flag)",
            program.name
        ),
    }
    // Per-query solver deltas (incremental path only) are diagnostics:
    // keep stdout clean for the verdict lines.
    let stats = o.render_query_stats();
    if !stats.is_empty() {
        eprint!("{stats}");
    }
    eprintln!("total {:.1} ms", o.total_time_us as f64 / 1000.0);
    if show_witness {
        if let Some(w) = &o.assertion.witness {
            print!("{}", w.rendering);
        }
    }
    Ok(if o.assertion.satisfied_expectation.unwrap_or(true) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}
