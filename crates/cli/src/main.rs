//! The `gpumc` command line — the analogue of the paper's
//! `java -jar dartagnan.jar <test> <model.cat> --property=...` usage.

use std::process::ExitCode;

use gpumc::{EngineKind, Verifier};
use gpumc_models::ModelKind;
use gpumc_serve::{Client, Json, Server, ServerConfig};

const USAGE: &str = "\
gpumc — unified analysis of GPU consistency (PTX / Vulkan)

USAGE:
    gpumc verify <test.litmus> [OPTIONS]
    gpumc suite <ptx|proxy|vulkan|drf|liveness|figures> [OPTIONS]
    gpumc serve [OPTIONS]
    gpumc route <suite> --shards <addr,addr,...> [OPTIONS]
    gpumc client <ping|metrics|shutdown|verify <test.litmus>> [OPTIONS]
    gpumc cache <digest <test.litmus>|ls --dir <path>> [OPTIONS]
    gpumc models
    gpumc dump-model <ptx-v6.0|ptx-v7.5|vulkan>
    gpumc catalog [ptx|proxy|vulkan|drf|liveness|figures]

OPTIONS (verify):
    --model <name>       consistency model: ptx-v6.0, ptx-v7.5, vulkan
                         (default: inferred from the test dialect)
    --property <p>       assertion | liveness | datarace  (default: assertion)
    --all                check all three properties from one incremental
                         encoding (assertion + liveness + datarace);
                         per-query solver statistics go to stderr
    --fresh              with --all: use three fresh encodings instead of
                         the incremental session (differential baseline)
    --engine <e>         sat | enumerate | alloy | dpor  (default: sat;
                         `alloy` is the straight-line enumeration baseline,
                         `dpor` the pruned stateless exploration engine)
    --bound <n>          loop unrolling bound (default: 2)
    --timeout-ms <ms>    deadline; an expired solve answers `unknown`
                         and exits 3 instead of blocking
    --budget <n>         solver conflict budget; exhaustion answers
                         `unknown` and exits 3
    --mem-budget-mb <n>  approximate memory budget for encode + solve;
                         exceeding it answers `unknown` and exits 3
    --no-simplify        disable SatELite-style CNF simplification of
                         the SAT encoding (on by default)
    --portfolio <n|auto> race N diversified solvers per query with
                         lock-free learnt-clause sharing and a
                         cube-and-conquer fallback (default: off;
                         `auto` engages on expensive encodings);
                         with --engine dpor: split the exploration
                         tree over N work-stealing workers instead
                         (`auto` uses all cores)
    --witness            print the witness execution graph

OPTIONS (suite):
    --jobs <n>           worker threads (default and 0: all cores; 1 = serial)
    --engine <e>         sat | enumerate | alloy | dpor  (default: sat)
    --model <name>       model override (default: per-test, from dialect)
    --portfolio <n|auto> portfolio SAT solve / parallel DPOR exploration
                         per test (default: off)
    --thorough           also cross-check a secondary property per test,
                         answered from one incremental solver session

OPTIONS (serve):
    --addr <host:port>   listen address (default: 127.0.0.1:7878;
                         port 0 picks an ephemeral one, logged to stderr)
    --stdio              serve a single session on stdin/stdout instead
                         of TCP (same JSON-lines protocol)
    --jobs <n>           worker threads (default and 0: all cores)
    --max-queue <n>      accepted-but-unstarted job limit; a full queue
                         answers `status: rejected` (default: 64)
    --default-timeout-ms <ms>
                         deadline for requests that carry no timeout_ms
    --metrics-every <secs>
                         dump a one-line metrics summary to stderr
    --enable-faults      honor the per-request `faults` field (testing
                         only; off by default)
    --no-cache           disable the content-addressed result cache
                         (on by default: duplicate definitive requests
                         answer without re-encoding or re-solving)
    --cache-cap <n>      resident verdicts in the cache LRU (default: 4096)
    --cache-dir <path>   persist verdicts to <path>/results.jsonl across
                         restarts; invalidated automatically when the
                         verifier fingerprint changes
    --fast-lane-cost <n> predicted-cost threshold for the scheduler's
                         fast lane (default: 8192); costlier jobs take
                         per-worker heavy lanes with work stealing
    --degrade-level <l>  pin the brownout ladder at full | cache-only |
                         sequential | shed (default: track queue
                         pressure; see DESIGN.md section 18)
    --cache-only-at / --sequential-at / --shed-at <frac>
                         queue-pressure thresholds (fractions of
                         --max-queue) engaging each ladder level
                         (defaults: 0.60 / 0.75 / 0.90)

OPTIONS (route):
    --shards <a,b,...>   comma-separated serve addresses (required);
                         requests are placed on a consistent-hash ring
                         by content digest, so identical queries always
                         hit the same shard
    --bound <n>          override every test's unrolling bound
    --engine <e>         sat | enumerate | alloy | dpor  (default: sat)
    --model <name>       model override (default: per-test, from dialect)
    --timeout-ms <ms>    forwarded per request
    --max-attempts <n>   cluster-wide attempts per request before a
                         `status:\"failed\"` line (default: 2 x shards)
    --backoff-ms <ms>    sleep between cluster retry rounds (default: 25)
    --deadline-ms <ms>   per-request cluster deadline: when it expires
                         the request is answered `failed` (class
                         timeout) instead of retrying forever
    --read-timeout-ms <ms>
                         per-attempt socket read timeout (default: none)
    --hedge-ms <ms>      fire a hedged duplicate at the next ring
                         successor when a shard is slower than
                         <ms> + predicted_cost/div; first definitive
                         answer wins (default: off)
    --hedge-cost-div <n> cost divisor in the hedge threshold
                         (default: 0 = flat --hedge-ms threshold)
    --breaker-failures <n>
                         consecutive transport failures that trip a
                         shard's circuit breaker (default: 3)
    --breaker-cooldown-ms <ms>
                         quarantine before a half-open probe readmits
                         the shard (default: 500)

    Merged verdict lines go to stdout in suite order — byte-identical
    for any shard count or mid-run node death, as long as some shard
    survives. Unanswerable requests are still classified (`failed` or
    `shed`), never dropped. Per-shard routing stats, breaker trips, and
    hedge counts go to stderr.

OPTIONS (client):
    --addr <host:port>   server address (default: 127.0.0.1:7878)
    --model <name>       forwarded with verify
    --bound <n>          forwarded with verify
    --timeout-ms <ms>    forwarded with verify

The suite result table on stdout is deterministic (identical for any
--jobs value); timings go to stderr.

EXIT CODES:
    0   verified: expectation holds / property not violated / suite clean
    1   property violated: expectation fails or suite has mismatches
    2   usage, parse, or I/O error
    3   verdict unknown: deadline, cancellation, conflict budget, or
        memory budget

Set GPUMC_FAULTS=\"point:kind[:arg][:p=..][:seed=..][:once],...\" to arm
deterministic fault injection process-wide (testing only; see DESIGN.md
section 13 for the grammar and the list of injection points).
";

fn main() -> ExitCode {
    if let Err(msg) = gpumc::fault::install_global_from_env() {
        eprintln!("error: bad GPUMC_FAULTS: {msg}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("verify") => verify(&args[1..]),
        Some("suite") => suite(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("route") => route(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("cache") => cache(&args[1..]),
        Some("models") => {
            for m in ModelKind::ALL {
                println!("{m}\t({})", m.file_name());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("dump-model") => {
            let name = args.get(1).ok_or("dump-model needs a model name")?;
            let kind =
                ModelKind::from_name(name).ok_or_else(|| format!("unknown model `{name}`"))?;
            print!("{}", kind.source());
            Ok(ExitCode::SUCCESS)
        }
        Some("catalog") => catalog(args.get(1).map(String::as_str)),
        _ => {
            print!("{USAGE}");
            Ok(ExitCode::from(2))
        }
    }
}

fn suite_tests(name: &str) -> Result<Vec<gpumc_catalog::Test>, String> {
    Ok(match name {
        "ptx" => gpumc_catalog::ptx_safety_suite(),
        "proxy" => gpumc_catalog::ptx_proxy_suite(),
        "vulkan" => gpumc_catalog::vulkan_safety_suite(),
        "drf" => gpumc_catalog::vulkan_drf_suite(),
        "liveness" => gpumc_catalog::liveness_suite(),
        "figures" => gpumc_catalog::figure_tests(),
        other => return Err(format!("unknown suite `{other}`")),
    })
}

fn parse_engine(name: &str) -> Result<EngineKind, String> {
    name.parse::<EngineKind>()
}

/// Folds a verification error into the exit-code scheme: `Unknown`
/// (deadline, cancellation, conflict budget) is a verdict — exit 3 —
/// while anything else propagates as a hard error (exit 2).
fn unknown_or_err(e: gpumc::VerifyError) -> Result<ExitCode, String> {
    match e {
        gpumc::VerifyError::Unknown(reason) => {
            eprintln!("verdict unknown: {reason}");
            Ok(ExitCode::from(3))
        }
        other => Err(other.to_string()),
    }
}

/// One-line stderr diagnostic for the work-stealing DPOR driver,
/// mirroring the SAT portfolio line; silent on sequential runs so the
/// stdout verdict surface is unchanged.
fn report_dpor_parallel(stats: &gpumc::Stats) {
    if let Some(p) = &stats.dpor_parallel {
        eprintln!(
            "  dpor parallel: {} workers, {} tasks, {} steals{}",
            p.workers,
            p.tasks,
            p.steals,
            if p.stopped_early {
                ", stopped early"
            } else {
                ""
            }
        );
    }
}

fn catalog(which: Option<&str>) -> Result<ExitCode, String> {
    let tests = suite_tests(which.unwrap_or("figures"))?;
    for t in &tests {
        println!("{}\t{:?}\texpected={:?}", t.name, t.property, t.expected);
    }
    eprintln!("{} tests", tests.len());
    Ok(ExitCode::SUCCESS)
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut config = ServerConfig::default();
    let mut stdio = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--stdio" => stdio = true,
            "--jobs" | "-j" => {
                config.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "bad --jobs")?
            }
            "--max-queue" => {
                config.max_queue = it
                    .next()
                    .ok_or("--max-queue needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-queue")?
            }
            "--default-timeout-ms" => {
                config.default_timeout_ms = Some(
                    it.next()
                        .ok_or("--default-timeout-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --default-timeout-ms")?,
                )
            }
            "--metrics-every" => {
                config.metrics_every_secs = Some(
                    it.next()
                        .ok_or("--metrics-every needs a value")?
                        .parse()
                        .map_err(|_| "bad --metrics-every")?,
                )
            }
            "--enable-faults" => config.allow_faults = true,
            "--no-cache" => config.cache_enabled = false,
            "--cache-cap" => {
                config.cache_capacity = it
                    .next()
                    .ok_or("--cache-cap needs a value")?
                    .parse()
                    .map_err(|_| "bad --cache-cap")?
            }
            "--cache-dir" => {
                config.cache_dir = Some(std::path::PathBuf::from(
                    it.next().ok_or("--cache-dir needs a value")?,
                ))
            }
            "--fast-lane-cost" => {
                config.fast_lane_max_cost = it
                    .next()
                    .ok_or("--fast-lane-cost needs a value")?
                    .parse()
                    .map_err(|_| "bad --fast-lane-cost")?
            }
            "--degrade-level" => {
                config.force_degrade = Some(
                    gpumc_serve::DegradeLevel::parse(
                        it.next().ok_or("--degrade-level needs a value")?,
                    )
                    .map_err(|e| format!("bad --degrade-level: {e}"))?,
                )
            }
            "--cache-only-at" => {
                config.overload.cache_only_at = it
                    .next()
                    .ok_or("--cache-only-at needs a value")?
                    .parse()
                    .map_err(|_| "bad --cache-only-at")?
            }
            "--sequential-at" => {
                config.overload.sequential_at = it
                    .next()
                    .ok_or("--sequential-at needs a value")?
                    .parse()
                    .map_err(|_| "bad --sequential-at")?
            }
            "--shed-at" => {
                config.overload.shed_at = it
                    .next()
                    .ok_or("--shed-at needs a value")?
                    .parse()
                    .map_err(|_| "bad --shed-at")?
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if stdio {
        Server::run_stdio(&config).map_err(|e| e.to_string())?;
    } else {
        let server = Server::bind(&config).map_err(|e| e.to_string())?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        eprintln!("gpumc-serve listening on {addr}");
        server.run().map_err(|e| e.to_string())?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `gpumc route <suite>`: fan a catalog suite over N serve shards by
/// content digest and print the deterministic merge (DESIGN.md §16).
fn route(args: &[String]) -> Result<ExitCode, String> {
    use gpumc::fleet::router::{route, RoutePolicy, RouteRequest};
    let mut name = None;
    let mut shards: Vec<String> = Vec::new();
    let mut bound: Option<u32> = None;
    let mut engine = "sat".to_string();
    let mut model: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut policy = RoutePolicy::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--bound" => {
                bound = Some(
                    it.next()
                        .ok_or("--bound needs a value")?
                        .parse()
                        .map_err(|_| "bad --bound")?,
                )
            }
            "--engine" => engine = it.next().ok_or("--engine needs a value")?.clone(),
            "--model" => model = Some(it.next().ok_or("--model needs a value")?.clone()),
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --timeout-ms")?,
                )
            }
            "--max-attempts" => {
                policy.max_attempts = it
                    .next()
                    .ok_or("--max-attempts needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-attempts")?
            }
            "--backoff-ms" => {
                policy.backoff_ms = it
                    .next()
                    .ok_or("--backoff-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --backoff-ms")?
            }
            "--deadline-ms" => {
                policy.deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms")?,
                )
            }
            "--hedge-ms" => {
                policy.hedge_ms = Some(
                    it.next()
                        .ok_or("--hedge-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --hedge-ms")?,
                )
            }
            "--hedge-cost-div" => {
                policy.hedge_cost_div = it
                    .next()
                    .ok_or("--hedge-cost-div needs a value")?
                    .parse()
                    .map_err(|_| "bad --hedge-cost-div")?
            }
            "--read-timeout-ms" => {
                policy.read_timeout_ms = Some(
                    it.next()
                        .ok_or("--read-timeout-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --read-timeout-ms")?,
                )
            }
            "--breaker-failures" => {
                policy.breaker.failure_threshold = it
                    .next()
                    .ok_or("--breaker-failures needs a value")?
                    .parse()
                    .map_err(|_| "bad --breaker-failures")?
            }
            "--breaker-cooldown-ms" => {
                policy.breaker.cooldown_ms = it
                    .next()
                    .ok_or("--breaker-cooldown-ms needs a value")?
                    .parse()
                    .map_err(|_| "bad --breaker-cooldown-ms")?
            }
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // Validate the engine spelling up front (the digest layer would
    // reject it per-request otherwise).
    parse_engine(&engine)?;
    let name = name.ok_or("missing suite name (ptx|proxy|vulkan|drf|liveness|figures)")?;
    if shards.is_empty() {
        return Err("route needs --shards <addr,addr,...>".into());
    }
    let requests: Vec<RouteRequest> = suite_tests(&name)?
        .into_iter()
        .map(|t| RouteRequest {
            name: t.name,
            source: t.source,
            model: model.clone(),
            bound: bound.unwrap_or(t.bound),
            engine: engine.clone(),
            timeout_ms,
            faults: None,
        })
        .collect();
    let report = route(&requests, &shards, &policy);
    print!("{}", report.merged());
    for s in &report.shards {
        eprintln!(
            "shard {}: {} sent, {} answered{}{}{}",
            s.addr,
            s.sent,
            s.answered,
            if s.died { ", DIED" } else { "" },
            if s.trips > 0 {
                format!(", breaker tripped x{}", s.trips)
            } else {
                String::new()
            },
            if s.readmitted > 0 {
                format!(", readmitted x{}", s.readmitted)
            } else {
                String::new()
            },
        );
    }
    if report.hedge.fired > 0 {
        eprintln!(
            "hedges: {} fired, {} won, {} duplicate answers ({} mismatched)",
            report.hedge.fired, report.hedge.wins, report.hedge.duplicates, report.hedge.mismatches
        );
    }
    Ok(if report.all_done() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `gpumc cache`: inspect the content-addressed result cache layer —
/// `digest` prints a request's canonical digest (what `route` shards
/// on), `ls` lists a persistent store's entries.
fn cache(args: &[String]) -> Result<ExitCode, String> {
    use gpumc::fleet::digest::{digest_hex, source_digest};
    match args.first().map(String::as_str) {
        Some("digest") => {
            let mut file = None;
            let mut model: Option<String> = None;
            let mut bound = 2u32;
            let mut engine = "sat".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--model" => model = Some(it.next().ok_or("--model needs a value")?.clone()),
                    "--bound" => {
                        bound = it
                            .next()
                            .ok_or("--bound needs a value")?
                            .parse()
                            .map_err(|_| "bad --bound")?
                    }
                    "--engine" => engine = it.next().ok_or("--engine needs a value")?.clone(),
                    other if !other.starts_with('-') && file.is_none() => {
                        file = Some(other.to_string())
                    }
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            let file = file.ok_or("cache digest needs a test file")?;
            let source = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let d = source_digest(
                &source,
                model.as_deref(),
                bound,
                "all",
                &engine,
                gpumc_serve::PROTOCOL_VERSION,
            )?;
            println!("{}", digest_hex(d));
            Ok(ExitCode::SUCCESS)
        }
        Some("ls") => {
            let mut dir = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--dir" => dir = Some(it.next().ok_or("--dir needs a value")?.clone()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            let dir = dir.ok_or("cache ls needs --dir <path>")?;
            let path = std::path::Path::new(&dir).join(gpumc::fleet::store::STORE_FILE);
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let mut lines = text.lines();
            let header = lines.next().unwrap_or("");
            eprintln!("{header}");
            let mut n = 0u64;
            for line in lines {
                if Json::parse(line).is_ok() {
                    println!("{line}");
                    n += 1;
                }
            }
            eprintln!("{n} entries");
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("cache needs a subcommand: digest <test.litmus> | ls --dir <path>".into()),
    }
}

fn client(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut model = None;
    let mut bound = None;
    let mut timeout_ms = None;
    let mut verb = None;
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--model" => model = Some(it.next().ok_or("--model needs a value")?.clone()),
            "--bound" => {
                bound = Some(
                    it.next()
                        .ok_or("--bound needs a value")?
                        .parse()
                        .map_err(|_| "bad --bound")?,
                )
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --timeout-ms")?,
                )
            }
            other if !other.starts_with('-') && verb.is_none() => verb = Some(other.to_string()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let verb = verb.ok_or("missing client verb (ping|metrics|shutdown|verify)")?;
    let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    let response = match verb.as_str() {
        "ping" => client.ping(),
        "metrics" => client.metrics(),
        "shutdown" => client.shutdown(),
        "verify" => {
            let file = file.ok_or("client verify needs a test file")?;
            let source = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            client.verify(&source, model.as_deref(), bound, timeout_ms)
        }
        other => return Err(format!("unknown client verb `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    println!("{response}");
    let status = response.get("status").and_then(Json::as_str).unwrap_or("");
    Ok(match status {
        "ok" => ExitCode::SUCCESS,
        "done" => {
            // Same scheme as local `gpumc verify`: the assertion
            // expectation decides; liveness/datarace lines inform.
            let expectation = response
                .get("verdict")
                .and_then(|v| v.get("expectation"))
                .and_then(Json::as_str);
            if expectation == Some("fails") {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        // `rejected` and `shed` carry no verdict either way — like a
        // timeout; resubmitting later is safe.
        "unknown" | "rejected" | "shed" => ExitCode::from(3),
        _ => ExitCode::from(2),
    })
}

fn suite(args: &[String]) -> Result<ExitCode, String> {
    let mut name = None;
    let mut config = gpumc::SuiteConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                config.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "bad --jobs")?
            }
            "--engine" => config.engine = parse_engine(it.next().ok_or("--engine needs a value")?)?,
            "--model" => {
                let m = it.next().ok_or("--model needs a value")?;
                config.model =
                    Some(ModelKind::from_name(m).ok_or_else(|| format!("unknown model `{m}`"))?);
            }
            "--portfolio" => {
                config.portfolio = gpumc::gpumc_sat::ParallelPolicy::parse(
                    it.next().ok_or("--portfolio needs a value")?,
                )?
            }
            "--thorough" => config.thorough = true,
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let name = name.ok_or("missing suite name (ptx|proxy|vulkan|drf|liveness|figures)")?;
    let tests = suite_tests(&name)?;
    let report = gpumc::SuiteRunner::new(config).run(&tests);
    // Deterministic table on stdout; timings (non-deterministic) on stderr.
    print!("{}", report.render_table());
    eprintln!("{}", report.render_summary());
    Ok(if report.passed() == report.results.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut model = None;
    let mut property = "assertion".to_string();
    let mut engine = "sat".to_string();
    let mut bound = 2u32;
    let mut timeout_ms: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut mem_budget_mb: Option<u64> = None;
    let mut show_witness = false;
    let mut all = false;
    let mut fresh = false;
    let mut simplify = true;
    let mut portfolio = gpumc::gpumc_sat::ParallelPolicy::Off;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => model = Some(it.next().ok_or("--model needs a value")?.clone()),
            "--property" => property = it.next().ok_or("--property needs a value")?.clone(),
            "--engine" => engine = it.next().ok_or("--engine needs a value")?.clone(),
            "--bound" => {
                bound = it
                    .next()
                    .ok_or("--bound needs a value")?
                    .parse()
                    .map_err(|_| "bad --bound")?
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --timeout-ms")?,
                )
            }
            "--budget" => {
                budget = Some(
                    it.next()
                        .ok_or("--budget needs a value")?
                        .parse()
                        .map_err(|_| "bad --budget")?,
                )
            }
            "--mem-budget-mb" => {
                mem_budget_mb = Some(
                    it.next()
                        .ok_or("--mem-budget-mb needs a value")?
                        .parse()
                        .map_err(|_| "bad --mem-budget-mb")?,
                )
            }
            "--portfolio" => {
                portfolio = gpumc::gpumc_sat::ParallelPolicy::parse(
                    it.next().ok_or("--portfolio needs a value")?,
                )?
            }
            "--witness" => show_witness = true,
            "--all" => all = true,
            "--fresh" => fresh = true,
            "--no-simplify" => simplify = false,
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let path = path.ok_or("missing test file")?;
    let source = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let program = gpumc::parse_litmus(&source).map_err(|e| e.to_string())?;

    let kind = match model {
        Some(name) => {
            ModelKind::from_name(&name).ok_or_else(|| format!("unknown model `{name}`"))?
        }
        None => match program.arch {
            gpumc::gpumc_ir::Arch::Ptx => ModelKind::Ptx75,
            gpumc::gpumc_ir::Arch::Vulkan => ModelKind::Vulkan,
        },
    };
    let engine = parse_engine(&engine)?;
    let mut verifier = Verifier::new(gpumc_models::load(kind))
        .with_engine(engine)
        .with_bound(bound)
        .with_incremental(!fresh)
        .with_simplify(simplify)
        .with_parallel(portfolio);
    if let Some(ms) = timeout_ms {
        verifier = verifier.with_cancel_token(gpumc::gpumc_sat::CancelToken::with_timeout(
            std::time::Duration::from_millis(ms),
        ));
    }
    if let Some(b) = budget {
        verifier = verifier.with_conflict_budget(b);
    }
    if let Some(mb) = mem_budget_mb {
        verifier = verifier.with_mem_budget_mb(mb);
    }

    if all {
        return verify_all(&verifier, &program, show_witness);
    }
    let (headline, witness, ok) = match property.as_str() {
        "assertion" | "program_spec" => {
            let o = match verifier.check_assertion(&program) {
                Ok(o) => o,
                Err(e) => return unknown_or_err(e),
            };
            report_dpor_parallel(&o.stats);
            let verdict = match o.satisfied_expectation {
                Some(true) => "condition expectation HOLDS",
                Some(false) => "condition expectation FAILS",
                None => "no condition",
            };
            (
                format!(
                    "{}: witness {} | {} | {} events, {} vars, {} clauses, {:.1} ms",
                    program.name,
                    if o.reachable { "FOUND" } else { "none" },
                    verdict,
                    o.stats.events,
                    o.stats.sat_vars,
                    o.stats.sat_clauses,
                    o.stats.time_us as f64 / 1000.0
                ),
                o.witness,
                o.satisfied_expectation.unwrap_or(true),
            )
        }
        "liveness" => {
            let o = match verifier.check_liveness(&program) {
                Ok(o) => o,
                Err(e) => return unknown_or_err(e),
            };
            report_dpor_parallel(&o.stats);
            (
                format!(
                    "{}: liveness {} ({:.1} ms)",
                    program.name,
                    if o.violated { "VIOLATION" } else { "ok" },
                    o.stats.time_us as f64 / 1000.0
                ),
                o.witness,
                !o.violated,
            )
        }
        "datarace" | "cat_spec" | "drf" => {
            let o = match verifier.check_data_races(&program) {
                Ok(o) => o,
                Err(e) => return unknown_or_err(e),
            };
            report_dpor_parallel(&o.stats);
            (
                format!(
                    "{}: data race {} ({:.1} ms)",
                    program.name,
                    if o.violated { "FOUND" } else { "none" },
                    o.stats.time_us as f64 / 1000.0
                ),
                o.witness,
                !o.violated,
            )
        }
        other => return Err(format!("unknown property `{other}`")),
    };
    println!("{headline}");
    if show_witness {
        if let Some(w) = witness {
            print!("{}", w.rendering);
        }
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `gpumc verify --all`: all three properties from one encoding (or from
/// three fresh ones with `--fresh`). The exit code reflects the
/// assertion expectation, like the default property; the liveness and
/// data-race lines are informational.
fn verify_all(
    verifier: &Verifier,
    program: &gpumc::gpumc_ir::Program,
    show_witness: bool,
) -> Result<ExitCode, String> {
    let o = match verifier.check_all(program) {
        Ok(o) => o,
        Err(e) => return unknown_or_err(e),
    };
    report_dpor_parallel(&o.assertion.stats);
    let verdict = match o.assertion.satisfied_expectation {
        Some(true) => "condition expectation HOLDS",
        Some(false) => "condition expectation FAILS",
        None => "no condition",
    };
    println!(
        "{}: witness {} | {} | {} events, {} vars, {} clauses",
        program.name,
        if o.assertion.reachable {
            "FOUND"
        } else {
            "none"
        },
        verdict,
        o.assertion.stats.events,
        o.assertion.stats.sat_vars,
        o.assertion.stats.sat_clauses,
    );
    println!(
        "{}: liveness {}",
        program.name,
        if o.liveness.violated {
            "VIOLATION"
        } else {
            "ok"
        }
    );
    match &o.data_races {
        Some(d) => println!(
            "{}: data race {}",
            program.name,
            if d.violated { "FOUND" } else { "none" }
        ),
        None => println!(
            "{}: data race n/a (model defines no `dr` flag)",
            program.name
        ),
    }
    // Per-query solver deltas (incremental path only) are diagnostics:
    // keep stdout clean for the verdict lines.
    let stats = o.render_query_stats();
    if !stats.is_empty() {
        eprint!("{stats}");
    }
    if let Some(sp) = &o.simplify {
        eprintln!(
            "  simplify: {} -> {} clauses, {} -> {} vars ({} eliminated, {} equivalent), \
             {} subsumed, {} strengthened, {:.1} ms",
            sp.clauses_before,
            sp.clauses_after,
            sp.vars_before,
            sp.vars_after,
            sp.vars_eliminated,
            sp.equivs_substituted,
            sp.clauses_subsumed,
            sp.clauses_strengthened,
            sp.time_us as f64 / 1000.0
        );
    }
    if let Some(p) = &o.portfolio {
        eprintln!(
            "  portfolio: {} workers, winner {}, {} clauses exported, {} imported{}",
            p.workers,
            p.winner.map_or("none".to_string(), |w| w.to_string()),
            p.exported,
            p.imported,
            if p.cube_fallback {
                format!(
                    ", cube fallback ({} cubes, winner {})",
                    p.cubes,
                    p.cube_winner.map_or("none".to_string(), |w| w.to_string())
                )
            } else {
                String::new()
            }
        );
    }
    eprintln!("total {:.1} ms", o.total_time_us as f64 / 1000.0);
    if show_witness {
        if let Some(w) = &o.assertion.witness {
            print!("{}", w.rendering);
        }
    }
    Ok(if o.assertion.satisfied_expectation.unwrap_or(true) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
