//! A GPUVerify-style static data-race analyzer (the Table 6 baseline).
//!
//! GPUVerify verifies race-freedom of GPU kernels with a *two-thread
//! abstraction*: it tracks the access sets of two arbitrary distinct
//! threads between barriers and reports a race when the sets may
//! overlap. This reimplementation reproduces the baseline's documented
//! strengths and weaknesses (§7.4 of the paper):
//!
//! * it is fast and needs no memory-model reasoning;
//! * it supports *strong* atomics only: atomic↔atomic conflicts are
//!   considered synchronized, anything else conflicts;
//! * it is oblivious to memory scopes and to value-based synchronization
//!   — accesses guarded by a spin lock still count, so lock-protected
//!   critical sections are reported racy (the caslock false positive the
//!   paper cites, mc-imperial/gpuverify#55);
//! * barriers inside divergent control flow are *barrier divergence*
//!   errors.
//!
//! # Example
//!
//! ```
//! use gpumc_spirv::{Grid, Kernel, KExpr, Stmt};
//!
//! let mut k = Kernel::new("disjoint");
//! let buf = k.buffer("out", 8);
//! k.push(Stmt::store(buf, KExpr::Gid, KExpr::Const(1)));
//! let verdict = gpumc_gpuverify::analyze(&k, Grid { local: 2, groups: 2 });
//! assert_eq!(verdict, gpumc_gpuverify::Verdict::RaceFree);
//! ```

use gpumc_spirv::{Grid, KExpr, Kernel, Stmt};

/// The analyzer's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No conflicting access pair was found.
    RaceFree,
    /// A potential race, with a description of the conflicting pair.
    Race(String),
    /// A barrier occurs in divergent control flow.
    BarrierDivergence,
}

impl Verdict {
    /// Whether the kernel was reported racy (divergence counts as a
    /// failure, like GPUVerify's error verdicts).
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::RaceFree)
    }
}

/// Symbolic index form under the two-thread abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Index {
    /// `gid + c`: distinct for distinct threads at equal offsets.
    GidPlus(u64),
    /// A constant.
    Const(u64),
    /// Anything else (locals, lid/wgid arithmetic): may collide.
    Unknown,
}

fn index_form(e: &KExpr) -> Index {
    match e {
        KExpr::Const(c) => Index::Const(*c),
        KExpr::Gid => Index::GidPlus(0),
        KExpr::Add(a, b) => match (index_form(a), index_form(b)) {
            (Index::GidPlus(x), Index::Const(y)) | (Index::Const(y), Index::GidPlus(x)) => {
                Index::GidPlus(x.wrapping_add(y))
            }
            (Index::Const(x), Index::Const(y)) => Index::Const(x.wrapping_add(y)),
            _ => Index::Unknown,
        },
        KExpr::Sub(a, b) => match (index_form(a), index_form(b)) {
            (Index::Const(x), Index::Const(y)) => Index::Const(x.wrapping_sub(y)),
            _ => Index::Unknown,
        },
        _ => Index::Unknown,
    }
}

/// May two distinct threads collide on these indices?
fn may_collide(a: Index, b: Index) -> bool {
    match (a, b) {
        // Same gid offset: distinct threads use distinct elements.
        (Index::GidPlus(x), Index::GidPlus(y)) => x != y,
        (Index::Const(x), Index::Const(y)) => x == y,
        // gid-based vs constant, or anything unknown: assume collision.
        _ => true,
    }
}

#[derive(Debug, Clone)]
struct Access {
    buf: u32,
    index: Index,
    write: bool,
    atomic: bool,
    interval: u32,
    what: String,
}

struct Collector {
    accesses: Vec<Access>,
    interval: u32,
    divergent_depth: u32,
    barrier_divergence: bool,
}

impl Collector {
    fn record(&mut self, buf: u32, index: &KExpr, write: bool, atomic: bool, what: &str) {
        self.accesses.push(Access {
            buf,
            index: index_form(index),
            write,
            atomic,
            interval: self.interval,
            what: what.to_string(),
        });
    }

    fn walk(&mut self, body: &[Stmt]) {
        for s in body {
            match s {
                Stmt::Store { buf, index, .. } => self.record(buf.0, index, true, false, "store"),
                Stmt::Load { buf, index, .. } => self.record(buf.0, index, false, false, "load"),
                Stmt::AtomicStore { buf, index, .. } => {
                    self.record(buf.0, index, true, true, "atomic store")
                }
                Stmt::AtomicLoad { buf, index, .. } => {
                    self.record(buf.0, index, false, true, "atomic load")
                }
                Stmt::AtomicAdd { buf, index, .. } | Stmt::AtomicCas { buf, index, .. } => {
                    self.record(buf.0, index, true, true, "atomic rmw")
                }
                Stmt::Assign { .. } | Stmt::Fence { .. } => {}
                Stmt::Barrier { .. } => {
                    if self.divergent_depth > 0 {
                        self.barrier_divergence = true;
                    } else {
                        self.interval += 1;
                    }
                }
                Stmt::If { then, els, .. } => {
                    self.divergent_depth += 1;
                    self.walk(then);
                    self.walk(els);
                    self.divergent_depth -= 1;
                }
                Stmt::While { body, .. } => {
                    self.divergent_depth += 1;
                    self.walk(body);
                    self.divergent_depth -= 1;
                }
            }
        }
    }
}

/// One catalogued gpumc-vs-baseline disagreement on the corpus.
///
/// The two tools are expected to disagree on exactly the kernels in
/// [`expected_divergences`]; every one is a documented weakness of the
/// two-thread abstraction (the gpumc verdict matches the corpus ground
/// truth). Table 6 and the pipeline tests assert the *exact* set, so a
/// new disagreement — or a vanished one — fails loudly instead of
/// drowning in a loose "59/66 agree" count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedDivergence {
    /// Corpus kernel name.
    pub name: &'static str,
    /// The memory-model verifier's verdict (== ground truth).
    pub gpumc_racy: bool,
    /// The two-thread baseline's verdict.
    pub gpuverify_racy: bool,
    /// Which documented abstraction weakness produces the divergence.
    pub reason: &'static str,
}

/// The complete expected-disagreement table for the synthesized corpus.
///
/// Six baseline false positives and one false negative; see each row's
/// `reason`. Sorted by name for deterministic iteration.
pub fn expected_divergences() -> &'static [ExpectedDivergence] {
    const CASLOCK: &str = "value-based synchronization is invisible to the access-set \
         abstraction: the CAS spin lock serializes the critical section, but the \
         lock-protected store still lands in the access sets (the caslock false \
         positive, mc-imperial/gpuverify#55)";
    const ATOMIC_INDEX: &str = "the unique ticket from an atomic fetch-add indexes the buffer, \
         so threads write distinct cells; the baseline's index abstraction maps \
         locals to `Unknown` and assumes collision (false positive)";
    const MP_RELACQ: &str = "release/acquire message passing orders the plain data access \
         before/after the flag handshake, but the baseline synchronizes \
         atomic↔atomic pairs only, so the plain data store vs load pair is \
         reported racy (false positive)";
    const BARRIER_SCOPE: &str = "the workgroup barrier does not synchronize *across* workgroups, \
         so the boundary neighbour pair races; the scope-unaware baseline treats \
         any barrier as a global phase separator (false negative)";
    &[
        ExpectedDivergence {
            name: "atomic_index_0",
            gpumc_racy: false,
            gpuverify_racy: true,
            reason: ATOMIC_INDEX,
        },
        ExpectedDivergence {
            name: "atomic_index_1",
            gpumc_racy: false,
            gpuverify_racy: true,
            reason: ATOMIC_INDEX,
        },
        ExpectedDivergence {
            name: "barrier_phases_0",
            gpumc_racy: true,
            gpuverify_racy: false,
            reason: BARRIER_SCOPE,
        },
        ExpectedDivergence {
            name: "caslock_cs_0",
            gpumc_racy: false,
            gpuverify_racy: true,
            reason: CASLOCK,
        },
        ExpectedDivergence {
            name: "caslock_cs_1",
            gpumc_racy: false,
            gpuverify_racy: true,
            reason: CASLOCK,
        },
        ExpectedDivergence {
            name: "mp_relacq_0",
            gpumc_racy: false,
            gpuverify_racy: true,
            reason: MP_RELACQ,
        },
        ExpectedDivergence {
            name: "mp_relacq_1",
            gpumc_racy: false,
            gpuverify_racy: true,
            reason: MP_RELACQ,
        },
    ]
}

/// Looks up the expected-disagreement row for a kernel, if any.
pub fn expected_divergence(name: &str) -> Option<&'static ExpectedDivergence> {
    expected_divergences().iter().find(|d| d.name == name)
}

/// Analyzes a kernel for data races under the two-thread abstraction.
///
/// The grid only matters in that a single-thread grid is trivially
/// race-free.
pub fn analyze(kernel: &Kernel, grid: Grid) -> Verdict {
    if grid.threads() <= 1 {
        return Verdict::RaceFree;
    }
    let mut c = Collector {
        accesses: Vec::new(),
        interval: 0,
        divergent_depth: 0,
        barrier_divergence: false,
    };
    c.walk(&kernel.body);
    if c.barrier_divergence {
        return Verdict::BarrierDivergence;
    }
    // Two arbitrary distinct threads run the same code: every pair of
    // accesses in the same barrier interval is a candidate.
    for a1 in &c.accesses {
        for a2 in &c.accesses {
            if a1.buf != a2.buf || a1.interval != a2.interval {
                continue;
            }
            if !(a1.write || a2.write) {
                continue;
            }
            if a1.atomic && a2.atomic {
                continue; // strong atomics synchronize
            }
            if may_collide(a1.index, a2.index) {
                let buf = kernel
                    .buffers
                    .get(a1.buf as usize)
                    .map_or("?", |(n, _)| n.as_str());
                return Verdict::Race(format!(
                    "possible race on `{buf}`: {} vs {}",
                    a1.what, a2.what
                ));
            }
        }
    }
    Verdict::RaceFree
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumc_ir::{MemOrder, Scope};

    fn grid() -> Grid {
        Grid {
            local: 2,
            groups: 2,
        }
    }

    #[test]
    fn disjoint_writes_are_race_free() {
        let mut k = Kernel::new("k");
        let b = k.buffer("out", 8);
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
        assert_eq!(analyze(&k, grid()), Verdict::RaceFree);
    }

    #[test]
    fn same_cell_writes_race() {
        let mut k = Kernel::new("k");
        let b = k.buffer("out", 8);
        k.push(Stmt::store(b, KExpr::Const(0), KExpr::Const(1)));
        assert!(matches!(analyze(&k, grid()), Verdict::Race(_)));
    }

    #[test]
    fn shifted_gid_indices_race() {
        // out[gid] and out[gid+1] collide across adjacent threads.
        let mut k = Kernel::new("k");
        let b = k.buffer("out", 8);
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
        let l = k.local();
        k.push(Stmt::load(l, b, KExpr::add(KExpr::Gid, KExpr::Const(1))));
        assert!(matches!(analyze(&k, grid()), Verdict::Race(_)));
    }

    #[test]
    fn barrier_separates_phases() {
        let mut k = Kernel::new("k");
        let b = k.buffer("out", 8);
        k.push(Stmt::store(b, KExpr::Gid, KExpr::Const(1)));
        k.push(Stmt::Barrier { scope: Scope::Wg });
        let l = k.local();
        k.push(Stmt::load(l, b, KExpr::add(KExpr::Gid, KExpr::Const(1))));
        assert_eq!(analyze(&k, grid()), Verdict::RaceFree);
    }

    #[test]
    fn atomics_do_not_race_with_atomics() {
        let mut k = Kernel::new("k");
        let b = k.buffer("c", 1);
        let l = k.local();
        k.push(Stmt::AtomicAdd {
            dst: l,
            buf: b,
            index: KExpr::Const(0),
            operand: KExpr::Const(1),
            order: MemOrder::AcqRel,
            scope: Scope::Dv,
        });
        assert_eq!(analyze(&k, grid()), Verdict::RaceFree);
    }

    #[test]
    fn lock_protected_section_is_a_false_positive() {
        // A CAS spin lock around a plain store: semantically race-free,
        // but the analyzer cannot see value-based synchronization — the
        // caslock false positive from the paper.
        let mut k = Kernel::new("caslock");
        let lock = k.buffer("lock", 1);
        let x = k.buffer("x", 1);
        let got = k.local();
        k.push(Stmt::While {
            a: KExpr::Local(got),
            cmp: gpumc_spirv::CmpKind::Ne,
            b: KExpr::Const(0),
            body: vec![Stmt::AtomicCas {
                dst: got,
                buf: lock,
                index: KExpr::Const(0),
                expected: KExpr::Const(0),
                new: KExpr::Const(1),
                order: MemOrder::Acquire,
                scope: Scope::Dv,
            }],
        });
        k.push(Stmt::store(x, KExpr::Const(0), KExpr::Const(1)));
        k.push(Stmt::AtomicStore {
            buf: lock,
            index: KExpr::Const(0),
            value: KExpr::Const(0),
            order: MemOrder::Release,
            scope: Scope::Dv,
        });
        assert!(matches!(analyze(&k, grid()), Verdict::Race(_)));
    }

    #[test]
    fn barrier_in_branch_is_divergence() {
        let mut k = Kernel::new("k");
        let _ = k.buffer("x", 1);
        k.push(Stmt::If {
            a: KExpr::Gid,
            cmp: gpumc_spirv::CmpKind::Eq,
            b: KExpr::Const(0),
            then: vec![Stmt::Barrier { scope: Scope::Wg }],
            els: vec![],
        });
        assert_eq!(analyze(&k, grid()), Verdict::BarrierDivergence);
    }

    #[test]
    fn divergence_table_is_sorted_and_consistent() {
        let table = expected_divergences();
        assert!(table.windows(2).all(|w| w[0].name < w[1].name));
        for d in table {
            // A row where both tools agree is not a divergence.
            assert_ne!(d.gpumc_racy, d.gpuverify_racy, "{}", d.name);
            assert!(!d.reason.is_empty(), "{}", d.name);
        }
        assert!(expected_divergence("caslock_cs_0").is_some());
        assert!(expected_divergence("no_such_kernel").is_none());
    }

    #[test]
    fn single_thread_grid_trivially_safe() {
        let mut k = Kernel::new("k");
        let b = k.buffer("x", 1);
        k.push(Stmt::store(b, KExpr::Const(0), KExpr::Const(1)));
        assert_eq!(
            analyze(
                &k,
                Grid {
                    local: 1,
                    groups: 1
                }
            ),
            Verdict::RaceFree
        );
    }
}
