//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched; this vendored stub implements exactly the surface
//! the workspace's property tests use: [`Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`Just`], [`any`], the [`prop_oneof!`],
//! [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! [`ProptestConfig`] and [`TestCaseError`].
//!
//! Generation is deterministic: each test function derives its RNG seed
//! from its own name (override with `GPUMC_PROPTEST_SEED`), so failures
//! reproduce exactly. There is no shrinking — the failing inputs are
//! reported via `Debug` instead.

use std::fmt::Debug;
use std::sync::Arc;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// A deterministic splitmix64 RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name (plus an optional
    /// environment override `GPUMC_PROPTEST_SEED`).
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(b));
        }
        if let Ok(s) = std::env::var("GPUMC_PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A test-case failure (the only variant this stub distinguishes).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias kept for API compatibility.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Arc::new(move |rng| s.generate(rng)))
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// sub-elements and returns the composite level. `depth` bounds the
    /// recursion; the remaining parameters are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Mix leaves back in at every level so generated depths vary.
            strat = OneOf {
                options: vec![base.clone(), deeper],
            }
            .boxed();
        }
        strat
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Generates uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, usize);

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates vectors whose elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let Err(e) = result {
                    panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u8..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = collection::vec(0u8..4, 2..=5).generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, flips in any::<bool>()) {
            prop_assert!(x < 100);
            let y = if flips { x + 1 } else { x };
            prop_assert_eq!(x + u64::from(flips), y);
        }
    }
}
