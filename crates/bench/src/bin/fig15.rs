//! Regenerates Figure 15: scalability of the Dartagnan-style SAT engine
//! vs the Alloy-style enumeration on MP/SB/LB/IRIW with growing thread
//! counts. Produces one CSV per pattern (MP.csv, SB.csv, ...).
//!
//! Run with: `cargo run --release -p gpumc-bench --bin fig15`

use std::io::Write as _;
use std::time::Instant;

use gpumc::{EngineKind, Verifier, VerifyError};
use gpumc_catalog::{scaling_test, ScalePattern};

/// Enumeration blow-up cap: beyond this many candidate behaviours the
/// baseline is declared out-of-memory, like the Alloy tools in the paper.
const ENUM_CANDIDATE_CAP: u64 = 20_000;

fn main() {
    let patterns = [
        ScalePattern::Mp,
        ScalePattern::Sb,
        ScalePattern::Lb,
        ScalePattern::Iriw,
    ];
    for pattern in patterns {
        let mut csv = String::from("threads,events,dartagnan_ms,alloy_ms\n");
        println!("== {pattern} ==");
        println!(
            "{:>8} {:>7} {:>14} {:>12}",
            "threads", "events", "dartagnan(ms)", "alloy(ms)"
        );
        let mut enum_dead = false;
        for threads in [2usize, 4, 6, 8, 10, 12, 16, 20] {
            if pattern == ScalePattern::Iriw && threads < 4 {
                continue;
            }
            let t = scaling_test(pattern, threads);
            let program = gpumc::parse_litmus(&t.source).expect("generated test parses");

            let sat = Verifier::new(gpumc_models::ptx60()).with_bound(1);
            let t0 = Instant::now();
            let outcome = sat.check_assertion(&program).expect("sat engine");
            let sat_ms = t0.elapsed().as_secs_f64() * 1000.0;
            let events = outcome.stats.events;

            let alloy_ms: Option<f64> = if enum_dead {
                None
            } else {
                let enumerator = Verifier::new(gpumc_models::ptx60())
                    .with_bound(1)
                    .with_engine(EngineKind::Enumerate {
                        straight_line_only: true,
                    })
                    .with_enumeration_cap(ENUM_CANDIDATE_CAP);
                let t0 = Instant::now();
                match enumerator.check_assertion(&program) {
                    Ok(_) => Some(t0.elapsed().as_secs_f64() * 1000.0),
                    Err(VerifyError::TooComplex(_)) => {
                        enum_dead = true;
                        None
                    }
                    Err(e) => {
                        eprintln!("enumeration failed: {e}");
                        None
                    }
                }
            };
            println!(
                "{:>8} {:>7} {:>14.1} {:>12}",
                threads,
                events,
                sat_ms,
                alloy_ms.map_or("OOM".to_string(), |m| format!("{m:.1}"))
            );
            csv.push_str(&format!(
                "{},{},{:.2},{}\n",
                threads,
                events,
                sat_ms,
                alloy_ms.map_or("OOM".to_string(), |m| format!("{m:.2}"))
            ));
            std::io::stdout().flush().ok();
        }
        let file = format!("{pattern}.csv");
        if let Err(e) = std::fs::write(&file, csv) {
            eprintln!("could not write {file}: {e}");
        } else {
            eprintln!("wrote {file}");
        }
    }
}
