//! Regenerates Figure 15: scalability of the Dartagnan-style SAT engine
//! vs the Alloy-style enumeration on MP/SB/LB/IRIW with growing thread
//! counts. Produces one CSV per pattern (MP.csv, SB.csv, ...).
//!
//! Run with: `cargo run --release -p gpumc-bench --bin fig15 [-- --jobs N]`

use std::io::Write as _;
use std::time::Instant;

use gpumc::{EngineKind, Verifier, VerifyError};
use gpumc_catalog::{scaling_test, ScalePattern};
use gpumc_models::ModelKind;

/// Enumeration blow-up cap: beyond this many candidate behaviours the
/// baseline is declared out-of-memory, like the Alloy tools in the paper.
const ENUM_CANDIDATE_CAP: u64 = 20_000;

fn thread_counts(pattern: ScalePattern) -> Vec<usize> {
    [2usize, 4, 6, 8, 10, 12, 16, 20]
        .into_iter()
        .filter(|&n| !(pattern == ScalePattern::Iriw && n < 4))
        .collect()
}

fn main() {
    let jobs = gpumc_bench::jobs_from_args();
    let batch = Instant::now();
    let patterns = [
        ScalePattern::Mp,
        ScalePattern::Sb,
        ScalePattern::Lb,
        ScalePattern::Iriw,
    ];

    // The SAT engine dominates the runtime and every (pattern, threads)
    // point is independent — fan the whole grid out at once.
    let grid: Vec<(ScalePattern, usize)> = patterns
        .iter()
        .flat_map(|&p| thread_counts(p).into_iter().map(move |n| (p, n)))
        .collect();
    let sat_points = gpumc::parallel_map_ordered(&grid, jobs, |_, &(pattern, threads)| {
        let t = scaling_test(pattern, threads);
        let program = gpumc::parse_litmus(&t.source).expect("generated test parses");
        let sat = Verifier::new(gpumc_models::load_shared(ModelKind::Ptx60)).with_bound(1);
        let t0 = Instant::now();
        let outcome = sat.check_assertion(&program).expect("sat engine");
        (outcome.stats.events, t0.elapsed().as_secs_f64() * 1000.0)
    });
    let mut aggregate_ms: f64 = sat_points.iter().map(|&(_, ms)| ms).sum();

    for pattern in patterns {
        let mut csv = String::from("threads,events,dartagnan_ms,alloy_ms\n");
        println!("== {pattern} ==");
        println!(
            "{:>8} {:>7} {:>14} {:>12}",
            "threads", "events", "dartagnan(ms)", "alloy(ms)"
        );
        // The enumeration baseline stays sequential per pattern: once a
        // size blows the candidate cap, every larger size would too, so
        // the early exit saves the most expensive runs.
        let mut enum_dead = false;
        for threads in thread_counts(pattern) {
            let (events, sat_ms) = sat_points[grid
                .iter()
                .position(|&g| g == (pattern, threads))
                .expect("grid covers the loop")];

            let alloy_ms: Option<f64> = if enum_dead {
                None
            } else {
                let t = scaling_test(pattern, threads);
                let program = gpumc::parse_litmus(&t.source).expect("generated test parses");
                let enumerator = Verifier::new(gpumc_models::load_shared(ModelKind::Ptx60))
                    .with_bound(1)
                    .with_engine(EngineKind::Enumerate {
                        straight_line_only: true,
                    })
                    .with_enumeration_cap(ENUM_CANDIDATE_CAP);
                let t0 = Instant::now();
                match enumerator.check_assertion(&program) {
                    Ok(_) => {
                        let ms = t0.elapsed().as_secs_f64() * 1000.0;
                        aggregate_ms += ms;
                        Some(ms)
                    }
                    Err(VerifyError::TooComplex(_)) => {
                        enum_dead = true;
                        None
                    }
                    Err(e) => {
                        eprintln!("enumeration failed: {e}");
                        None
                    }
                }
            };
            println!(
                "{:>8} {:>7} {:>14.1} {:>12}",
                threads,
                events,
                sat_ms,
                alloy_ms.map_or("OOM".to_string(), |m| format!("{m:.1}"))
            );
            csv.push_str(&format!(
                "{},{},{:.2},{}\n",
                threads,
                events,
                sat_ms,
                alloy_ms.map_or("OOM".to_string(), |m| format!("{m:.2}"))
            ));
            std::io::stdout().flush().ok();
        }
        let file = format!("{pattern}.csv");
        if let Err(e) = std::fs::write(&file, csv) {
            eprintln!("could not write {file}: {e}");
        } else {
            eprintln!("wrote {file}");
        }
    }
    eprintln!(
        "{}",
        gpumc_bench::timing_footer(
            "fig15",
            jobs,
            batch.elapsed(),
            std::time::Duration::from_secs_f64(aggregate_ms / 1000.0),
        )
    );
}
