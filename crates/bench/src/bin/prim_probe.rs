use gpumc::Verifier;
use std::io::Write;
fn main() {
    let start: usize = std::env::var("START")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    for b in gpumc_catalog::primitive_benchmarks()
        .into_iter()
        .skip(start)
    {
        let t0 = std::time::Instant::now();
        let p = gpumc::parse_litmus(&b.test.source).unwrap();
        let v = Verifier::new(gpumc_models::vulkan()).with_bound(b.test.bound);
        let o = v.check_assertion(&p).unwrap();
        let correct = !o.reachable;
        println!(
            "{:24} {} |T|={} |E|={} correct={} (expect {}) {:?}{}",
            b.name,
            b.grid,
            b.grid.threads(),
            o.stats.events,
            correct,
            b.expect_correct,
            t0.elapsed(),
            if correct != b.expect_correct {
                "  MISMATCH!"
            } else {
                ""
            }
        );
        std::io::stdout().flush().ok();
    }
}
