//! Regenerates Table 5: model validation — tests supported by the
//! Dartagnan-style engine vs the Alloy-style baseline, per model, with
//! average verification times.
//!
//! Run with: `cargo run --release -p gpumc-bench --bin table5 [-- --jobs N]`
//!
//! With `--all`, the Dartagnan engine answers *all* properties of every
//! test (assertion + liveness + data races where the model flags them)
//! from one incremental solver session per test instead of checking only
//! the catalogued property; the per-property query totals go to stderr.

use std::io::Write as _;
use std::time::Instant;

use gpumc::{EngineKind, Verifier, VerifyError};
use gpumc_catalog::{Property, Test};
use gpumc_models::ModelKind;

#[derive(Default, Clone, Copy)]
struct Row {
    safety: usize,
    liveness: usize,
    drf: usize,
    time_us: u128,
}

impl Row {
    fn total(&self) -> usize {
        self.safety + self.liveness + self.drf
    }
    fn time_per_test_ms(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.time_us as f64 / 1000.0 / self.total() as f64
        }
    }
    fn count(&mut self, property: Property, us: u128) {
        self.time_us += us;
        match property {
            Property::Safety => self.safety += 1,
            Property::Liveness => self.liveness += 1,
            Property::DataRaceFreedom => self.drf += 1,
        }
    }
}

fn run_one(t: &Test, model: ModelKind, engine: EngineKind) -> Result<u128, VerifyError> {
    let program = gpumc::parse_litmus(&t.source)?;
    let v = Verifier::new(gpumc_models::load_shared(model))
        .with_bound(t.bound)
        .with_engine(engine);
    let t0 = Instant::now();
    match t.property {
        Property::Safety => {
            v.check_assertion(&program)?;
        }
        Property::Liveness => {
            v.check_liveness(&program)?;
        }
        Property::DataRaceFreedom => {
            v.check_data_races(&program)?;
        }
    }
    Ok(t0.elapsed().as_micros())
}

/// `--all` mode: every property of the test from one incremental session.
fn run_all(t: &Test, model: ModelKind) -> Result<(u128, gpumc::FullOutcome), VerifyError> {
    let program = gpumc::parse_litmus(&t.source)?;
    let v = Verifier::new(gpumc_models::load_shared(model)).with_bound(t.bound);
    let t0 = Instant::now();
    let o = v.check_all(&program)?;
    Ok((t0.elapsed().as_micros(), o))
}

/// Per-property query totals accumulated across an `--all` suite run.
#[derive(Default, Clone)]
struct QueryTotals {
    by_label: std::collections::BTreeMap<String, (usize, u64, u64, usize)>,
}

impl QueryTotals {
    fn add(&mut self, o: &gpumc::FullOutcome) {
        for q in &o.queries {
            let e = self.by_label.entry(q.label.clone()).or_default();
            e.0 += 1;
            e.1 += q.stats.conflicts;
            e.2 += q.stats.propagations;
            if q.stats.learnt_before > 0 {
                e.3 += 1;
            }
        }
    }

    fn report(&self, suite: &str) {
        for (label, (n, conflicts, props, reused)) in &self.by_label {
            eprintln!(
                "  [{suite}] {label:<12} {n:>4} queries | {conflicts:>8} conflicts | \
                 {props:>10} propagations | {reused:>4} started with reused learnt clauses"
            );
        }
    }
}

/// Runs a suite against one model on the worker pool, returning the
/// Dartagnan and Alloy rows. Per-test work is independent; the fold back
/// into rows happens on the collected, input-ordered results, so the
/// table is identical for every `--jobs` value.
fn suite_rows(model: ModelKind, tests: &[Test], jobs: usize, all: bool) -> (Row, Row) {
    let timings = gpumc::parallel_map_ordered(tests, jobs, |_, t| {
        let dartagnan: Option<(u128, Option<gpumc::FullOutcome>)> = if all {
            match run_all(t, model) {
                Ok((us, o)) => Some((us, Some(o))),
                Err(e) => {
                    eprintln!("dartagnan failed on {}: {e}", t.name);
                    None
                }
            }
        } else {
            match run_one(t, model, EngineKind::Sat) {
                Ok(us) => Some((us, None)),
                Err(e) => {
                    eprintln!("dartagnan failed on {}: {e}", t.name);
                    None
                }
            }
        };
        // The Alloy baseline: straight-line only, no liveness, no control
        // barriers / constant proxy.
        let alloy = if t.alloy_supported() {
            run_one(
                t,
                model,
                EngineKind::Enumerate {
                    straight_line_only: true,
                },
            )
            .ok()
        } else {
            None
        };
        (dartagnan, alloy)
    });
    let mut dartagnan = Row::default();
    let mut alloy = Row::default();
    let mut totals = QueryTotals::default();
    for (t, (d, a)) in tests.iter().zip(timings) {
        match d {
            Some((us, Some(o))) => {
                // One session answered every property: credit each
                // answered property, attributing the session time once.
                dartagnan.safety += 1;
                dartagnan.liveness += 1;
                if o.data_races.is_some() {
                    dartagnan.drf += 1;
                }
                dartagnan.time_us += us;
                totals.add(&o);
            }
            Some((us, None)) => dartagnan.count(t.property, us),
            None => {}
        }
        if let Some(us) = a {
            alloy.count(t.property, us);
        }
    }
    if all {
        totals.report(&format!("{model}"));
    }
    (dartagnan, alloy)
}

fn print_block(out: &mut impl std::io::Write, name: &str, d: Row, a: Option<Row>) {
    writeln!(out, "{name}").unwrap();
    writeln!(
        out,
        "  {:10} {:>7} {:>9} {:>5} {:>7} {:>14}",
        "Tool", "Safety", "Liveness", "DRF", "#Tests", "Time/Test (ms)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:10} {:>7} {:>9} {:>5} {:>7} {:>14.0}",
        "Dartagnan",
        d.safety,
        d.liveness,
        d.drf,
        d.total(),
        d.time_per_test_ms()
    )
    .unwrap();
    match a {
        Some(a) => writeln!(
            out,
            "  {:10} {:>7} {:>9} {:>5} {:>7} {:>14.0}",
            "Alloy",
            a.safety,
            a.liveness,
            a.drf,
            a.total(),
            a.time_per_test_ms()
        )
        .unwrap(),
        None => writeln!(
            out,
            "  {:10} {:>7} {:>9} {:>5} {:>7} {:>14}",
            "Alloy", 0, 0, 0, 0, 0
        )
        .unwrap(),
    }
}

fn main() {
    let jobs = gpumc_bench::jobs_from_args();
    let all = gpumc_bench::flag_from_args("--all");
    if all {
        eprintln!("(--all: every property per test from one incremental session)");
    }
    let ptx_safety = gpumc_catalog::ptx_safety_suite();
    let ptx_proxy = gpumc_catalog::ptx_proxy_suite();
    let vk_safety = gpumc_catalog::vulkan_safety_suite();
    let vk_drf = gpumc_catalog::vulkan_drf_suite();
    let liveness = gpumc_catalog::liveness_suite();
    let ptx_live: Vec<Test> = liveness
        .iter()
        .filter(|t| t.source.trim_start().starts_with("PTX"))
        .cloned()
        .collect();
    let vk_live: Vec<Test> = liveness
        .iter()
        .filter(|t| t.source.trim_start().starts_with("VULKAN"))
        .cloned()
        .collect();
    // The paper runs the same liveness suite against every model; our
    // dialects are per-arch, so each arch suite runs on its models.
    let both: Vec<Test> = [ptx_live.clone(), vk_live.clone()].concat();
    eprintln!(
        "(suites: {} ptx safety, {} proxy, {} vulkan safety, {} drf, {} liveness)",
        ptx_safety.len(),
        ptx_proxy.len(),
        vk_safety.len(),
        vk_drf.len(),
        both.len()
    );

    let batch = Instant::now();
    let mut aggregate_us = 0u128;
    let mut out: Box<dyn std::io::Write> = Box::new(std::io::stdout());
    writeln!(out, "Table 5: comparing Dartagnan- and Alloy-style engines").unwrap();

    // PTX v6.0: base safety + liveness. The published v6.0 model has no
    // Alloy tool at all.
    let mut tests = ptx_safety.clone();
    tests.extend(ptx_live.iter().cloned().map(|mut t| {
        // both-ptx liveness suite; double weight like the paper's 73.
        t.name = format!("{}-v60", t.name);
        t
    }));
    // The 73-liveness suite of the paper is arch-independent; pad the
    // PTX liveness set by reusing the Vulkan family shapes in the PTX
    // dialect is already done by the generator (36 per arch + fig14).
    let (d, _a) = suite_rows(ModelKind::Ptx60, &tests, jobs, all);
    aggregate_us += d.time_us;
    print_block(&mut out, "Ptx v6.0", d, None);

    // PTX v7.5: adds the proxy suite; the Alloy baseline supports only
    // straight-line safety tests.
    let mut tests = ptx_safety;
    tests.extend(ptx_proxy);
    tests.extend(ptx_live);
    let (d, a) = suite_rows(ModelKind::Ptx75, &tests, jobs, all);
    aggregate_us += d.time_us + a.time_us;
    print_block(&mut out, "Ptx v7.5", d, Some(a));

    // Vulkan: safety + drf + liveness.
    let mut tests = vk_safety;
    tests.extend(vk_drf);
    tests.extend(vk_live);
    let (d, a) = suite_rows(ModelKind::Vulkan, &tests, jobs, all);
    aggregate_us += d.time_us + a.time_us;
    print_block(&mut out, "Vulkan", d, Some(a));

    eprintln!(
        "{}",
        gpumc_bench::timing_footer(
            "table5",
            jobs,
            batch.elapsed(),
            std::time::Duration::from_micros(aggregate_us as u64),
        )
    );
}
