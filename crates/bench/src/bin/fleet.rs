//! Benchmarks the fleet layer: content-addressed cache effectiveness
//! (digest cost, cold/warm hit rates, persistent reload) and the
//! two-level cost-aware scheduler against the old FIFO queue.
//!
//! Run with: `cargo run --release -p gpumc-bench --bin fleet [-- --json]`
//!
//! The scheduler comparison is a deterministic discrete-event
//! simulation in cost units (not wall clock): the same job mix is
//! drained once in FIFO arrival order and once in the two-level pop
//! order, and the report is the mean/worst completion time of the
//! *cheap* jobs — the queries the fast lane exists for. `--json`
//! additionally writes `BENCH_fleet.json` in the current directory.

use std::time::Instant;

use gpumc_encode::{engine_weight, estimate_cost};
use gpumc_fleet::cache::{CachedVerdict, ResultCache};
use gpumc_fleet::digest::source_digest;
use gpumc_fleet::sched::CostScheduler;
use gpumc_serve::json::Json;
use gpumc_serve::server::DEFAULT_FAST_LANE_MAX_COST;

/// One simulated request: a digest, a predicted cost, and whether the
/// fast lane would take it.
struct SimJob {
    digest: u128,
    cost: u64,
}

fn workload() -> Vec<SimJob> {
    let mut tests = gpumc_catalog::ptx_safety_suite();
    tests.extend(gpumc_catalog::vulkan_safety_suite());
    tests.extend(gpumc_catalog::liveness_suite());
    tests.extend(gpumc_catalog::figure_tests());
    let mut jobs = Vec::new();
    for (i, t) in tests.iter().enumerate() {
        for bound in 1u32..=2 {
            let digest = source_digest(&t.source, None, bound, "all", "sat", 1)
                .expect("catalog test digests");
            let program = gpumc::parse_litmus(&t.source).expect("catalog test parses");
            let unrolled = gpumc::gpumc_ir::unroll(&program, bound).expect("unrolls");
            let graph = gpumc::gpumc_ir::compile(&unrolled);
            let mut cost = estimate_cost(graph.n_events(), bound, engine_weight("sat"));
            // Every eighth job is promoted to a synthetic "encoding
            // monster" (kernel-scale cost) so the simulation has the
            // bimodal mix the fast lane is designed for.
            if i % 8 == 0 {
                cost = cost.saturating_mul(10_000);
            }
            jobs.push(SimJob { digest, cost });
        }
    }
    jobs
}

/// Drains `costs` in FIFO order over `workers` simulated workers and
/// returns each job's completion time in cost units (arrival index →
/// completion). The next free worker always takes the next queued job.
fn simulate_fifo(costs: &[u64], workers: usize) -> Vec<u64> {
    let mut busy_until = vec![0u64; workers];
    let mut done = Vec::with_capacity(costs.len());
    for &c in costs {
        let w = (0..workers).min_by_key(|&w| busy_until[w]).unwrap();
        busy_until[w] += c;
        done.push(busy_until[w]);
    }
    done
}

/// Drains the same jobs through the real [`CostScheduler`] pop order
/// and returns completion times in arrival order.
fn simulate_two_level(costs: &[u64], workers: usize) -> Vec<u64> {
    let sched: CostScheduler<usize> =
        CostScheduler::new(costs.len() + 1, workers, DEFAULT_FAST_LANE_MAX_COST);
    for (i, &c) in costs.iter().enumerate() {
        sched
            .try_push(i, c)
            .unwrap_or_else(|_| panic!("scheduler accepts the whole burst"));
    }
    sched.close();
    let mut busy_until = vec![0u64; workers];
    let mut done = vec![0u64; costs.len()];
    // Lockstep simulation: the worker with the least accumulated busy
    // time pops next, which is exactly what "next free worker" means.
    loop {
        let w = (0..workers).min_by_key(|&w| busy_until[w]).unwrap();
        let Some(i) = sched.pop(w) else { break };
        busy_until[w] += costs[i];
        done[i] = busy_until[w];
    }
    done
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

fn main() {
    let json_out = gpumc_bench::flag_from_args("--json");
    let jobs = workload();

    // --- digest cost: how long canonicalization takes per request
    //     (the real pipeline — parse + canonical hash — not the
    //     precomputed field).
    let tests = gpumc_catalog::figure_tests();
    let t0_digest = Instant::now();
    let mut derived = 0u64;
    for t in &tests {
        for bound in 1u32..=4 {
            std::hint::black_box(
                source_digest(&t.source, None, bound, "all", "sat", 1).expect("digests"),
            );
            derived += 1;
        }
    }
    let digest_us = t0_digest.elapsed().as_micros() as u64;

    // --- cache: a cold pass (every lookup misses, every verdict is
    //     inserted) followed by a warm pass (every lookup must hit).
    let cache = ResultCache::in_memory(4096);
    let mut cold_hits = 0u64;
    for j in &jobs {
        if cache.lookup(j.digest).is_some() {
            cold_hits += 1;
        } else {
            cache.insert(
                j.digest,
                CachedVerdict {
                    test: "bench".into(),
                    reachable: false,
                    expectation: "holds".into(),
                    liveness: "ok".into(),
                    datarace: "n/a".into(),
                },
            );
        }
    }
    let t0_warm = Instant::now();
    let warm_hits = jobs
        .iter()
        .filter(|j| cache.lookup(j.digest).is_some())
        .count() as u64;
    let warm_ns = t0_warm.elapsed().as_nanos() as u64;
    // Duplicate digests in the workload (same test at the same bound
    // never repeats here, so cold hits count true duplicates).
    let unique = cache.len() as u64;

    // --- persistent store: write-through, then reopen and count reloads.
    let dir = std::env::temp_dir().join(format!("gpumc-fleet-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir bench store");
    let fingerprint = gpumc::verifier_fingerprint();
    let persistent =
        ResultCache::persistent(4096, &dir, &fingerprint).expect("open persistent cache");
    for j in &jobs {
        persistent.insert(
            j.digest,
            CachedVerdict {
                test: "bench".into(),
                reachable: false,
                expectation: "holds".into(),
                liveness: "ok".into(),
                datarace: "n/a".into(),
            },
        );
    }
    drop(persistent);
    let t0_reload = Instant::now();
    let reopened = ResultCache::persistent(4096, &dir, &fingerprint).expect("reopen");
    let reload_us = t0_reload.elapsed().as_micros() as u64;
    let reloaded = reopened.stats().loaded;
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    // --- scheduler: FIFO vs two-level on the same bimodal burst.
    let workers = 2usize;
    let costs: Vec<u64> = jobs.iter().map(|j| j.cost).collect();
    let fifo = simulate_fifo(&costs, workers);
    let two_level = simulate_two_level(&costs, workers);
    let cheap: Vec<usize> = costs
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c <= DEFAULT_FAST_LANE_MAX_COST)
        .map(|(i, _)| i)
        .collect();
    let fifo_cheap: Vec<u64> = cheap.iter().map(|&i| fifo[i]).collect();
    let two_cheap: Vec<u64> = cheap.iter().map(|&i| two_level[i]).collect();
    let fifo_mean = mean(&fifo_cheap);
    let two_mean = mean(&two_cheap);
    let improvement = if two_mean > 0.0 {
        fifo_mean / two_mean
    } else {
        1.0
    };

    println!("fleet layer benchmark ({} simulated requests)", jobs.len());
    println!(
        "  digest: {derived} canonicalizations in {digest_us} us \
         ({:.1} us each)",
        digest_us as f64 / derived.max(1) as f64
    );
    println!(
        "  cache: {unique} unique digests, cold hits {cold_hits}, \
         warm hits {warm_hits}/{} ({} ns/lookup warm)",
        jobs.len(),
        warm_ns / (warm_hits.max(1))
    );
    println!("  store: {reloaded} verdicts reloaded in {reload_us} us");
    println!(
        "  sched({workers} workers): cheap-job mean completion \
         {fifo_mean:.0} (FIFO) vs {two_mean:.0} (two-level) cost units — {improvement:.1}x"
    );

    assert_eq!(
        warm_hits,
        jobs.len() as u64,
        "warm pass must hit every lookup"
    );
    assert!(
        two_mean <= fifo_mean,
        "two-level scheduling made cheap jobs slower: {two_mean:.0} > {fifo_mean:.0}"
    );

    if json_out {
        let doc = Json::Obj(vec![
            ("requests".into(), Json::count(jobs.len() as u64)),
            (
                "digest".into(),
                Json::Obj(vec![
                    ("canonicalizations".into(), Json::count(derived)),
                    ("total_us".into(), Json::count(digest_us)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("unique".into(), Json::count(unique)),
                    ("cold_hits".into(), Json::count(cold_hits)),
                    ("warm_hits".into(), Json::count(warm_hits)),
                    (
                        "warm_lookup_ns".into(),
                        Json::count(warm_ns / warm_hits.max(1)),
                    ),
                ]),
            ),
            (
                "store".into(),
                Json::Obj(vec![
                    ("reloaded".into(), Json::count(reloaded)),
                    ("reload_us".into(), Json::count(reload_us)),
                ]),
            ),
            (
                "sched".into(),
                Json::Obj(vec![
                    ("workers".into(), Json::count(workers as u64)),
                    ("cheap_jobs".into(), Json::count(cheap.len() as u64)),
                    (
                        "fast_lane_max_cost".into(),
                        Json::count(DEFAULT_FAST_LANE_MAX_COST),
                    ),
                    ("fifo_cheap_mean".into(), Json::num(fifo_mean)),
                    ("two_level_cheap_mean".into(), Json::num(two_mean)),
                    ("improvement".into(), Json::num(improvement)),
                ]),
            ),
        ]);
        let path = "BENCH_fleet.json";
        std::fs::write(path, format!("{doc}\n")).expect("write BENCH_fleet.json");
        eprintln!("wrote {path}");
    }
}
